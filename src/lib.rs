//! Top-level convenience crate for the SwissTM reproduction workspace.
pub use rstm;
pub use stm_core;
pub use stm_workloads;
pub use swisstm;
pub use tinystm;
pub use tl2;
