//! Thread placement: core pinning policies for the benchmark driver.
//!
//! The thread-and-data-mapping literature (see PAPERS.md) shows that *where*
//! STM threads run decides how expensive the shared-state coherence traffic
//! is: threads packed onto one socket share a last-level cache and resolve
//! lock-table and clock lines locally, while scattered threads pay
//! cross-socket latency for every contended line. The driver therefore
//! supports a [`PlacementPolicy`] per run, so the fig9/fig10 contention
//! sweeps can compare placements under identical workloads.
//!
//! Pinning is strictly best-effort. The workspace forbids `unsafe` and
//! carries no FFI dependency, so the driver shells out to `taskset(1)` with
//! the worker's kernel thread id (from `/proc/thread-self/status`) instead
//! of calling `sched_setaffinity` directly. Wherever that is impossible —
//! non-Linux hosts, missing `taskset`, fewer cores than threads — the run
//! proceeds unpinned and the degradation is recorded in the
//! [`PlacementOutcome`] the driver returns, never panicked on.

use std::str::FromStr;

/// How worker threads are placed on cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// No pinning: the OS scheduler decides (the default).
    #[default]
    None,
    /// Pack threads onto consecutive cores (`0, 1, 2, …`): neighbours share
    /// caches, minimising the cost of contended lines.
    Compact,
    /// Spread threads evenly across the available cores
    /// (`0, C/n, 2C/n, …`): maximises aggregate cache and bandwidth,
    /// maximises the distance contended lines travel.
    Scatter,
}

impl PlacementPolicy {
    /// All policies, for sweeps.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::None,
        PlacementPolicy::Compact,
        PlacementPolicy::Scatter,
    ];

    /// Short machine-friendly label used in tables and CLI flags.
    pub const fn label(self) -> &'static str {
        match self {
            PlacementPolicy::None => "none",
            PlacementPolicy::Compact => "compact",
            PlacementPolicy::Scatter => "scatter",
        }
    }
}

impl FromStr for PlacementPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(PlacementPolicy::None),
            "compact" => Ok(PlacementPolicy::Compact),
            "scatter" => Ok(PlacementPolicy::Scatter),
            other => Err(format!(
                "unknown placement policy '{other}' (expected none|compact|scatter)"
            )),
        }
    }
}

/// What happened to one worker thread's pin request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinOutcome {
    /// The thread was pinned to this core.
    Pinned(usize),
    /// The plan left the thread unpinned (policy `None`, or more threads
    /// than cores).
    Unplanned,
    /// The pin was attempted but could not be applied (no `taskset`,
    /// non-Linux host, permission error); the thread runs unpinned.
    Failed,
}

/// Per-run placement record, carried in
/// [`crate::driver::RunResult::placement`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementOutcome {
    /// The requested policy.
    pub policy: PlacementPolicy,
    /// Cores the planner saw when the run started.
    pub cores: usize,
    /// One outcome per worker thread, in thread-index order.
    pub threads: Vec<PinOutcome>,
}

impl PlacementOutcome {
    /// Number of successfully pinned threads.
    pub fn pinned(&self) -> usize {
        self.threads
            .iter()
            .filter(|outcome| matches!(outcome, PinOutcome::Pinned(_)))
            .count()
    }

    /// Number of threads whose pin attempt failed.
    pub fn failed(&self) -> usize {
        self.threads
            .iter()
            .filter(|&&outcome| outcome == PinOutcome::Failed)
            .count()
    }

    /// `true` when a non-`None` policy could not be applied in full (too
    /// few cores, or pinning unsupported on this host).
    pub fn degraded(&self) -> bool {
        self.policy != PlacementPolicy::None
            && self
                .threads
                .iter()
                .any(|&outcome| !matches!(outcome, PinOutcome::Pinned(_)))
    }
}

/// Plans the core assignment for `threads` workers on `cores` cores.
///
/// Pure and deterministic so the policies are unit-testable without
/// touching the host: `assignments[i]` is the core for worker `i`, `None`
/// meaning "leave unpinned". Cores are never oversubscribed — when there
/// are more threads than cores, the surplus threads stay unpinned (and the
/// driver records the degradation) rather than stacking on busy cores
/// behind the measurement's back.
pub fn plan_placement(policy: PlacementPolicy, threads: usize, cores: usize) -> Vec<Option<usize>> {
    match policy {
        PlacementPolicy::None => vec![None; threads],
        PlacementPolicy::Compact => (0..threads).map(|i| (i < cores).then_some(i)).collect(),
        PlacementPolicy::Scatter => (0..threads)
            .map(|i| (i < cores).then(|| i * cores / threads.min(cores).max(1)))
            .collect(),
    }
}

/// Number of cores the planner should assume (1 if the host won't say).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The calling thread's kernel thread id, read from
/// `/proc/thread-self/status` (the `Pid:` line is per-thread there).
/// `None` on hosts without a Linux-style procfs.
fn current_thread_id() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/thread-self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Pid:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// Upper bound on core indices handed to `taskset`. The Linux kernel caps
/// `CONFIG_NR_CPUS` at 8192; beyond that the index is garbage, and some
/// util-linux builds spin forever sizing a cpumask for an absurd CPU
/// number instead of rejecting it — so the bound must be enforced *before*
/// spawning the child.
const MAX_CORE_INDEX: usize = 8192;

/// Best-effort pin of the calling thread to `core` via `taskset(1)`.
pub fn pin_current_thread(core: usize) -> PinOutcome {
    if core >= MAX_CORE_INDEX {
        return PinOutcome::Failed;
    }
    let Some(tid) = current_thread_id() else {
        return PinOutcome::Failed;
    };
    let applied = std::process::Command::new("taskset")
        .arg("-p")
        .arg("-c")
        .arg(core.to_string())
        .arg(tid.to_string())
        .output()
        .map(|output| output.status.success())
        .unwrap_or(false);
    if applied {
        PinOutcome::Pinned(core)
    } else {
        PinOutcome::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_plans_no_pins() {
        assert_eq!(
            plan_placement(PlacementPolicy::None, 3, 8),
            vec![None, None, None]
        );
    }

    #[test]
    fn compact_assigns_distinct_consecutive_cores() {
        assert_eq!(
            plan_placement(PlacementPolicy::Compact, 4, 8),
            vec![Some(0), Some(1), Some(2), Some(3)]
        );
    }

    #[test]
    fn scatter_assigns_distinct_spread_cores() {
        assert_eq!(
            plan_placement(PlacementPolicy::Scatter, 4, 8),
            vec![Some(0), Some(2), Some(4), Some(6)]
        );
        // With as many threads as cores the two policies coincide.
        assert_eq!(
            plan_placement(PlacementPolicy::Scatter, 4, 4),
            plan_placement(PlacementPolicy::Compact, 4, 4)
        );
    }

    #[test]
    fn plans_never_double_book_a_core() {
        for policy in [PlacementPolicy::Compact, PlacementPolicy::Scatter] {
            for (threads, cores) in [(1, 1), (2, 8), (5, 8), (8, 8), (7, 3)] {
                let plan = plan_placement(policy, threads, cores);
                assert_eq!(plan.len(), threads);
                let assigned: Vec<usize> = plan.iter().flatten().copied().collect();
                let distinct: std::collections::HashSet<_> = assigned.iter().collect();
                assert_eq!(
                    distinct.len(),
                    assigned.len(),
                    "{policy:?} {threads}x{cores} double-books: {plan:?}"
                );
                assert!(
                    assigned.iter().all(|&core| core < cores),
                    "{policy:?} {threads}x{cores} out of range: {plan:?}"
                );
            }
        }
    }

    #[test]
    fn oversubscription_degrades_to_unpinned_threads() {
        // More threads than cores: the surplus is left to the scheduler,
        // not stacked — the driver records this as a degraded placement.
        let plan = plan_placement(PlacementPolicy::Compact, 4, 2);
        assert_eq!(plan, vec![Some(0), Some(1), None, None]);
        let plan = plan_placement(PlacementPolicy::Scatter, 4, 2);
        assert_eq!(plan[2..], [None, None]);
    }

    #[test]
    fn outcome_counts_and_degradation() {
        let outcome = PlacementOutcome {
            policy: PlacementPolicy::Compact,
            cores: 2,
            threads: vec![
                PinOutcome::Pinned(0),
                PinOutcome::Failed,
                PinOutcome::Unplanned,
            ],
        };
        assert_eq!(outcome.pinned(), 1);
        assert_eq!(outcome.failed(), 1);
        assert!(outcome.degraded());

        let clean = PlacementOutcome {
            policy: PlacementPolicy::Scatter,
            cores: 8,
            threads: vec![PinOutcome::Pinned(0), PinOutcome::Pinned(4)],
        };
        assert!(!clean.degraded());

        let unpinned_by_choice = PlacementOutcome {
            policy: PlacementPolicy::None,
            cores: 1,
            threads: vec![PinOutcome::Unplanned; 4],
        };
        assert!(
            !unpinned_by_choice.degraded(),
            "policy none is never degraded"
        );
    }

    #[test]
    fn labels_round_trip() {
        for policy in PlacementPolicy::ALL {
            assert_eq!(policy.label().parse::<PlacementPolicy>().unwrap(), policy);
        }
        assert!("numa".parse::<PlacementPolicy>().is_err());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn thread_ids_are_per_thread_on_linux() {
        let main_tid = current_thread_id().expect("procfs available");
        let worker_tid = std::thread::spawn(|| current_thread_id().expect("procfs available"))
            .join()
            .unwrap();
        assert_ne!(main_tid, worker_tid, "Pid: in thread-self is the tid");
    }

    /// Pinning is best-effort by contract: whatever the host supports, the
    /// call must return an outcome instead of panicking. On a Linux host
    /// with `taskset`, pinning to core 0 (always present) must succeed.
    #[test]
    fn pin_current_thread_never_panics() {
        let outcome = pin_current_thread(0);
        if cfg!(target_os = "linux") && std::path::Path::new("/usr/bin/taskset").exists() {
            assert_eq!(outcome, PinOutcome::Pinned(0));
        } else {
            assert!(matches!(
                outcome,
                PinOutcome::Pinned(0) | PinOutcome::Failed
            ));
        }
        // An impossible core must report failure, not panic — and without
        // spawning taskset at all (util-linux can hang on absurd masks).
        assert_eq!(pin_current_thread(usize::MAX), PinOutcome::Failed);
        assert_eq!(pin_current_thread(MAX_CORE_INDEX), PinOutcome::Failed);
    }
}
