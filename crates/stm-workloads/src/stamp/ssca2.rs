//! STAMP `ssca2`: graph construction with very small transactions.
//!
//! The SSCA2 kernel inserts edges into the adjacency structure of a large
//! sparse graph. Transactions are tiny (append one edge: bump two degree
//! counters and write two adjacency slots) and contention is low because
//! edge endpoints are spread over many nodes — the paper uses it as a
//! low-contention, short-transaction data point.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::{Addr, Word};

use crate::driver::Workload;

/// Configuration of the ssca2 kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ssca2Config {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Maximum adjacency slots per node.
    pub max_degree: usize,
}

impl Ssca2Config {
    /// The graph geometry for a size profile (quick matches the historic
    /// default).
    pub fn for_profile(profile: crate::profile::SizeProfile) -> Self {
        Ssca2Config {
            nodes: profile.pick(4096, 16_384, 65_536),
            max_degree: profile.pick(16, 16, 32),
        }
    }
}

impl Default for Ssca2Config {
    fn default() -> Self {
        Ssca2Config::for_profile(crate::profile::SizeProfile::Quick)
    }
}

/// The ssca2 workload: a shared adjacency structure.
#[derive(Debug)]
pub struct Ssca2Workload {
    config: Ssca2Config,
    /// Per node: `[degree, slot_0 .. slot_{max_degree-1}]`.
    adjacency: Addr,
    /// Pre-generated edge list (deterministic).
    edges: Vec<(usize, usize)>,
}

impl Ssca2Workload {
    fn node_words(config: &Ssca2Config) -> usize {
        config.max_degree + 1
    }

    /// Builds the empty adjacency structure and a deterministic edge list.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the adjacency arrays.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: Ssca2Config, seed: u64) -> Arc<Self> {
        let adjacency = stm
            .heap()
            .alloc_zeroed(config.nodes * Self::node_words(&config))
            .expect("heap too small for ssca2 adjacency");
        let mut rng = FastRng::new(seed | 1);
        let edges = (0..config.nodes * 4)
            .map(|_| {
                (
                    rng.next_below(config.nodes as u64) as usize,
                    rng.next_below(config.nodes as u64) as usize,
                )
            })
            .collect();
        Arc::new(Ssca2Workload {
            config,
            adjacency,
            edges,
        })
    }

    fn node(&self, index: usize) -> Addr {
        self.adjacency
            .offset(index * Self::node_words(&self.config))
    }

    /// Total number of directed adjacency entries inserted so far.
    pub fn total_degree<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> u64 {
        ctx.atomically(|tx| {
            let mut total = 0;
            for n in 0..self.config.nodes {
                total += tx.read(self.node(n))?;
            }
            Ok(total)
        })
        .unwrap_or(0)
    }
}

impl<A: TmAlgorithm> Workload<A> for Ssca2Workload {
    fn execute(&self, ctx: &mut ThreadContext<A>, _rng: &mut FastRng, op_index: u64) {
        let (from, to) = self.edges[(op_index as usize) % self.edges.len()];
        ctx.atomically(|tx| {
            for &endpoint in &[from, to] {
                let node = self.node(endpoint);
                let degree = tx.read(node)?;
                if (degree as usize) < self.config.max_degree {
                    tx.write(node.offset(1 + degree as usize), (from ^ to) as Word)?;
                    tx.write(node, degree + 1)?;
                }
            }
            Ok(())
        })
        .expect("ssca2 edge insertion must eventually commit");
    }

    fn name(&self) -> String {
        format!("ssca2(nodes={})", self.config.nodes)
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        // Degrees never exceed the per-node capacity.
        ctx.atomically(|tx| {
            for n in 0..self.config.nodes {
                if tx.read(self.node(n))? as usize > self.config.max_degree {
                    return Ok(false);
                }
            }
            Ok(true)
        })
        .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;

    #[test]
    fn edges_are_inserted_and_degrees_bounded() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = Ssca2Workload::setup(
            &stm,
            Ssca2Config {
                nodes: 128,
                max_degree: 8,
            },
            3,
        );
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            3,
            RunLength::TotalOps(300),
            1,
        );
        assert!(result.check_passed);
        let mut ctx = ThreadContext::register(stm);
        let degree = workload.total_degree(&mut ctx);
        assert!(degree > 0);
        assert!(degree <= 600);
    }
}
