//! STAMP `yada`: Delaunay mesh refinement.
//!
//! The original application repeatedly pops a "bad" triangle from a shared
//! work list, collects the cavity of elements around it, retriangulates the
//! cavity and pushes any newly created bad triangles back. Transactions are
//! mid-sized (a cavity of elements read and rewritten) and the work list is
//! shared. The reproduction keeps exactly that skeleton over a mesh of
//! element records: each element has a quality value and a fixed set of
//! neighbours; "refining" an element improves its quality, perturbs its
//! neighbours and occasionally reinserts a neighbour into the work list.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::{Addr, Word};

use crate::driver::Workload;
use crate::structures::Queue;

/// Quality threshold below which an element is considered "bad".
const QUALITY_THRESHOLD: Word = 50;

/// Configuration of the yada kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct YadaConfig {
    /// Number of mesh elements.
    pub elements: usize,
    /// Neighbours per element (the cavity size).
    pub neighbours: usize,
    /// Fraction (percent) of elements that start out "bad".
    pub initial_bad_percent: u64,
}

impl YadaConfig {
    /// The mesh geometry for a size profile (quick matches the historic
    /// default).
    pub fn for_profile(profile: crate::profile::SizeProfile) -> Self {
        YadaConfig {
            elements: profile.pick(4096, 16_384, 65_536),
            neighbours: 4,
            initial_bad_percent: 30,
        }
    }
}

impl Default for YadaConfig {
    fn default() -> Self {
        YadaConfig::for_profile(crate::profile::SizeProfile::Quick)
    }
}

/// The yada workload.
#[derive(Debug)]
pub struct YadaWorkload {
    config: YadaConfig,
    /// Per element: `[quality, neighbour_0 .. neighbour_{n-1}]` (neighbour
    /// slots store element indices).
    mesh: Addr,
    /// Work list of bad element indices.
    worklist: Queue,
}

impl YadaWorkload {
    fn element_words(config: &YadaConfig) -> usize {
        config.neighbours + 1
    }

    /// Builds the mesh and seeds the work list with the initially bad
    /// elements.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the mesh.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: YadaConfig, seed: u64) -> Arc<Self> {
        let mesh = stm
            .heap()
            .alloc_zeroed(config.elements * Self::element_words(&config))
            .expect("heap too small for the yada mesh");
        let worklist = Queue::create(stm.heap()).expect("heap exhausted");
        let workload = YadaWorkload {
            config,
            mesh,
            worklist,
        };

        let mut rng = FastRng::new(seed | 1);
        let mut ctx = ThreadContext::register(Arc::clone(stm));
        for element in 0..config.elements {
            let bad = rng.chance_percent(config.initial_bad_percent);
            let quality = if bad {
                rng.next_below(QUALITY_THRESHOLD)
            } else {
                QUALITY_THRESHOLD + rng.next_below(50)
            };
            let neighbours: Vec<Word> = (0..config.neighbours)
                .map(|_| rng.next_below(config.elements as u64))
                .collect();
            ctx.atomically(|tx| {
                let base = workload.element(element);
                tx.write(base, quality)?;
                for (i, &n) in neighbours.iter().enumerate() {
                    tx.write(base.offset(1 + i), n)?;
                }
                if bad {
                    workload.worklist.enqueue(tx, element as Word)?;
                }
                Ok(())
            })
            .expect("mesh construction failed");
        }
        Arc::new(workload)
    }

    fn element(&self, index: usize) -> Addr {
        self.mesh.offset(index * Self::element_words(&self.config))
    }

    /// Number of elements still below the quality threshold.
    pub fn remaining_bad<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> usize {
        ctx.atomically(|tx| {
            let mut bad = 0;
            for e in 0..self.config.elements {
                if tx.read(self.element(e))? < QUALITY_THRESHOLD {
                    bad += 1;
                }
            }
            Ok(bad)
        })
        .unwrap_or(usize::MAX)
    }
}

impl<A: TmAlgorithm> Workload<A> for YadaWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, _op_index: u64) {
        ctx.atomically(|tx| {
            // Pop a bad element; nothing to do if the work list is empty.
            let Some(element) = self.worklist.dequeue(tx)? else {
                return Ok(());
            };
            let element = element as usize;
            let base = self.element(element);
            // Read the cavity: the element and its neighbours.
            let mut cavity = vec![element];
            for i in 0..self.config.neighbours {
                cavity.push(tx.read(base.offset(1 + i))? as usize);
            }
            // Retriangulate: the centre becomes good, neighbours get
            // perturbed; a neighbour that drops below the threshold goes
            // back on the work list.
            tx.write(base, QUALITY_THRESHOLD + rng.next_below(50))?;
            for &neighbour in &cavity[1..] {
                let n_base = self.element(neighbour);
                let quality = tx.read(n_base)?;
                let perturbed = if rng.chance_percent(25) {
                    quality.saturating_sub(10)
                } else {
                    quality + 5
                };
                tx.write(n_base, perturbed)?;
                if perturbed < QUALITY_THRESHOLD {
                    self.worklist.enqueue(tx, neighbour as Word)?;
                }
            }
            Ok(())
        })
        .expect("yada refinement must eventually commit");
    }

    fn name(&self) -> String {
        format!("yada(elements={})", self.config.elements)
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        // The mesh must stay addressable and neighbour indices in range.
        ctx.atomically(|tx| {
            for e in (0..self.config.elements).step_by(64) {
                let base = self.element(e);
                for i in 0..self.config.neighbours {
                    if tx.read(base.offset(1 + i))? as usize >= self.config.elements {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        })
        .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;

    fn small_config() -> YadaConfig {
        YadaConfig {
            elements: 256,
            neighbours: 3,
            initial_bad_percent: 40,
        }
    }

    #[test]
    fn refinement_reduces_bad_elements() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = YadaWorkload::setup(&stm, small_config(), 3);
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        let before = workload.remaining_bad(&mut ctx);
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            2,
            RunLength::TotalOps(400),
            9,
        );
        assert!(result.check_passed);
        let after = workload.remaining_bad(&mut ctx);
        assert!(
            after < before,
            "refinement should reduce bad elements ({before} -> {after})"
        );
    }
}
