//! STAMP `bayes`: Bayesian network structure learning.
//!
//! The original application learns the structure of a Bayesian network by
//! hill climbing: each transaction evaluates the score gain of adding a
//! dependency edge (reading the adjacency information and a chunk of the
//! training data) and, when beneficial, inserts the edge and updates the
//! affected scores. Transactions are comparatively long — this is one of
//! the workloads where SwissTM's advantage over TL2 is largest in the
//! paper's Figure 3.
//!
//! The reproduction keeps the skeleton: a dependency graph over `variables`
//! nodes stored as adjacency bitmaps, a per-node score word, and a shared
//! block of "training data" words that every evaluation reads.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::{Addr, Word};

use crate::driver::Workload;

/// Configuration of the bayes kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BayesConfig {
    /// Number of random variables (nodes of the learned network). At most
    /// 64 so a node's parent set fits in one bitmap word.
    pub variables: usize,
    /// Number of shared training-data words each evaluation reads.
    pub data_words_per_eval: usize,
    /// Total size of the training-data block.
    pub data_words: usize,
    /// Maximum number of parents per variable.
    pub max_parents: u32,
}

impl BayesConfig {
    /// The dataset geometry for a size profile. Quick matches the historic
    /// default; full and huge grow the training data and per-evaluation
    /// read sets (the variable count is capped at 64 by the bitmap layout).
    pub fn for_profile(profile: crate::profile::SizeProfile) -> Self {
        BayesConfig {
            variables: profile.pick(48, 64, 64),
            data_words_per_eval: profile.pick(96, 192, 384),
            data_words: profile.pick(4096, 16_384, 65_536),
            max_parents: profile.pick(4, 4, 6),
        }
    }
}

impl Default for BayesConfig {
    fn default() -> Self {
        BayesConfig::for_profile(crate::profile::SizeProfile::Quick)
    }
}

/// The bayes workload.
#[derive(Debug)]
pub struct BayesWorkload {
    config: BayesConfig,
    /// Per variable: `[parents_bitmap, score]`.
    nodes: Addr,
    /// Shared training data (read-only after set-up, but read inside
    /// transactions, lengthening them).
    data: Addr,
}

impl BayesWorkload {
    const NODE_WORDS: usize = 2;

    /// Builds the empty network and the training data.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the structures, or if
    /// `config.variables > 64`.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: BayesConfig, seed: u64) -> Arc<Self> {
        assert!(config.variables <= 64, "parent bitmaps are single words");
        let nodes = stm
            .heap()
            .alloc_zeroed(config.variables * Self::NODE_WORDS)
            .expect("heap too small for bayes nodes");
        let data = stm
            .heap()
            .alloc_zeroed(config.data_words)
            .expect("heap too small for bayes data");
        let mut rng = FastRng::new(seed | 1);
        for i in 0..config.data_words {
            stm.heap().store(data.offset(i), rng.next_below(1000));
        }
        Arc::new(BayesWorkload {
            config,
            nodes,
            data,
        })
    }

    fn node(&self, variable: usize) -> Addr {
        self.nodes.offset(variable * Self::NODE_WORDS)
    }

    /// Total number of edges in the learned network.
    pub fn edge_count<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> u32 {
        ctx.atomically(|tx| {
            let mut edges = 0;
            for v in 0..self.config.variables {
                edges += tx.read(self.node(v))?.count_ones();
            }
            Ok(edges)
        })
        .unwrap_or(0)
    }
}

impl<A: TmAlgorithm> Workload<A> for BayesWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, _op_index: u64) {
        let child = rng.next_below(self.config.variables as u64) as usize;
        let parent = rng.next_below(self.config.variables as u64) as usize;
        let data_start = rng
            .next_below((self.config.data_words - self.config.data_words_per_eval) as u64)
            as usize;
        ctx.atomically(|tx| {
            if child == parent {
                return Ok(());
            }
            let child_node = self.node(child);
            let parent_node = self.node(parent);
            let parents = tx.read(child_node)?;
            if parents & (1 << parent) != 0 || parents.count_ones() >= self.config.max_parents {
                return Ok(());
            }
            // "Score" the candidate edge by scanning a chunk of the shared
            // training data — a long read phase, as in the original.
            let mut score_gain: Word = 0;
            for i in 0..self.config.data_words_per_eval {
                score_gain = score_gain.wrapping_add(tx.read(self.data.offset(data_start + i))?);
            }
            score_gain %= 100;
            let child_score = tx.read(child_node.offset(1))?;
            if score_gain > 40 {
                // Accept: add the edge and update both scores.
                tx.write(child_node, parents | (1 << parent))?;
                tx.write(child_node.offset(1), child_score + score_gain)?;
                let parent_score = tx.read(parent_node.offset(1))?;
                tx.write(parent_node.offset(1), parent_score + 1)?;
            }
            Ok(())
        })
        .expect("bayes evaluation must eventually commit");
    }

    fn name(&self) -> String {
        format!("bayes(vars={})", self.config.variables)
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        // Parent sets respect the cap and never point at the node itself.
        ctx.atomically(|tx| {
            for v in 0..self.config.variables {
                let parents = tx.read(self.node(v))?;
                if parents.count_ones() > self.config.max_parents {
                    return Ok(false);
                }
                if parents & (1 << v) != 0 {
                    return Ok(false);
                }
            }
            Ok(true)
        })
        .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;

    fn small_config() -> BayesConfig {
        BayesConfig {
            variables: 16,
            data_words_per_eval: 16,
            data_words: 256,
            max_parents: 3,
        }
    }

    #[test]
    fn learning_adds_edges_within_bounds() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = BayesWorkload::setup(&stm, small_config(), 3);
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            2,
            RunLength::TotalOps(300),
            5,
        );
        assert!(result.check_passed);
        let mut ctx = ThreadContext::register(stm);
        let edges = workload.edge_count(&mut ctx);
        assert!(edges > 0, "hill climbing should have accepted some edges");
        assert!(edges <= (small_config().variables as u32) * small_config().max_parents);
    }

    #[test]
    #[should_panic(expected = "parent bitmaps")]
    fn too_many_variables_is_rejected() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let config = BayesConfig {
            variables: 65,
            ..small_config()
        };
        let _ = BayesWorkload::setup(&stm, config, 1);
    }
}
