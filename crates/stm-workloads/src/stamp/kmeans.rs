//! STAMP `kmeans`: clustering with tiny update transactions.
//!
//! Each operation assigns one point to its nearest cluster centre (a
//! non-transactional distance computation over a read-only snapshot of the
//! points) and then transactionally adds the point to the centre's
//! accumulator. The contention knob is the number of clusters: few clusters
//! (high contention) make most transactions collide on the same handful of
//! accumulator words.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::{Addr, Word};

use crate::driver::Workload;

/// Number of coordinates per point.
pub const DIMENSIONS: usize = 4;

/// Configuration of the kmeans kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KmeansConfig {
    /// Number of points.
    pub points: usize,
    /// Number of cluster centres.
    pub clusters: usize,
}

impl KmeansConfig {
    /// High-contention variant (few clusters) at the quick profile.
    pub fn high_contention() -> Self {
        KmeansConfig::high_contention_at(crate::profile::SizeProfile::Quick)
    }

    /// High-contention variant at the given size profile: the cluster count
    /// (the contention knob) stays small while the point set grows.
    pub fn high_contention_at(profile: crate::profile::SizeProfile) -> Self {
        KmeansConfig {
            points: profile.pick(2048, 16_384, 65_536),
            clusters: profile.pick(8, 16, 16),
        }
    }

    /// Low-contention variant (many clusters) at the quick profile.
    pub fn low_contention() -> Self {
        KmeansConfig::low_contention_at(crate::profile::SizeProfile::Quick)
    }

    /// Low-contention variant at the given size profile.
    pub fn low_contention_at(profile: crate::profile::SizeProfile) -> Self {
        KmeansConfig {
            points: profile.pick(2048, 16_384, 65_536),
            clusters: profile.pick(48, 64, 160),
        }
    }
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig::high_contention()
    }
}

/// The kmeans workload.
#[derive(Debug)]
pub struct KmeansWorkload {
    config: KmeansConfig,
    /// Non-transactional, read-only point coordinates.
    points: Vec<[Word; DIMENSIONS]>,
    /// Cluster centres (read-only during one round).
    centres: Vec<[Word; DIMENSIONS]>,
    /// Accumulators: per cluster, `DIMENSIONS` sums plus a count word.
    accumulators: Addr,
}

impl KmeansWorkload {
    /// Words per accumulator record.
    const ACC_WORDS: usize = DIMENSIONS + 1;

    /// Builds the points and the shared accumulators.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the accumulators.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: KmeansConfig, seed: u64) -> Arc<Self> {
        let mut rng = FastRng::new(seed | 1);
        let points: Vec<[Word; DIMENSIONS]> = (0..config.points)
            .map(|_| std::array::from_fn(|_| rng.next_below(1000)))
            .collect();
        let centres: Vec<[Word; DIMENSIONS]> = (0..config.clusters)
            .map(|_| std::array::from_fn(|_| rng.next_below(1000)))
            .collect();
        let accumulators = stm
            .heap()
            .alloc_zeroed(config.clusters * Self::ACC_WORDS)
            .expect("heap too small for kmeans accumulators");
        Arc::new(KmeansWorkload {
            config,
            points,
            centres,
            accumulators,
        })
    }

    fn nearest_centre(&self, point: &[Word; DIMENSIONS]) -> usize {
        let mut best = 0;
        let mut best_distance = u64::MAX;
        for (i, centre) in self.centres.iter().enumerate() {
            let distance: u64 = point
                .iter()
                .zip(centre.iter())
                .map(|(&p, &c)| {
                    let d = p.abs_diff(c);
                    d * d
                })
                .sum();
            if distance < best_distance {
                best_distance = distance;
                best = i;
            }
        }
        best
    }

    fn accumulator(&self, cluster: usize) -> Addr {
        self.accumulators.offset(cluster * Self::ACC_WORDS)
    }

    /// Sum of all accumulator counts (equals the number of executed
    /// operations).
    pub fn total_assigned<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> u64 {
        ctx.atomically(|tx| {
            let mut total = 0;
            for c in 0..self.config.clusters {
                total += tx.read(self.accumulator(c).offset(DIMENSIONS))?;
            }
            Ok(total)
        })
        .unwrap_or(0)
    }
}

impl<A: TmAlgorithm> Workload<A> for KmeansWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, _rng: &mut FastRng, op_index: u64) {
        let point = &self.points[(op_index as usize) % self.points.len()];
        let cluster = self.nearest_centre(point);
        let acc = self.accumulator(cluster);
        ctx.atomically(|tx| {
            for (d, &coordinate) in point.iter().enumerate() {
                let sum = tx.read(acc.offset(d))?;
                tx.write(acc.offset(d), sum + coordinate)?;
            }
            let count = tx.read(acc.offset(DIMENSIONS))?;
            tx.write(acc.offset(DIMENSIONS), count + 1)
        })
        .expect("kmeans update must eventually commit");
    }

    fn name(&self) -> String {
        format!("kmeans(clusters={})", self.config.clusters)
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        // Every assignment increments exactly one count: totals must be
        // non-zero after a run and sums consistent with counts (sums of
        // coordinates bounded by count * max coordinate).
        ctx.atomically(|tx| {
            for c in 0..self.config.clusters {
                let acc = self.accumulator(c);
                let count = tx.read(acc.offset(DIMENSIONS))?;
                for d in 0..DIMENSIONS {
                    if tx.read(acc.offset(d))? > count * 1000 {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        })
        .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;

    #[test]
    fn assignments_are_counted_exactly_once() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = KmeansWorkload::setup(&stm, KmeansConfig::high_contention(), 3);
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            4,
            RunLength::TotalOps(400),
            5,
        );
        assert!(result.check_passed);
        let mut ctx = ThreadContext::register(stm);
        assert_eq!(workload.total_assigned(&mut ctx), 400);
    }

    #[test]
    fn contention_variants_differ_in_cluster_count() {
        assert!(KmeansConfig::high_contention().clusters < KmeansConfig::low_contention().clusters);
    }

    #[test]
    fn nearest_centre_is_stable() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = KmeansWorkload::setup(&stm, KmeansConfig::low_contention(), 11);
        let c1 = workload.nearest_centre(&workload.points[0].clone());
        let c2 = workload.nearest_centre(&workload.points[0].clone());
        assert_eq!(c1, c2);
    }
}
