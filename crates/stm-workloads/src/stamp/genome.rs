//! STAMP `genome`: gene sequencing (segment deduplication + chaining).
//!
//! The original application reassembles a genome from overlapping segments
//! in two transactional phases: deduplicating segments by inserting them
//! into a hash set, and then linking unique segments into chains by matching
//! overlapping prefixes/suffixes. The reproduction keeps both phases:
//! every operation deduplicates one segment and, if it was fresh, links it
//! to its predecessor in a shared chain table.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::Word;

use crate::driver::Workload;
use crate::structures::HashMap;

/// Configuration of the genome kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenomeConfig {
    /// Number of distinct segments in the underlying "genome".
    pub unique_segments: usize,
    /// Oversampling factor: how many (duplicated) segment observations the
    /// input stream contains per unique segment.
    pub duplication: usize,
    /// Buckets of the deduplication and chain tables.
    pub buckets: usize,
}

impl GenomeConfig {
    /// The dataset geometry for a size profile (quick matches the historic
    /// default).
    pub fn for_profile(profile: crate::profile::SizeProfile) -> Self {
        GenomeConfig {
            unique_segments: profile.pick(2048, 8192, 32_768),
            duplication: profile.pick(4, 4, 8),
            buckets: profile.pick(1024, 4096, 16_384),
        }
    }
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig::for_profile(crate::profile::SizeProfile::Quick)
    }
}

/// The genome workload.
#[derive(Debug)]
pub struct GenomeWorkload {
    config: GenomeConfig,
    /// The input stream of segment ids (with duplicates), fixed at set-up.
    stream: Vec<Word>,
    /// Deduplication set: segment id -> 1.
    segments: HashMap,
    /// Chain table: segment id -> id of its successor segment.
    chains: HashMap,
}

impl GenomeWorkload {
    /// Builds the input stream and the shared tables.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the tables.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: GenomeConfig, seed: u64) -> Arc<Self> {
        let segments =
            HashMap::create(stm.heap(), config.buckets).expect("heap too small for genome tables");
        let chains =
            HashMap::create(stm.heap(), config.buckets).expect("heap too small for genome tables");
        let mut rng = FastRng::new(seed | 1);
        let mut stream = Vec::with_capacity(config.unique_segments * config.duplication);
        for _ in 0..config.unique_segments * config.duplication {
            // Segment ids 1..=unique_segments; 0 is reserved.
            stream.push(1 + rng.next_below(config.unique_segments as u64));
        }
        Arc::new(GenomeWorkload {
            config,
            stream,
            segments,
            chains,
        })
    }

    /// Number of distinct segments inserted so far.
    pub fn distinct_segments<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> usize {
        ctx.atomically(|tx| self.segments.len(tx)).unwrap_or(0)
    }
}

impl<A: TmAlgorithm> Workload<A> for GenomeWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, _rng: &mut FastRng, op_index: u64) {
        let segment = self.stream[(op_index as usize) % self.stream.len()];
        // Phase 1: deduplicate.
        let fresh = ctx
            .atomically(|tx| self.segments.insert(tx, segment, 1))
            .expect("genome dedup must eventually commit");
        if fresh {
            // Phase 2: link the segment to its overlap successor
            // (deterministically `segment + 1`, wrapping), mimicking the
            // chain construction of the original application.
            let successor = if segment as usize >= self.config.unique_segments {
                1
            } else {
                segment + 1
            };
            ctx.atomically(|tx| {
                // Only link if the successor has not already been claimed by
                // somebody else chaining to it.
                if self.chains.get(tx, segment)?.is_none() {
                    self.chains.insert(tx, segment, successor)?;
                }
                Ok(())
            })
            .expect("genome chaining must eventually commit");
        }
    }

    fn name(&self) -> String {
        format!("genome(segments={})", self.config.unique_segments)
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        ctx.atomically(|tx| {
            let distinct = self.segments.len(tx)?;
            let chained = self.chains.len(tx)?;
            // Chains only exist for deduplicated segments.
            Ok(chained <= distinct && distinct <= self.config.unique_segments)
        })
        .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;

    #[test]
    fn deduplication_converges_to_unique_segments() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let config = GenomeConfig {
            unique_segments: 64,
            duplication: 4,
            buckets: 64,
        };
        let workload = GenomeWorkload::setup(&stm, config, 5);
        let total = (config.unique_segments * config.duplication) as u64;
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            3,
            RunLength::TotalOps(total),
            9,
        );
        assert!(result.check_passed);
        let mut ctx = ThreadContext::register(stm);
        let distinct = workload.distinct_segments(&mut ctx);
        // Drawing 256 samples from 64 ids covers almost all of them.
        assert!(distinct > 48, "only {distinct} distinct segments inserted");
        assert!(distinct <= 64);
    }
}
