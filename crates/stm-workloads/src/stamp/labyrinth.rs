//! STAMP `labyrinth`: maze routing.
//!
//! STAMP's labyrinth uses the same routing algorithm as Lee-TM (the paper
//! points this out explicitly); the difference is the synthetic maze input
//! instead of real circuit boards. The reproduction therefore wraps the
//! [`crate::lee`] router with a maze-shaped configuration: a mid-size grid
//! with a moderate number of long routes.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::tm::{ThreadContext, TmAlgorithm};

use crate::driver::Workload;
use crate::lee::{LeeBoard, LeeConfig, LeeWorkload};

/// Configuration of the labyrinth kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabyrinthConfig {
    /// Maze side length (the maze is square).
    pub side: usize,
    /// Number of paths to route.
    pub paths: usize,
}

impl LabyrinthConfig {
    /// The maze geometry for a size profile (quick matches the historic
    /// default).
    pub fn for_profile(profile: crate::profile::SizeProfile) -> Self {
        LabyrinthConfig {
            side: profile.pick(48, 96, 192),
            paths: profile.pick(96, 192, 384),
        }
    }
}

impl Default for LabyrinthConfig {
    fn default() -> Self {
        LabyrinthConfig::for_profile(crate::profile::SizeProfile::Quick)
    }
}

/// The labyrinth workload (a thin wrapper around the Lee router).
#[derive(Debug)]
pub struct LabyrinthWorkload {
    router: Arc<LeeWorkload>,
    config: LabyrinthConfig,
}

impl LabyrinthWorkload {
    /// Builds the maze and its path list.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the maze.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: LabyrinthConfig, seed: u64) -> Arc<Self> {
        let lee_config = LeeConfig {
            board: LeeBoard::Test,
            width: config.side,
            height: config.side,
            routes: config.paths,
            max_route_length: config.side / 2,
            irregular_update_percent: 0,
        };
        let router = LeeWorkload::setup(stm, lee_config, seed ^ 0x1ab);
        Arc::new(LabyrinthWorkload { router, config })
    }

    /// The wrapped router (used by tests).
    pub fn router(&self) -> &LeeWorkload {
        &self.router
    }
}

impl<A: TmAlgorithm> Workload<A> for LabyrinthWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, op_index: u64) {
        self.router.execute(ctx, rng, op_index);
    }

    fn name(&self) -> String {
        format!(
            "labyrinth(side={}, paths={})",
            self.config.side, self.config.paths
        )
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        self.router.check(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;

    #[test]
    fn labyrinth_routes_paths() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = LabyrinthWorkload::setup(
            &stm,
            LabyrinthConfig {
                side: 16,
                paths: 12,
            },
            3,
        );
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            2,
            RunLength::TotalOps(12),
            5,
        );
        assert!(result.check_passed);
        let mut ctx = ThreadContext::register(stm);
        assert!(workload.router().routed(&mut ctx) > 0);
    }
}
