//! STAMP-style application kernels (paper Figure 3 and Figure 11).
//!
//! STAMP (Stanford Transactional Applications for Multi-Processing) is a
//! suite of eight applications / ten workloads. The reproduction keeps each
//! application's *transactional* structure — what a transaction reads and
//! writes, how long it is, and where the contention hot spots are — while
//! simplifying the non-transactional computation around it (see DESIGN.md
//! §2):
//!
//! | kernel | transactional behaviour reproduced |
//! |---|---|
//! | [`bayes`] | long transactions querying a dependency graph and inserting edges |
//! | [`genome`] | hash-set deduplication of segments followed by chain linking |
//! | [`intruder`] | a shared work queue (hot spot) plus per-flow reassembly maps |
//! | [`kmeans`] | tiny update transactions on a small set of cluster centres (high/low contention) |
//! | [`labyrinth`] | Lee-style routing on a grid (large read set, small write set) |
//! | [`ssca2`] | very small transactions appending edges to adjacency lists |
//! | [`vacation`] | mid-size transactions over red-black-tree tables (high/low contention) |
//! | [`yada`] | worklist-driven mesh refinement with neighbourhood rewrites |
//!
//! [`StampApp`] enumerates the ten workloads exactly as Figure 3 lists them.

pub mod bayes;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;
pub mod yada;

use std::sync::Arc;

use stm_core::tm::TmAlgorithm;

use crate::driver::Workload;
use crate::profile::SizeProfile;

/// The ten STAMP workloads of the paper's Figure 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StampApp {
    /// Bayesian network structure learning.
    Bayes,
    /// Gene sequencing (segment deduplication + overlap matching).
    Genome,
    /// Network intrusion detection (packet reassembly).
    Intruder,
    /// K-means clustering, high contention (few clusters).
    KmeansHigh,
    /// K-means clustering, low contention (many clusters).
    KmeansLow,
    /// Maze routing (the STAMP variant of Lee's algorithm).
    Labyrinth,
    /// Scalable synthetic graph kernel (edge insertion).
    Ssca2,
    /// Travel reservation system, high contention.
    VacationHigh,
    /// Travel reservation system, low contention.
    VacationLow,
    /// Delaunay mesh refinement.
    Yada,
}

impl StampApp {
    /// All ten workloads in the order Figure 3 lists them.
    pub fn all() -> [StampApp; 10] {
        [
            StampApp::Bayes,
            StampApp::Genome,
            StampApp::Intruder,
            StampApp::KmeansHigh,
            StampApp::KmeansLow,
            StampApp::Labyrinth,
            StampApp::Ssca2,
            StampApp::VacationHigh,
            StampApp::VacationLow,
            StampApp::Yada,
        ]
    }

    /// The label used in the paper's figure.
    pub fn label(self) -> &'static str {
        match self {
            StampApp::Bayes => "bayes",
            StampApp::Genome => "genome",
            StampApp::Intruder => "intruder",
            StampApp::KmeansHigh => "kmeans-high",
            StampApp::KmeansLow => "kmeans-low",
            StampApp::Labyrinth => "labyrinth",
            StampApp::Ssca2 => "ssca2",
            StampApp::VacationHigh => "vacation-high",
            StampApp::VacationLow => "vacation-low",
            StampApp::Yada => "yada",
        }
    }

    /// Number of fixed-work operations that constitute one "run" of this
    /// workload at the given size profile (scaled so every app finishes in
    /// a comparable time within a profile).
    pub fn ops_at(self, profile: SizeProfile) -> u64 {
        let full = match self {
            StampApp::Bayes => 400,
            StampApp::Genome => 4_000,
            StampApp::Intruder => 4_000,
            StampApp::KmeansHigh | StampApp::KmeansLow => 8_000,
            StampApp::Labyrinth => 96,
            StampApp::Ssca2 => 8_000,
            StampApp::VacationHigh | StampApp::VacationLow => 2_000,
            StampApp::Yada => 2_000,
        };
        profile.pick((full / 10).max(8), full, full * 4)
    }

    /// Builds the workload for this app on the given STM instance with the
    /// quick-profile dataset (pair with [`StampApp::ops_at`] at
    /// [`SizeProfile::Quick`]; use [`StampApp::build_at`] to pick another
    /// profile).
    pub fn build<A: TmAlgorithm>(self, stm: &Arc<A>, seed: u64) -> Arc<dyn Workload<A>> {
        self.build_at(stm, seed, SizeProfile::Quick)
    }

    /// Builds the workload for this app with the dataset geometry of the
    /// given size profile.
    ///
    /// The returned object is ready to be passed to
    /// [`crate::driver::run_workload`].
    pub fn build_at<A: TmAlgorithm>(
        self,
        stm: &Arc<A>,
        seed: u64,
        profile: SizeProfile,
    ) -> Arc<dyn Workload<A>> {
        match self {
            StampApp::Bayes => {
                bayes::BayesWorkload::setup(stm, bayes::BayesConfig::for_profile(profile), seed)
            }
            StampApp::Genome => {
                genome::GenomeWorkload::setup(stm, genome::GenomeConfig::for_profile(profile), seed)
            }
            StampApp::Intruder => intruder::IntruderWorkload::setup(
                stm,
                intruder::IntruderConfig::for_profile(profile),
                seed,
            ),
            StampApp::KmeansHigh => kmeans::KmeansWorkload::setup(
                stm,
                kmeans::KmeansConfig::high_contention_at(profile),
                seed,
            ),
            StampApp::KmeansLow => kmeans::KmeansWorkload::setup(
                stm,
                kmeans::KmeansConfig::low_contention_at(profile),
                seed,
            ),
            StampApp::Labyrinth => labyrinth::LabyrinthWorkload::setup(
                stm,
                labyrinth::LabyrinthConfig::for_profile(profile),
                seed,
            ),
            StampApp::Ssca2 => {
                ssca2::Ssca2Workload::setup(stm, ssca2::Ssca2Config::for_profile(profile), seed)
            }
            StampApp::VacationHigh => vacation::VacationWorkload::setup(
                stm,
                vacation::VacationConfig::high_contention_at(profile),
                seed,
            ),
            StampApp::VacationLow => vacation::VacationWorkload::setup(
                stm,
                vacation::VacationConfig::low_contention_at(profile),
                seed,
            ),
            StampApp::Yada => {
                yada::YadaWorkload::setup(stm, yada::YadaConfig::for_profile(profile), seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::{HeapConfig, LockTableConfig, StmConfig};
    use swisstm::SwissTm;
    use tl2::Tl2;

    fn config() -> StmConfig {
        StmConfig {
            heap: HeapConfig::with_words(1 << 21),
            lock_table: LockTableConfig::small(),
            clock: stm_core::config::ClockMode::Strict,
        }
    }

    #[test]
    fn labels_are_distinct_and_ten_workloads_exist() {
        let apps = StampApp::all();
        assert_eq!(apps.len(), 10);
        let mut labels: Vec<_> = apps.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn ops_scale_with_the_profile() {
        for app in StampApp::all() {
            assert!(app.ops_at(SizeProfile::Quick) < app.ops_at(SizeProfile::Full));
            assert!(app.ops_at(SizeProfile::Full) < app.ops_at(SizeProfile::Huge));
        }
        assert_eq!(StampApp::Genome.ops_at(SizeProfile::Quick), 400);
        assert_eq!(StampApp::Labyrinth.ops_at(SizeProfile::Quick), 9);
        assert_eq!(StampApp::Genome.ops_at(SizeProfile::Full), 4_000);
    }

    #[test]
    fn every_app_runs_briefly_on_swisstm() {
        for app in StampApp::all() {
            let stm = Arc::new(SwissTm::with_config(config()));
            let workload = app.build(&stm, 42);
            let result = run_workload(stm, workload, 2, RunLength::TotalOps(24), 7);
            assert!(result.check_passed, "{} failed its check", app.label());
            assert!(result.stats.totals.commits > 0, "{}", app.label());
        }
    }

    #[test]
    fn every_app_runs_briefly_on_tl2() {
        for app in StampApp::all() {
            let stm = Arc::new(Tl2::with_config(config()));
            let workload = app.build(&stm, 42);
            let result = run_workload(stm, workload, 2, RunLength::TotalOps(24), 7);
            assert!(result.check_passed, "{} failed its check", app.label());
        }
    }
}
