//! STAMP `intruder`: network intrusion detection.
//!
//! The application's transactional skeleton is a three-stage pipeline:
//! every worker (1) dequeues a packet fragment from a *single shared queue*
//! — the memory hot spot the paper points at in Figure 11 — (2) inserts the
//! fragment into a per-flow reassembly map and, when the flow is complete,
//! (3) pushes the reassembled flow onto a detection queue. The detection
//! scan itself is non-transactional.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::Word;

use crate::driver::Workload;
use crate::structures::{HashMap, Queue};

/// Configuration of the intruder kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntruderConfig {
    /// Number of network flows.
    pub flows: usize,
    /// Fragments per flow.
    pub fragments_per_flow: usize,
    /// Buckets of the reassembly map.
    pub buckets: usize,
}

impl IntruderConfig {
    /// The dataset geometry for a size profile (quick matches the historic
    /// default).
    pub fn for_profile(profile: crate::profile::SizeProfile) -> Self {
        IntruderConfig {
            flows: profile.pick(1024, 4096, 16_384),
            fragments_per_flow: profile.pick(4, 8, 8),
            buckets: profile.pick(512, 2048, 8192),
        }
    }
}

impl Default for IntruderConfig {
    fn default() -> Self {
        IntruderConfig::for_profile(crate::profile::SizeProfile::Quick)
    }
}

/// The intruder workload.
#[derive(Debug)]
pub struct IntruderWorkload {
    config: IntruderConfig,
    /// The shared fragment queue (hot spot).
    fragment_queue: Queue,
    /// Flow id -> number of fragments received.
    reassembly: HashMap,
    /// Completed flows awaiting detection.
    detection_queue: Queue,
}

impl IntruderWorkload {
    /// Builds the queues and pre-loads the fragment queue with the whole
    /// packet trace (flow fragments interleaved deterministically).
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the trace.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: IntruderConfig, seed: u64) -> Arc<Self> {
        let fragment_queue = Queue::create(stm.heap()).expect("heap exhausted");
        let reassembly = HashMap::create(stm.heap(), config.buckets).expect("heap exhausted");
        let detection_queue = Queue::create(stm.heap()).expect("heap exhausted");

        // Pre-load the trace: every flow contributes `fragments_per_flow`
        // fragments, interleaved by a deterministic shuffle.
        let mut fragments: Vec<Word> = Vec::new();
        for flow in 1..=config.flows as Word {
            for _ in 0..config.fragments_per_flow {
                fragments.push(flow);
            }
        }
        let mut rng = FastRng::new(seed | 1);
        for i in (1..fragments.len()).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            fragments.swap(i, j);
        }

        let mut ctx = ThreadContext::register(Arc::clone(stm));
        for chunk in fragments.chunks(64) {
            ctx.atomically(|tx| {
                for &fragment in chunk {
                    fragment_queue.enqueue(tx, fragment)?;
                }
                Ok(())
            })
            .expect("loading the packet trace failed");
        }

        Arc::new(IntruderWorkload {
            config,
            fragment_queue,
            reassembly,
            detection_queue,
        })
    }

    /// Number of flows fully reassembled and queued for detection.
    pub fn completed_flows<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> usize {
        ctx.atomically(|tx| self.detection_queue.len(tx))
            .unwrap_or(0)
    }
}

impl<A: TmAlgorithm> Workload<A> for IntruderWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, _rng: &mut FastRng, _op_index: u64) {
        // Stage 1: grab a fragment from the shared queue.
        let fragment = ctx
            .atomically(|tx| self.fragment_queue.dequeue(tx))
            .expect("dequeue must eventually commit");
        let Some(flow) = fragment else {
            return; // trace exhausted
        };
        // Stage 2: add it to the flow's reassembly state; when complete,
        // move the flow to the detection queue.
        let complete = ctx
            .atomically(|tx| {
                let received = self.reassembly.add(tx, flow, 1)?;
                Ok(received as usize == self.config.fragments_per_flow)
            })
            .expect("reassembly must eventually commit");
        if complete {
            ctx.atomically(|tx| self.detection_queue.enqueue(tx, flow))
                .expect("detection enqueue must eventually commit");
            // Stage 3 (detection scan) is a pure computation in the original
            // application; nothing transactional to do here.
        }
    }

    fn name(&self) -> String {
        format!("intruder(flows={})", self.config.flows)
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        ctx.atomically(|tx| {
            // No flow ever collects more fragments than were sent.
            let completed = self.detection_queue.len(tx)?;
            Ok(completed <= self.config.flows)
        })
        .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;

    #[test]
    fn all_flows_complete_when_the_trace_is_drained() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let config = IntruderConfig {
            flows: 32,
            fragments_per_flow: 3,
            buckets: 32,
        };
        let workload = IntruderWorkload::setup(&stm, config, 7);
        let total = (config.flows * config.fragments_per_flow) as u64;
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            3,
            RunLength::TotalOps(total),
            13,
        );
        assert!(result.check_passed);
        let mut ctx = ThreadContext::register(stm);
        assert_eq!(workload.completed_flows(&mut ctx), config.flows);
    }

    #[test]
    fn draining_past_the_end_is_harmless() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let config = IntruderConfig {
            flows: 8,
            fragments_per_flow: 2,
            buckets: 16,
        };
        let workload = IntruderWorkload::setup(&stm, config, 7);
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            2,
            RunLength::TotalOps(100),
            13,
        );
        assert!(result.check_passed);
    }
}
