//! STAMP `vacation`: a travel reservation system.
//!
//! The database consists of red-black-tree tables of cars, flights and
//! rooms (each item has a stock counter) plus a customer table. Client
//! transactions query several random items across the tables and reserve
//! one of each kind, cancel a customer's reservations, or update the tables
//! (add/remove stock). The contention knob is how many rows each
//! transaction touches and how much of the table it may touch.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::error::TxResult;
use stm_core::tm::{ThreadContext, TmAlgorithm, Tx};
use stm_core::word::Word;

use crate::driver::Workload;
use crate::structures::RbTree;

/// Configuration of the vacation kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VacationConfig {
    /// Rows per table (cars / flights / rooms).
    pub relations: usize,
    /// Number of rows queried per reservation transaction.
    pub queries_per_tx: usize,
    /// Percentage of the table that queries may touch (smaller = more
    /// contention on the same rows).
    pub query_range_percent: usize,
    /// Percentage of operations that are reservations (the rest split
    /// between customer deletions and table updates).
    pub reservation_percent: u64,
}

impl VacationConfig {
    /// STAMP's high-contention configuration (narrow query range, many
    /// queries per transaction) at the quick profile.
    pub fn high_contention() -> Self {
        VacationConfig::high_contention_at(crate::profile::SizeProfile::Quick)
    }

    /// The high-contention configuration at the given size profile: the
    /// tables grow while the query range stays narrow.
    pub fn high_contention_at(profile: crate::profile::SizeProfile) -> Self {
        VacationConfig {
            relations: profile.pick(1024, 4096, 16_384),
            queries_per_tx: profile.pick(8, 8, 16),
            query_range_percent: 10,
            reservation_percent: 50,
        }
    }

    /// STAMP's low-contention configuration (wide query range, fewer
    /// queries) at the quick profile.
    pub fn low_contention() -> Self {
        VacationConfig::low_contention_at(crate::profile::SizeProfile::Quick)
    }

    /// The low-contention configuration at the given size profile.
    pub fn low_contention_at(profile: crate::profile::SizeProfile) -> Self {
        VacationConfig {
            relations: profile.pick(1024, 4096, 16_384),
            queries_per_tx: profile.pick(4, 4, 8),
            query_range_percent: 90,
            reservation_percent: 90,
        }
    }
}

impl Default for VacationConfig {
    fn default() -> Self {
        VacationConfig::high_contention()
    }
}

/// The vacation workload: four shared tables.
#[derive(Debug)]
pub struct VacationWorkload {
    config: VacationConfig,
    cars: RbTree,
    flights: RbTree,
    rooms: RbTree,
    customers: RbTree,
}

impl VacationWorkload {
    /// Builds and populates the four tables.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the tables.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: VacationConfig, _seed: u64) -> Arc<Self> {
        let heap = stm.heap();
        let cars = RbTree::create(heap).expect("heap exhausted");
        let flights = RbTree::create(heap).expect("heap exhausted");
        let rooms = RbTree::create(heap).expect("heap exhausted");
        let customers = RbTree::create(heap).expect("heap exhausted");

        let mut ctx = ThreadContext::register(Arc::clone(stm));
        // Populate in chunks to keep set-up transactions reasonably sized.
        for chunk_start in (1..=config.relations as Word).step_by(64) {
            let chunk_end = (chunk_start + 63).min(config.relations as Word);
            ctx.atomically(|tx| {
                for id in chunk_start..=chunk_end {
                    cars.insert(tx, id, 10)?;
                    flights.insert(tx, id, 10)?;
                    rooms.insert(tx, id, 10)?;
                }
                Ok(())
            })
            .expect("populating vacation tables failed");
        }

        Arc::new(VacationWorkload {
            config,
            cars,
            flights,
            rooms,
            customers,
        })
    }

    fn random_row(&self, rng: &mut FastRng) -> Word {
        let range = (self.config.relations * self.config.query_range_percent / 100).max(1) as u64;
        1 + rng.next_below(range)
    }

    fn make_reservation<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
        customer: Word,
    ) -> TxResult<bool> {
        let mut reserved = 0u64;
        for table in [&self.cars, &self.flights, &self.rooms] {
            // Query several rows, remember the one with the most stock.
            let mut best: Option<(Word, Word)> = None;
            for _ in 0..self.config.queries_per_tx {
                let id = self.random_row(rng);
                if let Some(stock) = table.get(tx, id)? {
                    if best.map(|(_, s)| stock > s).unwrap_or(true) {
                        best = Some((id, stock));
                    }
                }
            }
            if let Some((id, stock)) = best {
                if stock > 0 {
                    table.insert(tx, id, stock - 1)?;
                    reserved += 1;
                }
            }
        }
        if reserved > 0 {
            let previous = self.customers.get(tx, customer)?.unwrap_or(0);
            self.customers.insert(tx, customer, previous + reserved)?;
            return Ok(true);
        }
        Ok(false)
    }

    fn delete_customer<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        customer: Word,
    ) -> TxResult<bool> {
        self.customers.remove(tx, customer)
    }

    fn update_tables<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, rng: &mut FastRng) -> TxResult<()> {
        // Restock or deplete a handful of random rows.
        for _ in 0..self.config.queries_per_tx / 2 + 1 {
            let id = self.random_row(rng);
            let table = match rng.next_below(3) {
                0 => &self.cars,
                1 => &self.flights,
                _ => &self.rooms,
            };
            let stock = table.get(tx, id)?.unwrap_or(0);
            if rng.chance_percent(50) {
                table.insert(tx, id, stock + 5)?;
            } else {
                table.insert(tx, id, stock.saturating_sub(1))?;
            }
        }
        Ok(())
    }

    /// Total stock across the three resource tables (used by the check).
    fn total_stock<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<u64> {
        let mut total = 0;
        for table in [&self.cars, &self.flights, &self.rooms] {
            for id in 1..=self.config.relations as Word {
                total += table.get(tx, id)?.unwrap_or(0);
            }
        }
        Ok(total)
    }
}

impl<A: TmAlgorithm> Workload<A> for VacationWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, op_index: u64) {
        let roll = rng.next_below(100);
        if roll < self.config.reservation_percent {
            let customer = 1 + (op_index % 4096);
            ctx.atomically(|tx| self.make_reservation(tx, rng, customer))
                .expect("reservation must eventually commit");
        } else if roll
            < self.config.reservation_percent + (100 - self.config.reservation_percent) / 2
        {
            let customer = 1 + rng.next_below(4096);
            ctx.atomically(|tx| self.delete_customer(tx, customer))
                .expect("customer deletion must eventually commit");
        } else {
            ctx.atomically(|tx| self.update_tables(tx, rng))
                .expect("table update must eventually commit");
        }
    }

    fn name(&self) -> String {
        format!(
            "vacation(range={}%, queries={})",
            self.config.query_range_percent, self.config.queries_per_tx
        )
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        ctx.atomically(|tx| {
            Ok(self.cars.check_invariants(tx)?
                && self.flights.check_invariants(tx)?
                && self.rooms.check_invariants(tx)?
                && self.customers.check_invariants(tx)?
                && self.total_stock(tx)? <= 30 * self.config.relations as u64 * 10)
        })
        .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;

    fn small_config() -> VacationConfig {
        VacationConfig {
            relations: 64,
            queries_per_tx: 4,
            query_range_percent: 50,
            reservation_percent: 60,
        }
    }

    #[test]
    fn reservations_decrement_stock_and_register_customers() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        // A query range of one row makes every query hit row 1, so the
        // reservation outcome is fully deterministic.
        let config = VacationConfig {
            query_range_percent: 1,
            ..small_config()
        };
        let workload = Arc::new_cyclic(|_| VacationWorkload {
            config,
            cars: RbTree::create(stm.heap()).unwrap(),
            flights: RbTree::create(stm.heap()).unwrap(),
            rooms: RbTree::create(stm.heap()).unwrap(),
            customers: RbTree::create(stm.heap()).unwrap(),
        });
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        ctx.atomically(|tx| {
            workload.cars.insert(tx, 1, 2)?;
            workload.flights.insert(tx, 1, 2)?;
            workload.rooms.insert(tx, 1, 2)?;
            Ok(())
        })
        .unwrap();
        let mut rng = FastRng::new(4);
        let reserved = ctx
            .atomically(|tx| workload.make_reservation(tx, &mut rng, 7))
            .unwrap();
        assert!(reserved);
        let (car_stock, customer) = ctx
            .atomically(|tx| Ok((workload.cars.get(tx, 1)?, workload.customers.get(tx, 7)?)))
            .unwrap();
        assert_eq!(car_stock, Some(1));
        assert_eq!(customer, Some(3));
    }

    #[test]
    fn workload_runs_and_keeps_table_invariants() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = VacationWorkload::setup(&stm, small_config(), 1);
        let result = run_workload(stm, workload, 3, RunLength::TotalOps(150), 3);
        assert!(result.check_passed);
        assert!(result.stats.totals.commits >= 150);
    }

    #[test]
    fn contention_presets_differ() {
        let high = VacationConfig::high_contention();
        let low = VacationConfig::low_contention();
        assert!(high.query_range_percent < low.query_range_percent);
        assert!(high.queries_per_tx > low.queries_per_tx);
    }
}
