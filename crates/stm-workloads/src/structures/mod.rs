//! Transactional data structures.
//!
//! Everything the benchmark workloads manipulate lives in the shared
//! transactional heap as blocks of consecutive words ("records") linked by
//! heap addresses. The structures in this module encapsulate those layouts
//! behind ordinary Rust APIs that take a [`stm_core::tm::Tx`] handle:
//!
//! * [`rbtree::RbTree`] — a red-black tree map (the paper's microbenchmark
//!   structure and the backbone of several STAMP kernels),
//! * [`list::SortedList`] — a sorted singly-linked list,
//! * [`hashmap::HashMap`] — a fixed-bucket chained hash map,
//! * [`queue::Queue`] — a FIFO queue.
//!
//! All structures are `Copy` handles (they only store heap addresses), so
//! they can be shared freely between threads; the STM provides the
//! synchronisation.

pub mod hashmap;
pub mod list;
pub mod queue;
pub mod rbtree;

pub use hashmap::HashMap;
pub use list::SortedList;
pub use queue::Queue;
pub use rbtree::RbTree;
