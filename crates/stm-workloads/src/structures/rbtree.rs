//! A transactional red-black tree map.
//!
//! This is the data structure of the paper's microbenchmark (Figure 5 and
//! 10) and the backbone of the vacation STAMP kernel and the STMBench7
//! indices. It is a textbook (CLRS) red-black tree with parent pointers,
//! translated so that every field access is a transactional word access.
//!
//! Layout: the tree handle is `[root, size]`; each node is six consecutive
//! words `[key, value, color, left, right, parent]`. `Addr::NULL` plays the
//! role of the nil leaf; to avoid turning a shared nil sentinel into a
//! write hot spot, the delete fix-up tracks the parent of the "current"
//! node explicitly instead of storing a parent pointer inside nil.

use stm_core::error::TxResult;
use stm_core::heap::TmHeap;
use stm_core::tm::{TmAlgorithm, Tx};
use stm_core::word::{Addr, Word};

const ROOT: usize = 0;
const SIZE: usize = 1;
const HEADER_WORDS: usize = 2;

const KEY: usize = 0;
const VALUE: usize = 1;
const COLOR: usize = 2;
const LEFT: usize = 3;
const RIGHT: usize = 4;
const PARENT: usize = 5;
const NODE_WORDS: usize = 6;

const RED: Word = 0;
const BLACK: Word = 1;

/// Handle to a transactional red-black tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RbTree {
    header: Addr,
}

impl RbTree {
    /// Creates an empty tree (non-transactionally, during set-up).
    ///
    /// # Errors
    ///
    /// Returns an error when the heap is exhausted.
    pub fn create(heap: &TmHeap) -> Result<Self, stm_core::error::StmError> {
        let header = heap.alloc_zeroed(HEADER_WORDS)?;
        Ok(RbTree { header })
    }

    fn root<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<Addr> {
        tx.read_addr(self.header.offset(ROOT))
    }

    fn set_root<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, node: Addr) -> TxResult<()> {
        tx.write_addr(self.header.offset(ROOT), node)
    }

    /// Number of keys in the tree.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<u64> {
        tx.read(self.header.offset(SIZE))
    }

    fn color<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, node: Addr) -> TxResult<Word> {
        if node.is_null() {
            Ok(BLACK)
        } else {
            tx.read_field(node, COLOR)
        }
    }

    fn set_color<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        node: Addr,
        color: Word,
    ) -> TxResult<()> {
        if node.is_null() {
            return Ok(());
        }
        tx.write_field(node, COLOR, color)
    }

    fn left<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, node: Addr) -> TxResult<Addr> {
        Ok(Addr::from_word(tx.read_field(node, LEFT)?))
    }

    fn right<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, node: Addr) -> TxResult<Addr> {
        Ok(Addr::from_word(tx.read_field(node, RIGHT)?))
    }

    fn parent<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, node: Addr) -> TxResult<Addr> {
        Ok(Addr::from_word(tx.read_field(node, PARENT)?))
    }

    fn set_parent<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        node: Addr,
        parent: Addr,
    ) -> TxResult<()> {
        if node.is_null() {
            return Ok(());
        }
        tx.write_field(node, PARENT, parent.to_word())
    }

    /// Looks up the value stored under `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<Option<Word>> {
        let mut node = self.root(tx)?;
        while !node.is_null() {
            let node_key = tx.read_field(node, KEY)?;
            if key == node_key {
                return Ok(Some(tx.read_field(node, VALUE)?));
            }
            node = if key < node_key {
                self.left(tx, node)?
            } else {
                self.right(tx, node)?
            };
        }
        Ok(None)
    }

    /// Returns `true` if `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn contains<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    fn rotate_left<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, x: Addr) -> TxResult<()> {
        let y = self.right(tx, x)?;
        let y_left = self.left(tx, y)?;
        tx.write_field(x, RIGHT, y_left.to_word())?;
        self.set_parent(tx, y_left, x)?;
        let x_parent = self.parent(tx, x)?;
        tx.write_field(y, PARENT, x_parent.to_word())?;
        if x_parent.is_null() {
            self.set_root(tx, y)?;
        } else if self.left(tx, x_parent)? == x {
            tx.write_field(x_parent, LEFT, y.to_word())?;
        } else {
            tx.write_field(x_parent, RIGHT, y.to_word())?;
        }
        tx.write_field(y, LEFT, x.to_word())?;
        tx.write_field(x, PARENT, y.to_word())?;
        Ok(())
    }

    fn rotate_right<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, x: Addr) -> TxResult<()> {
        let y = self.left(tx, x)?;
        let y_right = self.right(tx, y)?;
        tx.write_field(x, LEFT, y_right.to_word())?;
        self.set_parent(tx, y_right, x)?;
        let x_parent = self.parent(tx, x)?;
        tx.write_field(y, PARENT, x_parent.to_word())?;
        if x_parent.is_null() {
            self.set_root(tx, y)?;
        } else if self.right(tx, x_parent)? == x {
            tx.write_field(x_parent, RIGHT, y.to_word())?;
        } else {
            tx.write_field(x_parent, LEFT, y.to_word())?;
        }
        tx.write_field(y, RIGHT, x.to_word())?;
        tx.write_field(x, PARENT, y.to_word())?;
        Ok(())
    }

    /// Inserts `key -> value`. Returns `false` if the key already existed
    /// (its value is updated in place).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        key: Word,
        value: Word,
    ) -> TxResult<bool> {
        let mut parent = Addr::NULL;
        let mut node = self.root(tx)?;
        while !node.is_null() {
            let node_key = tx.read_field(node, KEY)?;
            if key == node_key {
                tx.write_field(node, VALUE, value)?;
                return Ok(false);
            }
            parent = node;
            node = if key < node_key {
                self.left(tx, node)?
            } else {
                self.right(tx, node)?
            };
        }

        let z = tx.alloc(NODE_WORDS)?;
        tx.write_field(z, KEY, key)?;
        tx.write_field(z, VALUE, value)?;
        tx.write_field(z, COLOR, RED)?;
        tx.write_field(z, LEFT, Addr::NULL.to_word())?;
        tx.write_field(z, RIGHT, Addr::NULL.to_word())?;
        tx.write_field(z, PARENT, parent.to_word())?;

        if parent.is_null() {
            self.set_root(tx, z)?;
        } else if key < tx.read_field(parent, KEY)? {
            tx.write_field(parent, LEFT, z.to_word())?;
        } else {
            tx.write_field(parent, RIGHT, z.to_word())?;
        }

        self.insert_fixup(tx, z)?;

        let size = tx.read(self.header.offset(SIZE))?;
        tx.write(self.header.offset(SIZE), size + 1)?;
        Ok(true)
    }

    fn insert_fixup<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, mut z: Addr) -> TxResult<()> {
        loop {
            let z_parent = self.parent(tx, z)?;
            if z_parent.is_null() || self.color(tx, z_parent)? == BLACK {
                break;
            }
            let grandparent = self.parent(tx, z_parent)?;
            if z_parent == self.left(tx, grandparent)? {
                let uncle = self.right(tx, grandparent)?;
                if self.color(tx, uncle)? == RED {
                    self.set_color(tx, z_parent, BLACK)?;
                    self.set_color(tx, uncle, BLACK)?;
                    self.set_color(tx, grandparent, RED)?;
                    z = grandparent;
                } else {
                    if z == self.right(tx, z_parent)? {
                        z = z_parent;
                        self.rotate_left(tx, z)?;
                    }
                    let z_parent = self.parent(tx, z)?;
                    let grandparent = self.parent(tx, z_parent)?;
                    self.set_color(tx, z_parent, BLACK)?;
                    self.set_color(tx, grandparent, RED)?;
                    self.rotate_right(tx, grandparent)?;
                }
            } else {
                let uncle = self.left(tx, grandparent)?;
                if self.color(tx, uncle)? == RED {
                    self.set_color(tx, z_parent, BLACK)?;
                    self.set_color(tx, uncle, BLACK)?;
                    self.set_color(tx, grandparent, RED)?;
                    z = grandparent;
                } else {
                    if z == self.left(tx, z_parent)? {
                        z = z_parent;
                        self.rotate_right(tx, z)?;
                    }
                    let z_parent = self.parent(tx, z)?;
                    let grandparent = self.parent(tx, z_parent)?;
                    self.set_color(tx, z_parent, BLACK)?;
                    self.set_color(tx, grandparent, RED)?;
                    self.rotate_left(tx, grandparent)?;
                }
            }
        }
        let root = self.root(tx)?;
        self.set_color(tx, root, BLACK)
    }

    fn minimum<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, mut node: Addr) -> TxResult<Addr> {
        loop {
            let left = self.left(tx, node)?;
            if left.is_null() {
                return Ok(node);
            }
            node = left;
        }
    }

    /// Replaces the subtree rooted at `u` with the one rooted at `v`.
    fn transplant<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, u: Addr, v: Addr) -> TxResult<()> {
        let u_parent = self.parent(tx, u)?;
        if u_parent.is_null() {
            self.set_root(tx, v)?;
        } else if self.left(tx, u_parent)? == u {
            tx.write_field(u_parent, LEFT, v.to_word())?;
        } else {
            tx.write_field(u_parent, RIGHT, v.to_word())?;
        }
        self.set_parent(tx, v, u_parent)?;
        Ok(())
    }

    /// Removes `key`. Returns `true` if the key was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<bool> {
        // Find the node.
        let mut z = self.root(tx)?;
        while !z.is_null() {
            let z_key = tx.read_field(z, KEY)?;
            if key == z_key {
                break;
            }
            z = if key < z_key {
                self.left(tx, z)?
            } else {
                self.right(tx, z)?
            };
        }
        if z.is_null() {
            return Ok(false);
        }

        let mut y = z;
        let mut y_original_color = self.color(tx, y)?;
        let x;
        let x_parent;

        let z_left = self.left(tx, z)?;
        let z_right = self.right(tx, z)?;
        if z_left.is_null() {
            x = z_right;
            x_parent = self.parent(tx, z)?;
            self.transplant(tx, z, z_right)?;
        } else if z_right.is_null() {
            x = z_left;
            x_parent = self.parent(tx, z)?;
            self.transplant(tx, z, z_left)?;
        } else {
            y = self.minimum(tx, z_right)?;
            y_original_color = self.color(tx, y)?;
            x = self.right(tx, y)?;
            if self.parent(tx, y)? == z {
                x_parent = y;
                self.set_parent(tx, x, y)?;
            } else {
                x_parent = self.parent(tx, y)?;
                self.transplant(tx, y, x)?;
                let z_right_now = self.right(tx, z)?;
                tx.write_field(y, RIGHT, z_right_now.to_word())?;
                self.set_parent(tx, z_right_now, y)?;
            }
            self.transplant(tx, z, y)?;
            let z_left_now = self.left(tx, z)?;
            tx.write_field(y, LEFT, z_left_now.to_word())?;
            self.set_parent(tx, z_left_now, y)?;
            let z_color = self.color(tx, z)?;
            self.set_color(tx, y, z_color)?;
        }

        if y_original_color == BLACK {
            self.delete_fixup(tx, x, x_parent)?;
        }

        tx.free(z, NODE_WORDS);
        let size = tx.read(self.header.offset(SIZE))?;
        tx.write(self.header.offset(SIZE), size.saturating_sub(1))?;
        Ok(true)
    }

    /// CLRS delete fix-up where the parent of `x` is tracked explicitly so
    /// that `x` may be `Addr::NULL` without a shared nil sentinel.
    fn delete_fixup<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        mut x: Addr,
        mut parent: Addr,
    ) -> TxResult<()> {
        loop {
            let root = self.root(tx)?;
            if x == root || self.color(tx, x)? == RED {
                break;
            }
            if x == self.left(tx, parent)? {
                let mut w = self.right(tx, parent)?;
                if self.color(tx, w)? == RED {
                    self.set_color(tx, w, BLACK)?;
                    self.set_color(tx, parent, RED)?;
                    self.rotate_left(tx, parent)?;
                    w = self.right(tx, parent)?;
                }
                let w_left = self.left(tx, w)?;
                let w_right = self.right(tx, w)?;
                if self.color(tx, w_left)? == BLACK && self.color(tx, w_right)? == BLACK {
                    self.set_color(tx, w, RED)?;
                    x = parent;
                    parent = self.parent(tx, x)?;
                } else {
                    if self.color(tx, w_right)? == BLACK {
                        self.set_color(tx, w_left, BLACK)?;
                        self.set_color(tx, w, RED)?;
                        self.rotate_right(tx, w)?;
                        w = self.right(tx, parent)?;
                    }
                    let parent_color = self.color(tx, parent)?;
                    self.set_color(tx, w, parent_color)?;
                    self.set_color(tx, parent, BLACK)?;
                    let w_right = self.right(tx, w)?;
                    self.set_color(tx, w_right, BLACK)?;
                    self.rotate_left(tx, parent)?;
                    x = self.root(tx)?;
                    parent = Addr::NULL;
                }
            } else {
                let mut w = self.left(tx, parent)?;
                if self.color(tx, w)? == RED {
                    self.set_color(tx, w, BLACK)?;
                    self.set_color(tx, parent, RED)?;
                    self.rotate_right(tx, parent)?;
                    w = self.left(tx, parent)?;
                }
                let w_left = self.left(tx, w)?;
                let w_right = self.right(tx, w)?;
                if self.color(tx, w_left)? == BLACK && self.color(tx, w_right)? == BLACK {
                    self.set_color(tx, w, RED)?;
                    x = parent;
                    parent = self.parent(tx, x)?;
                } else {
                    if self.color(tx, w_left)? == BLACK {
                        self.set_color(tx, w_right, BLACK)?;
                        self.set_color(tx, w, RED)?;
                        self.rotate_left(tx, w)?;
                        w = self.left(tx, parent)?;
                    }
                    let parent_color = self.color(tx, parent)?;
                    self.set_color(tx, w, parent_color)?;
                    self.set_color(tx, parent, BLACK)?;
                    let w_left = self.left(tx, w)?;
                    self.set_color(tx, w_left, BLACK)?;
                    self.rotate_right(tx, parent)?;
                    x = self.root(tx)?;
                    parent = Addr::NULL;
                }
            }
        }
        self.set_color(tx, x, BLACK)
    }

    /// Collects all keys in ascending order (iterative in-order traversal).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn keys<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<Vec<Word>> {
        let mut keys = Vec::new();
        let mut stack = Vec::new();
        let mut node = self.root(tx)?;
        while !node.is_null() || !stack.is_empty() {
            while !node.is_null() {
                stack.push(node);
                node = self.left(tx, node)?;
            }
            let top = stack.pop().expect("stack cannot be empty here");
            keys.push(tx.read_field(top, KEY)?);
            node = self.right(tx, top)?;
        }
        Ok(keys)
    }

    /// Checks the red-black invariants (used by tests and the workloads'
    /// post-run consistency checks): the root is black, no red node has a
    /// red child, every root-to-leaf path has the same number of black
    /// nodes, and keys are in search-tree order.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn check_invariants<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<bool> {
        let root = self.root(tx)?;
        if root.is_null() {
            return Ok(true);
        }
        if self.color(tx, root)? != BLACK {
            return Ok(false);
        }
        let keys = self.keys(tx)?;
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Ok(false);
        }
        if keys.len() as u64 != self.len(tx)? {
            return Ok(false);
        }
        Ok(self.black_height(tx, root)?.is_some())
    }

    /// Returns `Some(black_height)` when the subtree satisfies the red-black
    /// invariants, `None` otherwise.
    fn black_height<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        node: Addr,
    ) -> TxResult<Option<u32>> {
        if node.is_null() {
            return Ok(Some(1));
        }
        let color = self.color(tx, node)?;
        let left = self.left(tx, node)?;
        let right = self.right(tx, node)?;
        if color == RED && (self.color(tx, left)? == RED || self.color(tx, right)? == RED) {
            return Ok(None);
        }
        let lh = self.black_height(tx, left)?;
        let rh = self.black_height(tx, right)?;
        match (lh, rh) {
            (Some(l), Some(r)) if l == r => Ok(Some(l + u32::from(color == BLACK))),
            _ => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use stm_core::backoff::FastRng;
    use stm_core::config::HeapConfig;
    use stm_core::naive::NaiveGlobalLockTm;
    use stm_core::tm::ThreadContext;

    fn setup() -> (Arc<NaiveGlobalLockTm>, RbTree) {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::medium()));
        let tree = RbTree::create(stm.heap()).unwrap();
        (stm, tree)
    }

    #[test]
    fn insert_get_contains() {
        let (stm, tree) = setup();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| {
            assert!(tree.insert(tx, 10, 100)?);
            assert!(tree.insert(tx, 5, 50)?);
            assert!(tree.insert(tx, 15, 150)?);
            assert!(!tree.insert(tx, 10, 101)?);
            Ok(())
        })
        .unwrap();
        let (ten, five, missing, len) = ctx
            .atomically(|tx| {
                Ok((
                    tree.get(tx, 10)?,
                    tree.get(tx, 5)?,
                    tree.get(tx, 99)?,
                    tree.len(tx)?,
                ))
            })
            .unwrap();
        assert_eq!(ten, Some(101));
        assert_eq!(five, Some(50));
        assert_eq!(missing, None);
        assert_eq!(len, 3);
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let (stm, tree) = setup();
        let mut ctx = ThreadContext::register(stm);
        for key in 0..256u64 {
            ctx.atomically(|tx| tree.insert(tx, key, key)).unwrap();
        }
        let (ok, keys) = ctx
            .atomically(|tx| Ok((tree.check_invariants(tx)?, tree.keys(tx)?)))
            .unwrap();
        assert!(ok, "red-black invariants violated");
        assert_eq!(keys, (0..256u64).collect::<Vec<_>>());
    }

    #[test]
    fn removals_keep_invariants() {
        let (stm, tree) = setup();
        let mut ctx = ThreadContext::register(stm);
        for key in 0..128u64 {
            ctx.atomically(|tx| tree.insert(tx, key, key)).unwrap();
        }
        // Remove every other key, then check.
        for key in (0..128u64).step_by(2) {
            let removed = ctx.atomically(|tx| tree.remove(tx, key)).unwrap();
            assert!(removed);
        }
        let (ok, len) = ctx
            .atomically(|tx| Ok((tree.check_invariants(tx)?, tree.len(tx)?)))
            .unwrap();
        assert!(ok);
        assert_eq!(len, 64);
        for key in 0..128u64 {
            let present = ctx.atomically(|tx| tree.contains(tx, key)).unwrap();
            assert_eq!(present, key % 2 == 1, "key {key}");
        }
    }

    #[test]
    fn remove_missing_key_is_a_noop() {
        let (stm, tree) = setup();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| tree.insert(tx, 1, 1)).unwrap();
        let removed = ctx.atomically(|tx| tree.remove(tx, 2)).unwrap();
        assert!(!removed);
        let len = ctx.atomically(|tx| tree.len(tx)).unwrap();
        assert_eq!(len, 1);
    }

    #[test]
    fn concurrent_inserts_are_all_present() {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::medium()));
        let tree = RbTree::create(stm.heap()).unwrap();
        let per_thread = 200u64;
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for i in 0..per_thread {
                        let key = t * per_thread + i;
                        ctx.atomically(|tx| tree.insert(tx, key, key)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut ctx = ThreadContext::register(stm);
        let (ok, len) = ctx
            .atomically(|tx| Ok((tree.check_invariants(tx)?, tree.len(tx)?)))
            .unwrap();
        assert!(ok);
        assert_eq!(len, 4 * per_thread);
    }

    /// The transactional tree behaves exactly like `BTreeMap` under a
    /// random sequence of inserts, removals and lookups, and keeps its
    /// red-black invariants throughout. (Deterministic stand-in for the
    /// original proptest version: crates.io is unreachable in this build
    /// environment, so the case generator is a seeded `FastRng` sweep.)
    #[test]
    fn behaves_like_btreemap() {
        for case in 0u64..24 {
            let mut rng = FastRng::new(0xb7ee ^ (case.wrapping_mul(0x9e3779b97f4a7c15)));
            let (stm, tree) = setup();
            let mut ctx = ThreadContext::register(stm);
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let ops = 1 + rng.next_below(199);
            for _ in 0..ops {
                let op = rng.next_below(3) as u8;
                let key = rng.next_below(64);
                let value = rng.next_below(1000);
                match op {
                    0 => {
                        let inserted = ctx.atomically(|tx| tree.insert(tx, key, value)).unwrap();
                        let model_inserted = model.insert(key, value).is_none();
                        assert_eq!(inserted, model_inserted);
                    }
                    1 => {
                        let removed = ctx.atomically(|tx| tree.remove(tx, key)).unwrap();
                        assert_eq!(removed, model.remove(&key).is_some());
                    }
                    _ => {
                        let got = ctx.atomically(|tx| tree.get(tx, key)).unwrap();
                        assert_eq!(got, model.get(&key).copied());
                    }
                }
            }
            let (ok, keys, len) = ctx
                .atomically(|tx| Ok((tree.check_invariants(tx)?, tree.keys(tx)?, tree.len(tx)?)))
                .unwrap();
            assert!(ok, "case {case}: red-black invariants violated");
            assert_eq!(keys, model.keys().copied().collect::<Vec<_>>());
            assert_eq!(len as usize, model.len());
        }
    }
}
