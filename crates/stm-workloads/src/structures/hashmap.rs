//! A transactional chained hash map with a fixed number of buckets.
//!
//! Layout: the handle is `[bucket_count, buckets_base]`; `buckets_base`
//! points to a block of `bucket_count` words, each the head of a chain of
//! `[key, value, next]` nodes. The bucket count is fixed at creation time
//! (no transactional resizing), which matches how the STAMP applications
//! size their tables up front.

use stm_core::error::TxResult;
use stm_core::heap::TmHeap;
use stm_core::tm::{TmAlgorithm, Tx};
use stm_core::word::{Addr, Word};

const NODE_KEY: usize = 0;
const NODE_VALUE: usize = 1;
const NODE_NEXT: usize = 2;
const NODE_WORDS: usize = 3;

/// Handle to a transactional hash map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashMap {
    buckets: Addr,
    bucket_count: usize,
}

impl HashMap {
    /// Creates a map with `bucket_count` buckets (rounded up to a power of
    /// two) during non-transactional set-up.
    ///
    /// # Errors
    ///
    /// Returns an error when the heap is exhausted.
    pub fn create(heap: &TmHeap, bucket_count: usize) -> Result<Self, stm_core::error::StmError> {
        let bucket_count = bucket_count.next_power_of_two().max(2);
        let buckets = heap.alloc_zeroed(bucket_count)?;
        Ok(HashMap {
            buckets,
            bucket_count,
        })
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.bucket_count
    }

    fn bucket_of(&self, key: Word) -> Addr {
        // Fibonacci hashing spreads sequential ids well enough for the
        // benchmark tables.
        let hash = key.wrapping_mul(0x9e3779b97f4a7c15);
        let index = (hash >> 32) as usize & (self.bucket_count - 1);
        self.buckets.offset(index)
    }

    /// Inserts `key -> value`; returns `false` if the key existed (its value
    /// is then updated).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        key: Word,
        value: Word,
    ) -> TxResult<bool> {
        let bucket = self.bucket_of(key);
        let mut current = tx.read_addr(bucket)?;
        while !current.is_null() {
            if tx.read_field(current, NODE_KEY)? == key {
                tx.write_field(current, NODE_VALUE, value)?;
                return Ok(false);
            }
            current = Addr::from_word(tx.read_field(current, NODE_NEXT)?);
        }
        let head = tx.read_addr(bucket)?;
        let node = tx.alloc(NODE_WORDS)?;
        tx.write_field(node, NODE_KEY, key)?;
        tx.write_field(node, NODE_VALUE, value)?;
        tx.write_field(node, NODE_NEXT, head.to_word())?;
        tx.write_addr(bucket, node)?;
        Ok(true)
    }

    /// Looks up the value stored under `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<Option<Word>> {
        let bucket = self.bucket_of(key);
        let mut current = tx.read_addr(bucket)?;
        while !current.is_null() {
            if tx.read_field(current, NODE_KEY)? == key {
                return Ok(Some(tx.read_field(current, NODE_VALUE)?));
            }
            current = Addr::from_word(tx.read_field(current, NODE_NEXT)?);
        }
        Ok(None)
    }

    /// Returns `true` if `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn contains<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Removes `key`; returns `true` if it was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<bool> {
        let bucket = self.bucket_of(key);
        let mut prev = Addr::NULL;
        let mut current = tx.read_addr(bucket)?;
        while !current.is_null() {
            if tx.read_field(current, NODE_KEY)? == key {
                let next = tx.read_field(current, NODE_NEXT)?;
                if prev.is_null() {
                    tx.write(bucket, next)?;
                } else {
                    tx.write_field(prev, NODE_NEXT, next)?;
                }
                tx.free(current, NODE_WORDS);
                return Ok(true);
            }
            prev = current;
            current = Addr::from_word(tx.read_field(current, NODE_NEXT)?);
        }
        Ok(false)
    }

    /// Adds `delta` to the value stored under `key`, inserting
    /// `key -> delta` if absent. Returns the new value.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn add<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        key: Word,
        delta: Word,
    ) -> TxResult<Word> {
        let bucket = self.bucket_of(key);
        let mut current = tx.read_addr(bucket)?;
        while !current.is_null() {
            if tx.read_field(current, NODE_KEY)? == key {
                let new = tx.read_field(current, NODE_VALUE)?.wrapping_add(delta);
                tx.write_field(current, NODE_VALUE, new)?;
                return Ok(new);
            }
            current = Addr::from_word(tx.read_field(current, NODE_NEXT)?);
        }
        self.insert(tx, key, delta)?;
        Ok(delta)
    }

    /// Number of entries (walks every bucket).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<usize> {
        let mut count = 0;
        for i in 0..self.bucket_count {
            let mut current = tx.read_addr(self.buckets.offset(i))?;
            while !current.is_null() {
                count += 1;
                current = Addr::from_word(tx.read_field(current, NODE_NEXT)?);
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stm_core::config::HeapConfig;
    use stm_core::naive::NaiveGlobalLockTm;
    use stm_core::tm::ThreadContext;

    fn setup(buckets: usize) -> (Arc<NaiveGlobalLockTm>, HashMap) {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let map = HashMap::create(stm.heap(), buckets).unwrap();
        (stm, map)
    }

    #[test]
    fn bucket_count_is_rounded_to_power_of_two() {
        let (_stm, map) = setup(100);
        assert_eq!(map.bucket_count(), 128);
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let (stm, map) = setup(16);
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| {
            assert!(map.insert(tx, 1, 10)?);
            assert!(map.insert(tx, 2, 20)?);
            assert!(!map.insert(tx, 1, 11)?);
            Ok(())
        })
        .unwrap();
        let (one, two, three) = ctx
            .atomically(|tx| Ok((map.get(tx, 1)?, map.get(tx, 2)?, map.get(tx, 3)?)))
            .unwrap();
        assert_eq!(one, Some(11));
        assert_eq!(two, Some(20));
        assert_eq!(three, None);
        let removed = ctx.atomically(|tx| map.remove(tx, 1)).unwrap();
        assert!(removed);
        let gone = ctx.atomically(|tx| map.contains(tx, 1)).unwrap();
        assert!(!gone);
    }

    #[test]
    fn many_keys_survive_chaining() {
        // Few buckets forces long chains; everything must still be found.
        let (stm, map) = setup(2);
        let mut ctx = ThreadContext::register(stm);
        for key in 0..200u64 {
            ctx.atomically(|tx| map.insert(tx, key, key * 3)).unwrap();
        }
        let len = ctx.atomically(|tx| map.len(tx)).unwrap();
        assert_eq!(len, 200);
        for key in 0..200u64 {
            let v = ctx.atomically(|tx| map.get(tx, key)).unwrap();
            assert_eq!(v, Some(key * 3));
        }
    }

    #[test]
    fn add_accumulates() {
        let (stm, map) = setup(8);
        let mut ctx = ThreadContext::register(stm);
        let v1 = ctx.atomically(|tx| map.add(tx, 7, 5)).unwrap();
        let v2 = ctx.atomically(|tx| map.add(tx, 7, 3)).unwrap();
        assert_eq!(v1, 5);
        assert_eq!(v2, 8);
        let stored = ctx.atomically(|tx| map.get(tx, 7)).unwrap();
        assert_eq!(stored, Some(8));
    }

    #[test]
    fn removing_middle_of_chain_keeps_other_entries() {
        let (stm, map) = setup(2);
        let mut ctx = ThreadContext::register(stm);
        for key in 0..10u64 {
            ctx.atomically(|tx| map.insert(tx, key, key)).unwrap();
        }
        ctx.atomically(|tx| map.remove(tx, 4)).unwrap();
        ctx.atomically(|tx| map.remove(tx, 5)).unwrap();
        let len = ctx.atomically(|tx| map.len(tx)).unwrap();
        assert_eq!(len, 8);
        for key in [0u64, 1, 2, 3, 6, 7, 8, 9] {
            let present = ctx.atomically(|tx| map.contains(tx, key)).unwrap();
            assert!(present, "key {key} must still be present");
        }
    }
}
