//! A transactional FIFO queue.
//!
//! Layout: the handle is two heap words `[head, tail]`; each node is two
//! words `[value, next]`. The queue is a deliberate contention hot spot in
//! workloads such as STAMP's `intruder` (paper Figure 11).

use stm_core::error::TxResult;
use stm_core::heap::TmHeap;
use stm_core::tm::{TmAlgorithm, Tx};
use stm_core::word::{Addr, Word};

const HEAD: usize = 0;
const TAIL: usize = 1;
const NODE_VALUE: usize = 0;
const NODE_NEXT: usize = 1;
const NODE_WORDS: usize = 2;

/// Handle to a transactional FIFO queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Queue {
    header: Addr,
}

impl Queue {
    /// Creates an empty queue (non-transactionally, during set-up).
    ///
    /// # Errors
    ///
    /// Returns an error when the heap is exhausted.
    pub fn create(heap: &TmHeap) -> Result<Self, stm_core::error::StmError> {
        let header = heap.alloc_zeroed(2)?;
        Ok(Queue { header })
    }

    /// Appends `value` at the tail.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn enqueue<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, value: Word) -> TxResult<()> {
        let node = tx.alloc(NODE_WORDS)?;
        tx.write_field(node, NODE_VALUE, value)?;
        tx.write_field(node, NODE_NEXT, Addr::NULL.to_word())?;
        let tail = tx.read_addr(self.header.offset(TAIL))?;
        if tail.is_null() {
            tx.write_addr(self.header.offset(HEAD), node)?;
        } else {
            tx.write_field(tail, NODE_NEXT, node.to_word())?;
        }
        tx.write_addr(self.header.offset(TAIL), node)?;
        Ok(())
    }

    /// Removes and returns the head value, or `None` if the queue is empty.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn dequeue<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<Option<Word>> {
        let head = tx.read_addr(self.header.offset(HEAD))?;
        if head.is_null() {
            return Ok(None);
        }
        let value = tx.read_field(head, NODE_VALUE)?;
        let next = tx.read_field(head, NODE_NEXT)?;
        tx.write(self.header.offset(HEAD), next)?;
        if Addr::from_word(next).is_null() {
            tx.write_addr(self.header.offset(TAIL), Addr::NULL)?;
        }
        tx.free(head, NODE_WORDS);
        Ok(Some(value))
    }

    /// Returns `true` if the queue has no elements.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn is_empty<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<bool> {
        Ok(tx.read_addr(self.header.offset(HEAD))?.is_null())
    }

    /// Number of queued elements (walks the queue).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<usize> {
        let mut count = 0;
        let mut current = tx.read_addr(self.header.offset(HEAD))?;
        while !current.is_null() {
            count += 1;
            current = Addr::from_word(tx.read_field(current, NODE_NEXT)?);
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stm_core::config::HeapConfig;
    use stm_core::naive::NaiveGlobalLockTm;
    use stm_core::tm::ThreadContext;

    fn setup() -> (Arc<NaiveGlobalLockTm>, Queue) {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let queue = Queue::create(stm.heap()).unwrap();
        (stm, queue)
    }

    #[test]
    fn fifo_order_is_preserved() {
        let (stm, queue) = setup();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| {
            queue.enqueue(tx, 1)?;
            queue.enqueue(tx, 2)?;
            queue.enqueue(tx, 3)?;
            Ok(())
        })
        .unwrap();
        let drained = ctx
            .atomically(|tx| {
                Ok((
                    queue.dequeue(tx)?,
                    queue.dequeue(tx)?,
                    queue.dequeue(tx)?,
                    queue.dequeue(tx)?,
                ))
            })
            .unwrap();
        assert_eq!(drained, (Some(1), Some(2), Some(3), None));
    }

    #[test]
    fn empty_and_len_reflect_content() {
        let (stm, queue) = setup();
        let mut ctx = ThreadContext::register(stm);
        let empty = ctx.atomically(|tx| queue.is_empty(tx)).unwrap();
        assert!(empty);
        ctx.atomically(|tx| {
            queue.enqueue(tx, 10)?;
            queue.enqueue(tx, 20)?;
            Ok(())
        })
        .unwrap();
        let (empty, len) = ctx
            .atomically(|tx| Ok((queue.is_empty(tx)?, queue.len(tx)?)))
            .unwrap();
        assert!(!empty);
        assert_eq!(len, 2);
    }

    #[test]
    fn dequeue_last_element_resets_tail() {
        let (stm, queue) = setup();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| queue.enqueue(tx, 7)).unwrap();
        let v = ctx.atomically(|tx| queue.dequeue(tx)).unwrap();
        assert_eq!(v, Some(7));
        // Enqueue again after the queue became empty: tail must have been
        // reset, otherwise this would corrupt the structure.
        ctx.atomically(|tx| queue.enqueue(tx, 8)).unwrap();
        let v = ctx.atomically(|tx| queue.dequeue(tx)).unwrap();
        assert_eq!(v, Some(8));
    }

    #[test]
    fn producer_consumer_conserves_items() {
        let (stm, queue) = setup();
        let produced = 500u64;
        let stm_producer = Arc::clone(&stm);
        let producer = std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(stm_producer);
            for i in 0..produced {
                ctx.atomically(|tx| queue.enqueue(tx, i)).unwrap();
            }
        });
        let stm_consumer = Arc::clone(&stm);
        let consumer = std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(stm_consumer);
            let mut seen = Vec::new();
            while seen.len() < produced as usize {
                if let Some(v) = ctx.atomically(|tx| queue.dequeue(tx)).unwrap() {
                    seen.push(v);
                }
            }
            seen
        });
        producer.join().unwrap();
        let seen = consumer.join().unwrap();
        // FIFO per producer: the consumer sees values in order.
        assert_eq!(seen, (0..produced).collect::<Vec<_>>());
    }
}
