//! A transactional sorted singly-linked list (a set/map with u64 keys).
//!
//! Layout: the list handle is one heap word holding the head pointer; each
//! node is three consecutive words `[key, value, next]`.

use stm_core::error::TxResult;
use stm_core::heap::TmHeap;
use stm_core::tm::{TmAlgorithm, Tx};
use stm_core::word::{Addr, Word};

const KEY: usize = 0;
const VALUE: usize = 1;
const NEXT: usize = 2;
const NODE_WORDS: usize = 3;

/// Handle to a transactional sorted linked list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortedList {
    head: Addr,
}

impl SortedList {
    /// Creates an empty list (non-transactionally, during set-up).
    ///
    /// # Errors
    ///
    /// Returns an error when the heap is exhausted.
    pub fn create(heap: &TmHeap) -> Result<Self, stm_core::error::StmError> {
        let head = heap.alloc_zeroed(1)?;
        Ok(SortedList { head })
    }

    /// The heap address of the list header (useful for tests).
    pub fn head_addr(&self) -> Addr {
        self.head
    }

    /// Wraps an existing (zero-initialised) header word as a list handle.
    /// Useful when the header is embedded inside a larger record, as in the
    /// STMBench7 composite parts.
    pub fn from_header(head: Addr) -> Self {
        SortedList { head }
    }

    /// Inserts `key -> value`; returns `false` if the key was already
    /// present (in which case the value is updated).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn insert<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        key: Word,
        value: Word,
    ) -> TxResult<bool> {
        let mut prev = Addr::NULL;
        let mut current = tx.read_addr(self.head)?;
        while !current.is_null() {
            let current_key = tx.read_field(current, KEY)?;
            if current_key == key {
                tx.write_field(current, VALUE, value)?;
                return Ok(false);
            }
            if current_key > key {
                break;
            }
            prev = current;
            current = Addr::from_word(tx.read_field(current, NEXT)?);
        }
        let node = tx.alloc(NODE_WORDS)?;
        tx.write_field(node, KEY, key)?;
        tx.write_field(node, VALUE, value)?;
        tx.write_field(node, NEXT, current.to_word())?;
        if prev.is_null() {
            tx.write_addr(self.head, node)?;
        } else {
            tx.write_field(prev, NEXT, node.to_word())?;
        }
        Ok(true)
    }

    /// Removes `key`; returns `true` if it was present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn remove<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<bool> {
        let mut prev = Addr::NULL;
        let mut current = tx.read_addr(self.head)?;
        while !current.is_null() {
            let current_key = tx.read_field(current, KEY)?;
            if current_key == key {
                let next = tx.read_field(current, NEXT)?;
                if prev.is_null() {
                    tx.write(self.head, next)?;
                } else {
                    tx.write_field(prev, NEXT, next)?;
                }
                tx.free(current, NODE_WORDS);
                return Ok(true);
            }
            if current_key > key {
                return Ok(false);
            }
            prev = current;
            current = Addr::from_word(tx.read_field(current, NEXT)?);
        }
        Ok(false)
    }

    /// Looks up the value stored under `key`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn get<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<Option<Word>> {
        let mut current = tx.read_addr(self.head)?;
        while !current.is_null() {
            let current_key = tx.read_field(current, KEY)?;
            if current_key == key {
                return Ok(Some(tx.read_field(current, VALUE)?));
            }
            if current_key > key {
                return Ok(None);
            }
            current = Addr::from_word(tx.read_field(current, NEXT)?);
        }
        Ok(None)
    }

    /// Returns `true` if `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn contains<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>, key: Word) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Number of elements (walks the whole list).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn len<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<usize> {
        let mut count = 0;
        let mut current = tx.read_addr(self.head)?;
        while !current.is_null() {
            count += 1;
            current = Addr::from_word(tx.read_field(current, NEXT)?);
        }
        Ok(count)
    }

    /// Collects all `(key, value)` pairs in ascending key order.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn to_vec<A: TmAlgorithm>(&self, tx: &mut Tx<'_, A>) -> TxResult<Vec<(Word, Word)>> {
        let mut out = Vec::new();
        let mut current = tx.read_addr(self.head)?;
        while !current.is_null() {
            out.push((tx.read_field(current, KEY)?, tx.read_field(current, VALUE)?));
            current = Addr::from_word(tx.read_field(current, NEXT)?);
        }
        Ok(out)
    }

    /// Applies `f` to every `(key, value)` pair in ascending key order.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn for_each<A: TmAlgorithm, F>(&self, tx: &mut Tx<'_, A>, mut f: F) -> TxResult<()>
    where
        F: FnMut(Word, Word),
    {
        let mut current = tx.read_addr(self.head)?;
        while !current.is_null() {
            f(tx.read_field(current, KEY)?, tx.read_field(current, VALUE)?);
            current = Addr::from_word(tx.read_field(current, NEXT)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stm_core::config::HeapConfig;
    use stm_core::naive::NaiveGlobalLockTm;
    use stm_core::tm::ThreadContext;

    fn setup() -> (Arc<NaiveGlobalLockTm>, SortedList) {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let list = SortedList::create(stm.heap()).unwrap();
        (stm, list)
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let (stm, list) = setup();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| {
            assert!(list.insert(tx, 5, 50)?);
            assert!(list.insert(tx, 3, 30)?);
            assert!(list.insert(tx, 9, 90)?);
            assert!(!list.insert(tx, 5, 55)?);
            Ok(())
        })
        .unwrap();
        let (value, len, sorted) = ctx
            .atomically(|tx| Ok((list.get(tx, 5)?, list.len(tx)?, list.to_vec(tx)?)))
            .unwrap();
        assert_eq!(value, Some(55));
        assert_eq!(len, 3);
        assert_eq!(sorted, vec![(3, 30), (5, 55), (9, 90)]);
        ctx.atomically(|tx| {
            assert!(list.remove(tx, 5)?);
            assert!(!list.remove(tx, 5)?);
            Ok(())
        })
        .unwrap();
        let contains = ctx.atomically(|tx| list.contains(tx, 5)).unwrap();
        assert!(!contains);
    }

    #[test]
    fn keys_stay_sorted() {
        let (stm, list) = setup();
        let mut ctx = ThreadContext::register(stm);
        for key in [9u64, 1, 7, 3, 8, 2] {
            ctx.atomically(|tx| list.insert(tx, key, key)).unwrap();
        }
        let keys: Vec<u64> = ctx
            .atomically(|tx| list.to_vec(tx))
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 7, 8, 9]);
    }

    #[test]
    fn remove_head_and_missing_key() {
        let (stm, list) = setup();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| {
            list.insert(tx, 1, 1)?;
            list.insert(tx, 2, 2)?;
            Ok(())
        })
        .unwrap();
        let removed = ctx.atomically(|tx| list.remove(tx, 1)).unwrap();
        assert!(removed);
        let missing = ctx.atomically(|tx| list.remove(tx, 42)).unwrap();
        assert!(!missing);
        let len = ctx.atomically(|tx| list.len(tx)).unwrap();
        assert_eq!(len, 1);
    }

    #[test]
    fn for_each_visits_everything() {
        let (stm, list) = setup();
        let mut ctx = ThreadContext::register(stm);
        for key in 0..10u64 {
            ctx.atomically(|tx| list.insert(tx, key, key * 2)).unwrap();
        }
        let mut sum = 0u64;
        ctx.atomically(|tx| {
            sum = 0;
            list.for_each(tx, |_, v| sum += v)
        })
        .unwrap();
        assert_eq!(sum, (0..10u64).map(|k| k * 2).sum());
    }
}
