//! An STMBench7-style benchmark (paper Figures 2, 7, 9, 12 and Table 1).
//!
//! STMBench7 models a CAD/CAM-style application over a large, non-uniform
//! object graph: a module containing a tree of complex assemblies whose
//! leaves (base assemblies) reference composite parts from a shared pool;
//! each composite part owns a connected graph of atomic parts and a
//! document; indices map identifiers to parts. Operations range from very
//! short read-only lookups to long traversals that touch (and possibly
//! modify) large parts of the structure, which is exactly the short/long
//! mix the paper's analysis revolves around.
//!
//! The reproduction keeps the structure and the operation families but
//! scales the default dimensions down so a data point completes in seconds
//! rather than minutes (see [`Bench7Config`]); the *relative* behaviour of
//! the STMs — which is what Figures 2/7/9/12 compare — is preserved because
//! the transaction length distribution and conflict patterns are the same.

mod model;
mod operations;

pub use model::{Bench7Config, Bench7Data};
pub use operations::{Bench7Workload, OperationKind, WorkloadMix};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use std::sync::Arc;
    use stm_core::config::{HeapConfig, LockTableConfig, StmConfig};
    use stm_core::tm::ThreadContext;
    use swisstm::SwissTm;
    use tinystm::TinyStm;
    use tl2::Tl2;

    fn tiny_config() -> StmConfig {
        StmConfig {
            heap: HeapConfig::with_words(1 << 20),
            lock_table: LockTableConfig::small(),
            clock: stm_core::config::ClockMode::Strict,
        }
    }

    #[test]
    fn structure_is_built_consistently() {
        let stm = Arc::new(SwissTm::with_config(tiny_config()));
        let data = Bench7Data::build(&stm, Bench7Config::tiny(), 42);
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        assert!(data.check(&mut ctx));
        let parts = ctx.atomically(|tx| data.part_index().len(tx)).unwrap();
        assert_eq!(
            parts,
            (Bench7Config::tiny().composite_pool * Bench7Config::tiny().parts_per_composite) as u64
        );
    }

    #[test]
    fn read_dominated_mix_runs_on_all_word_stms() {
        let config = Bench7Config::tiny();
        let mix = WorkloadMix::read_dominated();

        let stm = Arc::new(SwissTm::with_config(tiny_config()));
        let data = Bench7Data::build(&stm, config, 1);
        let workload = Arc::new(Bench7Workload::new(data, mix));
        let r = run_workload(stm, workload, 2, RunLength::OpsPerThread(60), 5);
        assert!(r.check_passed);

        let stm = Arc::new(Tl2::with_config(tiny_config()));
        let data = Bench7Data::build(&stm, config, 1);
        let workload = Arc::new(Bench7Workload::new(data, mix));
        let r = run_workload(stm, workload, 2, RunLength::OpsPerThread(60), 5);
        assert!(r.check_passed);

        let stm = Arc::new(TinyStm::with_config(tiny_config()));
        let data = Bench7Data::build(&stm, config, 1);
        let workload = Arc::new(Bench7Workload::new(data, mix));
        let r = run_workload(stm, workload, 2, RunLength::OpsPerThread(60), 5);
        assert!(r.check_passed);
    }

    #[test]
    fn write_dominated_mix_mutates_the_structure() {
        let stm = Arc::new(SwissTm::with_config(tiny_config()));
        let data = Bench7Data::build(&stm, Bench7Config::tiny(), 7);
        let workload = Arc::new(Bench7Workload::new(data, WorkloadMix::write_dominated()));
        let r = run_workload(
            Arc::clone(&stm),
            workload,
            2,
            RunLength::OpsPerThread(80),
            11,
        );
        assert!(r.check_passed);
        assert!(
            r.stats.totals.writes > 0,
            "write-dominated mix must perform transactional writes"
        );
    }

    #[test]
    fn mixes_have_expected_read_only_ratios() {
        assert_eq!(WorkloadMix::read_dominated().read_only_percent, 90);
        assert_eq!(WorkloadMix::read_write().read_only_percent, 60);
        assert_eq!(WorkloadMix::write_dominated().read_only_percent, 10);
    }
}
