//! The STMBench7 object graph: layout and construction.
//!
//! Record layouts (word offsets) — every record is a block of consecutive
//! heap words:
//!
//! ```text
//! AtomicPart      [id, x, y, build_date, part_of, conn_count, conn_0 .. conn_3]
//! Document        [id, title, text_len, text_base, part_back]
//! CompositePart   [id, build_date, root_part, document, parts_list]
//! BaseAssembly    [id, parent, comp_count, comp_base]
//! ComplexAssembly [id, parent, level, sub_count, sub_base]
//! Module          [id, design_root, manual]
//! Manual          [id, title, text_len, text_base, module_back]
//! ```
//!
//! Indices: a red-black tree mapping atomic-part id → part address, one
//! mapping composite-part id → composite address, and one mapping
//! `build_date * 2^20 + id` → part address (the build-date index used by
//! range queries).

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::error::TxResult;
use stm_core::tm::{ThreadContext, TmAlgorithm, Tx};
use stm_core::word::{Addr, Word};

use crate::structures::{RbTree, SortedList};

// AtomicPart offsets.
pub(crate) const AP_ID: usize = 0;
pub(crate) const AP_X: usize = 1;
pub(crate) const AP_Y: usize = 2;
pub(crate) const AP_DATE: usize = 3;
pub(crate) const AP_PART_OF: usize = 4;
pub(crate) const AP_CONN_COUNT: usize = 5;
pub(crate) const AP_CONN_BASE: usize = 6;
pub(crate) const AP_MAX_CONN: usize = 4;
pub(crate) const AP_WORDS: usize = AP_CONN_BASE + AP_MAX_CONN;

// Document offsets.
pub(crate) const DOC_ID: usize = 0;
pub(crate) const DOC_TITLE: usize = 1;
pub(crate) const DOC_TEXT_LEN: usize = 2;
pub(crate) const DOC_TEXT_BASE: usize = 3;
pub(crate) const DOC_PART_BACK: usize = 4;
pub(crate) const DOC_WORDS: usize = 5;

// CompositePart offsets.
pub(crate) const CP_ID: usize = 0;
pub(crate) const CP_DATE: usize = 1;
pub(crate) const CP_ROOT_PART: usize = 2;
pub(crate) const CP_DOCUMENT: usize = 3;
pub(crate) const CP_PARTS_LIST: usize = 4;
pub(crate) const CP_WORDS: usize = 5;

// BaseAssembly offsets.
pub(crate) const BA_ID: usize = 0;
pub(crate) const BA_PARENT: usize = 1;
pub(crate) const BA_COMP_COUNT: usize = 2;
pub(crate) const BA_COMP_BASE: usize = 3;

// ComplexAssembly offsets.
pub(crate) const CA_ID: usize = 0;
pub(crate) const CA_PARENT: usize = 1;
pub(crate) const CA_LEVEL: usize = 2;
pub(crate) const CA_SUB_COUNT: usize = 3;
pub(crate) const CA_SUB_BASE: usize = 4;

// Module offsets.
pub(crate) const MOD_DESIGN_ROOT: usize = 1;
pub(crate) const MOD_MANUAL: usize = 2;
pub(crate) const MOD_WORDS: usize = 3;

// Manual offsets.
pub(crate) const MAN_TEXT_LEN: usize = 2;
pub(crate) const MAN_TEXT_BASE: usize = 3;
pub(crate) const MAN_WORDS: usize = 5;

/// Marker stored in an assembly's first sub-pointer slot to distinguish base
/// from complex assemblies during traversals.
pub(crate) const LEVEL_BASE: Word = 1;

/// Dimensions of the STMBench7 structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bench7Config {
    /// Height of the complex-assembly tree (levels above base assemblies).
    pub assembly_levels: u32,
    /// Fan-out of every assembly (children per complex assembly, composite
    /// parts per base assembly).
    pub assembly_fanout: usize,
    /// Number of composite parts in the shared pool.
    pub composite_pool: usize,
    /// Atomic parts per composite part.
    pub parts_per_composite: usize,
    /// Outgoing connections per atomic part (≤ 4).
    pub connections_per_part: usize,
    /// Words of text per document.
    pub document_words: usize,
    /// Words of text in the module manual.
    pub manual_words: usize,
}

impl Bench7Config {
    /// The quick-profile structure: large enough to produce the paper's
    /// short/long transaction mix, small enough to build in a fraction of a
    /// second.
    pub fn medium() -> Self {
        Bench7Config {
            assembly_levels: 4,
            assembly_fanout: 3,
            composite_pool: 64,
            parts_per_composite: 32,
            connections_per_part: 3,
            document_words: 16,
            manual_words: 256,
        }
    }

    /// The full-profile structure used by `repro --full`: an object graph
    /// an order of magnitude larger than [`Bench7Config::medium`], so long
    /// traversals touch tens of thousands of parts as in the paper's setup.
    pub fn full() -> Self {
        Bench7Config {
            assembly_levels: 5,
            assembly_fanout: 3,
            composite_pool: 128,
            parts_per_composite: 64,
            connections_per_part: 3,
            document_words: 32,
            manual_words: 2048,
        }
    }

    /// The huge-profile structure: STMBench7's published dimensions (500
    /// composite parts of 200 atomic parts each, a seven-level assembly
    /// hierarchy) for dedicated paper-scale runs.
    pub fn huge() -> Self {
        Bench7Config {
            assembly_levels: 7,
            assembly_fanout: 3,
            composite_pool: 500,
            parts_per_composite: 200,
            connections_per_part: 3,
            document_words: 64,
            manual_words: 16_384,
        }
    }

    /// The structure dimensions for a size profile.
    pub fn for_profile(profile: crate::profile::SizeProfile) -> Self {
        profile.pick(
            Bench7Config::medium(),
            Bench7Config::full(),
            Bench7Config::huge(),
        )
    }

    /// A tiny structure for unit tests.
    pub fn tiny() -> Self {
        Bench7Config {
            assembly_levels: 2,
            assembly_fanout: 2,
            composite_pool: 8,
            parts_per_composite: 8,
            connections_per_part: 2,
            document_words: 4,
            manual_words: 16,
        }
    }

    /// Total number of atomic parts created at build time.
    pub fn total_parts(&self) -> usize {
        self.composite_pool * self.parts_per_composite
    }
}

impl Default for Bench7Config {
    fn default() -> Self {
        Bench7Config::medium()
    }
}

/// The built STMBench7 structure: heap addresses of the roots plus the
/// indices, shared read-only between worker threads.
#[derive(Clone, Debug)]
pub struct Bench7Data {
    config: Bench7Config,
    module: Addr,
    composites: Vec<Addr>,
    part_index: RbTree,
    composite_index: RbTree,
    date_index: RbTree,
    /// Highest atomic-part id assigned so far (ids grow as structural
    /// modifications create parts). Stored in the heap so it is updated
    /// transactionally.
    id_counter: Addr,
}

impl Bench7Data {
    /// Builds the object graph on the given STM instance.
    ///
    /// # Panics
    ///
    /// Panics if the heap is too small for the requested dimensions.
    pub fn build<A: TmAlgorithm>(stm: &Arc<A>, config: Bench7Config, seed: u64) -> Self {
        let heap = stm.heap();
        let part_index = RbTree::create(heap).expect("heap exhausted building part index");
        let composite_index =
            RbTree::create(heap).expect("heap exhausted building composite index");
        let date_index = RbTree::create(heap).expect("heap exhausted building date index");
        let id_counter = heap.alloc_zeroed(1).expect("heap exhausted");

        let data = Bench7Data {
            config,
            module: Addr::NULL,
            composites: Vec::new(),
            part_index,
            composite_index,
            date_index,
            id_counter,
        };
        let mut data = data;

        let mut ctx = ThreadContext::register(Arc::clone(stm));
        let mut rng = FastRng::new(seed | 1);

        // Composite part pool.
        for c in 0..config.composite_pool {
            let composite = ctx
                .atomically(|tx| data.build_composite(tx, &mut rng.clone(), (c + 1) as Word))
                .expect("composite construction failed");
            // Advance the RNG deterministically per composite.
            for _ in 0..config.parts_per_composite {
                rng.next_u64();
            }
            data.composites.push(composite);
        }

        // Assembly hierarchy + module.
        let module = ctx
            .atomically(|tx| {
                let manual = tx.alloc(MAN_WORDS)?;
                let text = tx.alloc(config.manual_words.max(1))?;
                tx.write_field(manual, MAN_TEXT_LEN, config.manual_words as Word)?;
                tx.write_field(manual, MAN_TEXT_BASE, text.to_word())?;
                let module = tx.alloc(MOD_WORDS)?;
                tx.write_field(module, MOD_MANUAL, manual.to_word())?;
                Ok(module)
            })
            .expect("module construction failed");
        let root = data
            .build_assembly(&mut ctx, &mut rng, config.assembly_levels, Addr::NULL)
            .expect("assembly construction failed");
        ctx.atomically(|tx| tx.write_field(module, MOD_DESIGN_ROOT, root.to_word()))
            .expect("linking design root failed");
        data.module = module;

        // Seed the id counter with the number of pre-built parts.
        ctx.atomically(|tx| tx.write(data.id_counter, config.total_parts() as Word))
            .expect("seeding id counter failed");

        data
    }

    fn build_composite<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
        composite_id: Word,
    ) -> TxResult<Addr> {
        let config = self.config;
        let composite = tx.alloc(CP_WORDS)?;
        let document = tx.alloc(DOC_WORDS)?;
        let text = tx.alloc(config.document_words.max(1))?;
        let parts_list_header = tx.alloc(1)?;
        let parts_list = SortedList::from_header(parts_list_header);

        tx.write_field(composite, CP_ID, composite_id)?;
        tx.write_field(composite, CP_DATE, 1000 + composite_id)?;
        tx.write_field(composite, CP_DOCUMENT, document.to_word())?;
        tx.write_field(composite, CP_PARTS_LIST, parts_list_header.to_word())?;
        tx.write_field(document, DOC_ID, composite_id)?;
        tx.write_field(document, DOC_TITLE, composite_id * 31)?;
        tx.write_field(document, DOC_TEXT_LEN, config.document_words as Word)?;
        tx.write_field(document, DOC_TEXT_BASE, text.to_word())?;
        tx.write_field(document, DOC_PART_BACK, composite.to_word())?;

        // Atomic parts connected in a ring plus random chords.
        let mut parts = Vec::with_capacity(config.parts_per_composite);
        for p in 0..config.parts_per_composite {
            let id = (composite_id - 1) * config.parts_per_composite as Word + p as Word + 1;
            let part = tx.alloc(AP_WORDS)?;
            tx.write_field(part, AP_ID, id)?;
            tx.write_field(part, AP_X, rng.next_below(1000))?;
            tx.write_field(part, AP_Y, rng.next_below(1000))?;
            tx.write_field(part, AP_DATE, 2000 + id % 500)?;
            tx.write_field(part, AP_PART_OF, composite.to_word())?;
            parts.push((id, part));
        }
        for (i, &(id, part)) in parts.iter().enumerate() {
            let mut conns = Vec::with_capacity(config.connections_per_part);
            // Ring connection keeps the graph connected.
            conns.push(parts[(i + 1) % parts.len()].1);
            while conns.len() < config.connections_per_part.min(AP_MAX_CONN) {
                let target = parts[rng.next_below(parts.len() as u64) as usize].1;
                conns.push(target);
            }
            tx.write_field(part, AP_CONN_COUNT, conns.len() as Word)?;
            for (slot, conn) in conns.iter().enumerate() {
                tx.write_field(part, AP_CONN_BASE + slot, conn.to_word())?;
            }
            parts_list.insert(tx, id, part.to_word())?;
            self.part_index.insert(tx, id, part.to_word())?;
            let date = tx.read_field(part, AP_DATE)?;
            self.date_index
                .insert(tx, (date << 20) | id, part.to_word())?;
        }
        tx.write_field(composite, CP_ROOT_PART, parts[0].1.to_word())?;
        self.composite_index
            .insert(tx, composite_id, composite.to_word())?;
        Ok(composite)
    }

    fn build_assembly<A: TmAlgorithm>(
        &self,
        ctx: &mut ThreadContext<A>,
        rng: &mut FastRng,
        level: u32,
        parent: Addr,
    ) -> Result<Addr, stm_core::error::StmError> {
        let config = self.config;
        if level <= 1 {
            // Base assembly referencing `fanout` composites from the pool.
            let picks: Vec<Addr> = (0..config.assembly_fanout)
                .map(|_| self.composites[rng.next_below(self.composites.len() as u64) as usize])
                .collect();
            return ctx.atomically(|tx| {
                let comp_base = tx.alloc(config.assembly_fanout)?;
                for (i, comp) in picks.iter().enumerate() {
                    tx.write(comp_base.offset(i), comp.to_word())?;
                }
                let assembly = tx.alloc(BA_COMP_BASE + 1)?;
                tx.write_field(assembly, BA_ID, rng.next_u64() % 1_000_000)?;
                tx.write_field(assembly, BA_PARENT, parent.to_word())?;
                tx.write_field(assembly, BA_COMP_COUNT, picks.len() as Word)?;
                tx.write_field(assembly, BA_COMP_BASE, comp_base.to_word())?;
                Ok(assembly)
            });
        }
        // Complex assembly: allocate the node, then build children.
        let assembly = ctx.atomically(|tx| {
            let sub_base = tx.alloc(config.assembly_fanout)?;
            let assembly = tx.alloc(CA_SUB_BASE + 1)?;
            tx.write_field(assembly, CA_ID, rng.next_u64() % 1_000_000)?;
            tx.write_field(assembly, CA_PARENT, parent.to_word())?;
            tx.write_field(assembly, CA_LEVEL, level as Word)?;
            tx.write_field(assembly, CA_SUB_COUNT, config.assembly_fanout as Word)?;
            tx.write_field(assembly, CA_SUB_BASE, sub_base.to_word())?;
            Ok(assembly)
        })?;
        for i in 0..config.assembly_fanout {
            let child = self.build_assembly(ctx, rng, level - 1, assembly)?;
            ctx.atomically(|tx| {
                let sub_base = Addr::from_word(tx.read_field(assembly, CA_SUB_BASE)?);
                tx.write(sub_base.offset(i), child.to_word())
            })?;
        }
        Ok(assembly)
    }

    /// The benchmark configuration.
    pub fn config(&self) -> Bench7Config {
        self.config
    }

    /// Address of the module record (the root of every long traversal).
    pub fn module(&self) -> Addr {
        self.module
    }

    /// Addresses of the composite-part pool.
    pub fn composites(&self) -> &[Addr] {
        &self.composites
    }

    /// The atomic-part id index.
    pub fn part_index(&self) -> RbTree {
        self.part_index
    }

    /// The composite-part id index.
    pub fn composite_index(&self) -> RbTree {
        self.composite_index
    }

    /// The build-date index.
    pub fn date_index(&self) -> RbTree {
        self.date_index
    }

    /// Heap word holding the highest assigned atomic-part id.
    pub fn id_counter(&self) -> Addr {
        self.id_counter
    }

    /// Structural sanity check used after benchmark runs: the indices keep
    /// their red-black invariants and the module still reaches a design
    /// root.
    pub fn check<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> bool {
        ctx.atomically(|tx| {
            Ok(self.part_index.check_invariants(tx)?
                && self.composite_index.check_invariants(tx)?
                && self.date_index.check_invariants(tx)?
                && !Addr::from_word(tx.read_field(self.module, MOD_DESIGN_ROOT)?).is_null())
        })
        .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::config::{HeapConfig, LockTableConfig, StmConfig};
    use swisstm::SwissTm;

    fn stm() -> Arc<SwissTm> {
        Arc::new(SwissTm::with_config(StmConfig {
            heap: HeapConfig::with_words(1 << 20),
            lock_table: LockTableConfig::small(),
            clock: stm_core::config::ClockMode::Strict,
        }))
    }

    #[test]
    fn build_produces_expected_part_count() {
        let stm = stm();
        let data = Bench7Data::build(&stm, Bench7Config::tiny(), 3);
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        let count = ctx.atomically(|tx| data.part_index().len(tx)).unwrap();
        assert_eq!(count, Bench7Config::tiny().total_parts() as u64);
        assert_eq!(data.composites().len(), Bench7Config::tiny().composite_pool);
    }

    #[test]
    fn parts_are_reachable_from_their_composite() {
        let stm = stm();
        let data = Bench7Data::build(&stm, Bench7Config::tiny(), 9);
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        let composite = data.composites()[0];
        let ok = ctx
            .atomically(|tx| {
                let root = Addr::from_word(tx.read_field(composite, CP_ROOT_PART)?);
                let part_of = Addr::from_word(tx.read_field(root, AP_PART_OF)?);
                Ok(part_of == composite)
            })
            .unwrap();
        assert!(ok);
    }

    #[test]
    fn connections_stay_within_the_composite() {
        let stm = stm();
        let data = Bench7Data::build(&stm, Bench7Config::tiny(), 5);
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        for &composite in data.composites() {
            let ok = ctx
                .atomically(|tx| {
                    let root = Addr::from_word(tx.read_field(composite, CP_ROOT_PART)?);
                    let conn_count = tx.read_field(root, AP_CONN_COUNT)? as usize;
                    for i in 0..conn_count {
                        let conn = Addr::from_word(tx.read_field(root, AP_CONN_BASE + i)?);
                        if Addr::from_word(tx.read_field(conn, AP_PART_OF)?) != composite {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                })
                .unwrap();
            assert!(ok);
        }
    }

    #[test]
    fn id_counter_matches_total_parts() {
        let stm = stm();
        let data = Bench7Data::build(&stm, Bench7Config::tiny(), 5);
        let mut ctx = ThreadContext::register(stm);
        let counter = ctx.read_word(data.id_counter()).unwrap();
        assert_eq!(counter, Bench7Config::tiny().total_parts() as u64);
    }
}
