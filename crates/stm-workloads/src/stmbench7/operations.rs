//! STMBench7 operations and workload mixes.
//!
//! The operation families mirror the original benchmark:
//!
//! * **Short read-only** — index lookups, short graph traversals, date
//!   queries (the `Q`/`ST` operations).
//! * **Long read-only** — a full traversal of the assembly hierarchy down
//!   to the atomic parts (`T1`).
//! * **Short read-write** — updating a single atomic part or a composite's
//!   document (`OP`-style operations).
//! * **Long read-write** — the full traversal that also swaps the `x`/`y`
//!   coordinates of every atomic part it visits (`T2`).
//! * **Structural modifications** — creating and deleting atomic parts,
//!   updating the indices (`SM1`/`SM2`).
//!
//! The three standard workload mixes select between these families with the
//! paper's read-only ratios: read-dominated (90 %), read-write (60 %) and
//! write-dominated (10 %).

use std::collections::VecDeque;

use stm_core::backoff::FastRng;
use stm_core::error::TxResult;
use stm_core::tm::{ThreadContext, TmAlgorithm, Tx};
use stm_core::word::{Addr, Word};

use super::model::*;
use crate::driver::Workload;
use crate::structures::SortedList;

/// The operation families of the benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperationKind {
    /// Look up a handful of atomic parts by id and read their fields.
    ShortReadPartById,
    /// Look up a composite part and read its document.
    ShortReadComposite,
    /// Breadth-first traversal of one composite's atomic-part graph.
    ShortTraversal,
    /// Read the build dates of several atomic parts (date query).
    DateQuery,
    /// Full read-only traversal of the assembly hierarchy (long).
    LongTraversalRead,
    /// Update one atomic part (swap coordinates, bump the build date).
    ShortUpdatePart,
    /// Update a composite's build date and document title.
    ShortUpdateComposite,
    /// Full traversal that updates every atomic part it visits (long).
    LongTraversalUpdate,
    /// Create a new atomic part and link it into a composite (SM1).
    StructuralAdd,
    /// Remove an atomic part from a composite (SM2).
    StructuralRemove,
}

impl OperationKind {
    /// `true` for operations that never write.
    pub fn is_read_only(self) -> bool {
        matches!(
            self,
            OperationKind::ShortReadPartById
                | OperationKind::ShortReadComposite
                | OperationKind::ShortTraversal
                | OperationKind::DateQuery
                | OperationKind::LongTraversalRead
        )
    }
}

/// A workload mix: how often each operation family runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Percentage of operations that are read-only.
    pub read_only_percent: u64,
    /// Percentage of *read-only* operations that are long traversals.
    pub long_read_percent: u64,
    /// Percentage of *update* operations that are long traversals.
    pub long_write_percent: u64,
    /// Percentage of *update* operations that are structural modifications.
    pub structural_percent: u64,
    /// Human-readable mix name.
    pub name: &'static str,
}

impl WorkloadMix {
    /// The paper's read-dominated workload (90 % read-only operations).
    pub fn read_dominated() -> Self {
        WorkloadMix {
            read_only_percent: 90,
            long_read_percent: 10,
            long_write_percent: 10,
            structural_percent: 20,
            name: "read-dominated",
        }
    }

    /// The paper's read-write workload (60 % read-only operations).
    pub fn read_write() -> Self {
        WorkloadMix {
            read_only_percent: 60,
            long_read_percent: 10,
            long_write_percent: 10,
            structural_percent: 20,
            name: "read-write",
        }
    }

    /// The paper's write-dominated workload (10 % read-only operations).
    pub fn write_dominated() -> Self {
        WorkloadMix {
            read_only_percent: 10,
            long_read_percent: 10,
            long_write_percent: 10,
            structural_percent: 20,
            name: "write-dominated",
        }
    }

    /// Chooses the next operation.
    pub fn pick(&self, rng: &mut FastRng) -> OperationKind {
        if rng.chance_percent(self.read_only_percent) {
            if rng.chance_percent(self.long_read_percent) {
                OperationKind::LongTraversalRead
            } else {
                match rng.next_below(4) {
                    0 => OperationKind::ShortReadPartById,
                    1 => OperationKind::ShortReadComposite,
                    2 => OperationKind::ShortTraversal,
                    _ => OperationKind::DateQuery,
                }
            }
        } else if rng.chance_percent(self.long_write_percent) {
            OperationKind::LongTraversalUpdate
        } else if rng.chance_percent(self.structural_percent) {
            if rng.chance_percent(50) {
                OperationKind::StructuralAdd
            } else {
                OperationKind::StructuralRemove
            }
        } else if rng.chance_percent(50) {
            OperationKind::ShortUpdatePart
        } else {
            OperationKind::ShortUpdateComposite
        }
    }
}

/// The STMBench7 workload: the shared structure plus an operation mix.
#[derive(Clone, Debug)]
pub struct Bench7Workload {
    data: Bench7Data,
    mix: WorkloadMix,
}

impl Bench7Workload {
    /// Combines a built structure with a workload mix.
    pub fn new(data: Bench7Data, mix: WorkloadMix) -> Self {
        Bench7Workload { data, mix }
    }

    /// The underlying structure.
    pub fn data(&self) -> &Bench7Data {
        &self.data
    }

    /// The configured mix.
    pub fn mix(&self) -> WorkloadMix {
        self.mix
    }

    fn random_part_id(&self, rng: &mut FastRng) -> Word {
        1 + rng.next_below(self.data.config().total_parts() as u64)
    }

    fn random_composite(&self, rng: &mut FastRng) -> Addr {
        let composites = self.data.composites();
        composites[rng.next_below(composites.len() as u64) as usize]
    }

    // --- read-only operations -------------------------------------------

    fn op_read_part_by_id<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
    ) -> TxResult<Word> {
        let mut sum = 0;
        for _ in 0..4 {
            let id = self.random_part_id(rng);
            if let Some(part) = self.data.part_index().get(tx, id)? {
                let part = Addr::from_word(part);
                sum += tx.read_field(part, AP_X)? + tx.read_field(part, AP_Y)?;
            }
        }
        Ok(sum)
    }

    fn op_read_composite<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
    ) -> TxResult<Word> {
        let composite = self.random_composite(rng);
        let document = Addr::from_word(tx.read_field(composite, CP_DOCUMENT)?);
        let title = tx.read_field(document, DOC_TITLE)?;
        let date = tx.read_field(composite, CP_DATE)?;
        Ok(title ^ date)
    }

    fn op_short_traversal<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
    ) -> TxResult<Word> {
        let composite = self.random_composite(rng);
        self.traverse_composite(tx, composite, false)
    }

    fn op_date_query<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
    ) -> TxResult<Word> {
        let mut newest = 0;
        for _ in 0..8 {
            let id = self.random_part_id(rng);
            if let Some(part) = self.data.part_index().get(tx, id)? {
                let date = tx.read_field(Addr::from_word(part), AP_DATE)?;
                newest = newest.max(date);
            }
        }
        Ok(newest)
    }

    fn op_long_traversal<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        update: bool,
    ) -> TxResult<Word> {
        let root = Addr::from_word(tx.read_field(self.data.module(), MOD_DESIGN_ROOT)?);
        self.traverse_assembly(tx, root, self.data.config().assembly_levels, update)
    }

    // --- update operations ----------------------------------------------

    fn op_update_part<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
    ) -> TxResult<Word> {
        let id = self.random_part_id(rng);
        if let Some(part) = self.data.part_index().get(tx, id)? {
            let part = Addr::from_word(part);
            let x = tx.read_field(part, AP_X)?;
            let y = tx.read_field(part, AP_Y)?;
            tx.write_field(part, AP_X, y)?;
            tx.write_field(part, AP_Y, x)?;
            let date = tx.read_field(part, AP_DATE)?;
            tx.write_field(part, AP_DATE, date + 1)?;
            return Ok(1);
        }
        Ok(0)
    }

    fn op_update_composite<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
    ) -> TxResult<Word> {
        let composite = self.random_composite(rng);
        let date = tx.read_field(composite, CP_DATE)?;
        tx.write_field(composite, CP_DATE, date + 1)?;
        let document = Addr::from_word(tx.read_field(composite, CP_DOCUMENT)?);
        let title = tx.read_field(document, DOC_TITLE)?;
        tx.write_field(document, DOC_TITLE, title.wrapping_add(1))?;
        Ok(1)
    }

    fn op_structural_add<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
    ) -> TxResult<Word> {
        let composite = self.random_composite(rng);
        let new_id = tx.read(self.data.id_counter())? + 1;
        tx.write(self.data.id_counter(), new_id)?;

        let part = tx.alloc(AP_WORDS)?;
        tx.write_field(part, AP_ID, new_id)?;
        tx.write_field(part, AP_X, rng.next_below(1000))?;
        tx.write_field(part, AP_Y, rng.next_below(1000))?;
        tx.write_field(part, AP_DATE, 3000 + new_id % 500)?;
        tx.write_field(part, AP_PART_OF, composite.to_word())?;
        // Connect the new part to the composite's root part (both ways if
        // the root still has a free slot).
        let root = Addr::from_word(tx.read_field(composite, CP_ROOT_PART)?);
        tx.write_field(part, AP_CONN_COUNT, 1)?;
        tx.write_field(part, AP_CONN_BASE, root.to_word())?;
        let root_conns = tx.read_field(root, AP_CONN_COUNT)? as usize;
        if root_conns < AP_MAX_CONN {
            tx.write_field(root, AP_CONN_BASE + root_conns, part.to_word())?;
            tx.write_field(root, AP_CONN_COUNT, (root_conns + 1) as Word)?;
        }

        let parts_list =
            SortedList::from_header(Addr::from_word(tx.read_field(composite, CP_PARTS_LIST)?));
        parts_list.insert(tx, new_id, part.to_word())?;
        self.data.part_index().insert(tx, new_id, part.to_word())?;
        let date = tx.read_field(part, AP_DATE)?;
        self.data
            .date_index()
            .insert(tx, (date << 20) | new_id, part.to_word())?;
        Ok(new_id)
    }

    fn op_structural_remove<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        rng: &mut FastRng,
    ) -> TxResult<Word> {
        let id = self.random_part_id(rng);
        let Some(part) = self.data.part_index().get(tx, id)? else {
            return Ok(0);
        };
        let part = Addr::from_word(part);
        let composite = Addr::from_word(tx.read_field(part, AP_PART_OF)?);
        let root = Addr::from_word(tx.read_field(composite, CP_ROOT_PART)?);
        if root == part {
            // Never remove the designated root part; it anchors traversals.
            return Ok(0);
        }
        let parts_list =
            SortedList::from_header(Addr::from_word(tx.read_field(composite, CP_PARTS_LIST)?));
        parts_list.remove(tx, id)?;
        self.data.part_index().remove(tx, id)?;
        let date = tx.read_field(part, AP_DATE)?;
        self.data.date_index().remove(tx, (date << 20) | id)?;
        // The part record itself stays allocated: other parts may still hold
        // connections to it (the original benchmark relies on garbage
        // collection here; leaking the node is the conservative equivalent).
        Ok(1)
    }

    // --- traversal helpers ------------------------------------------------

    fn traverse_composite<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        composite: Addr,
        update: bool,
    ) -> TxResult<Word> {
        let root = Addr::from_word(tx.read_field(composite, CP_ROOT_PART)?);
        let mut visited: Vec<Addr> = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(root);
        let mut sum = 0;
        while let Some(part) = queue.pop_front() {
            if part.is_null() || visited.contains(&part) {
                continue;
            }
            visited.push(part);
            sum += tx.read_field(part, AP_X)?;
            if update {
                let x = tx.read_field(part, AP_X)?;
                let y = tx.read_field(part, AP_Y)?;
                tx.write_field(part, AP_X, y)?;
                tx.write_field(part, AP_Y, x)?;
            }
            let conn_count = tx.read_field(part, AP_CONN_COUNT)? as usize;
            for i in 0..conn_count.min(AP_MAX_CONN) {
                queue.push_back(Addr::from_word(tx.read_field(part, AP_CONN_BASE + i)?));
            }
        }
        Ok(sum)
    }

    fn traverse_assembly<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        assembly: Addr,
        level: u32,
        update: bool,
    ) -> TxResult<Word> {
        if assembly.is_null() {
            return Ok(0);
        }
        let mut sum = 0;
        if level <= LEVEL_BASE as u32 {
            let comp_count = tx.read_field(assembly, BA_COMP_COUNT)? as usize;
            let comp_base = Addr::from_word(tx.read_field(assembly, BA_COMP_BASE)?);
            for i in 0..comp_count {
                let composite = Addr::from_word(tx.read(comp_base.offset(i))?);
                sum += self.traverse_composite(tx, composite, update)?;
            }
        } else {
            let sub_count = tx.read_field(assembly, CA_SUB_COUNT)? as usize;
            let sub_base = Addr::from_word(tx.read_field(assembly, CA_SUB_BASE)?);
            for i in 0..sub_count {
                let child = Addr::from_word(tx.read(sub_base.offset(i))?);
                sum += self.traverse_assembly(tx, child, level - 1, update)?;
            }
        }
        Ok(sum)
    }

    /// Executes a specific operation kind once (used by tests and the design
    /// dissection experiments that need per-operation control).
    pub fn run_operation<A: TmAlgorithm>(
        &self,
        ctx: &mut ThreadContext<A>,
        rng: &mut FastRng,
        kind: OperationKind,
    ) {
        let result = match kind {
            OperationKind::ShortReadPartById => {
                ctx.atomically(|tx| self.op_read_part_by_id(tx, rng))
            }
            OperationKind::ShortReadComposite => {
                ctx.atomically(|tx| self.op_read_composite(tx, rng))
            }
            OperationKind::ShortTraversal => ctx.atomically(|tx| self.op_short_traversal(tx, rng)),
            OperationKind::DateQuery => ctx.atomically(|tx| self.op_date_query(tx, rng)),
            OperationKind::LongTraversalRead => {
                ctx.atomically(|tx| self.op_long_traversal(tx, false))
            }
            OperationKind::ShortUpdatePart => ctx.atomically(|tx| self.op_update_part(tx, rng)),
            OperationKind::ShortUpdateComposite => {
                ctx.atomically(|tx| self.op_update_composite(tx, rng))
            }
            OperationKind::LongTraversalUpdate => {
                ctx.atomically(|tx| self.op_long_traversal(tx, true))
            }
            OperationKind::StructuralAdd => ctx.atomically(|tx| self.op_structural_add(tx, rng)),
            OperationKind::StructuralRemove => {
                ctx.atomically(|tx| self.op_structural_remove(tx, rng))
            }
        };
        result.expect("STMBench7 operation must eventually commit");
    }
}

impl<A: TmAlgorithm> Workload<A> for Bench7Workload {
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, _op_index: u64) {
        let kind = self.mix.pick(rng);
        self.run_operation(ctx, rng, kind);
    }

    fn name(&self) -> String {
        format!("stmbench7({})", self.mix.name)
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        self.data.check(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use stm_core::config::{HeapConfig, LockTableConfig, StmConfig};
    use swisstm::SwissTm;

    fn setup() -> (Arc<SwissTm>, Bench7Workload) {
        let stm = Arc::new(SwissTm::with_config(StmConfig {
            heap: HeapConfig::with_words(1 << 20),
            lock_table: LockTableConfig::small(),
            clock: stm_core::config::ClockMode::Strict,
        }));
        let data = Bench7Data::build(&stm, Bench7Config::tiny(), 17);
        (
            stm.clone(),
            Bench7Workload::new(data, WorkloadMix::read_write()),
        )
    }

    #[test]
    fn every_operation_kind_commits() {
        let (stm, workload) = setup();
        let mut ctx = ThreadContext::register(stm);
        let mut rng = FastRng::new(77);
        let kinds = [
            OperationKind::ShortReadPartById,
            OperationKind::ShortReadComposite,
            OperationKind::ShortTraversal,
            OperationKind::DateQuery,
            OperationKind::LongTraversalRead,
            OperationKind::ShortUpdatePart,
            OperationKind::ShortUpdateComposite,
            OperationKind::LongTraversalUpdate,
            OperationKind::StructuralAdd,
            OperationKind::StructuralRemove,
        ];
        for kind in kinds {
            workload.run_operation(&mut ctx, &mut rng, kind);
        }
        assert_eq!(ctx.stats().commits, kinds.len() as u64);
        assert!(workload.data().check(&mut ctx));
    }

    #[test]
    fn long_traversal_touches_many_parts() {
        let (stm, workload) = setup();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| workload.op_long_traversal(tx, false))
            .unwrap();
        let stats = ctx.stats();
        assert!(
            stats.reads > Bench7Config::tiny().total_parts() as u64,
            "long traversal should read every atomic part at least once (reads = {})",
            stats.reads
        );
    }

    #[test]
    fn structural_add_makes_part_visible() {
        let (stm, workload) = setup();
        let mut ctx = ThreadContext::register(stm);
        let mut rng = FastRng::new(5);
        let new_id = ctx
            .atomically(|tx| workload.op_structural_add(tx, &mut rng))
            .unwrap();
        assert!(new_id > Bench7Config::tiny().total_parts() as u64);
        let found = ctx
            .atomically(|tx| workload.data().part_index().get(tx, new_id))
            .unwrap();
        assert!(found.is_some());
    }

    #[test]
    fn structural_remove_deletes_from_index() {
        let (stm, workload) = setup();
        let mut ctx = ThreadContext::register(stm);
        // Find an id that is not a composite root (roots are skipped).
        let mut removed_id = None;
        let mut rng = FastRng::new(9);
        for _ in 0..50 {
            let result = ctx
                .atomically(|tx| workload.op_structural_remove(tx, &mut rng))
                .unwrap();
            if result == 1 {
                removed_id = Some(result);
                break;
            }
        }
        assert!(removed_id.is_some(), "no removable part found in 50 tries");
    }

    #[test]
    fn mix_pick_respects_read_only_ratio_roughly() {
        let mix = WorkloadMix::read_dominated();
        let mut rng = FastRng::new(3);
        let trials = 4000;
        let read_only = (0..trials)
            .filter(|_| mix.pick(&mut rng).is_read_only())
            .count();
        let ratio = read_only as f64 / trials as f64;
        assert!(
            (0.85..=0.95).contains(&ratio),
            "read-only ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn operation_kinds_classify_read_only_correctly() {
        assert!(OperationKind::LongTraversalRead.is_read_only());
        assert!(!OperationKind::LongTraversalUpdate.is_read_only());
        assert!(!OperationKind::StructuralAdd.is_read_only());
    }
}
