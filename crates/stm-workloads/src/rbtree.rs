//! The red-black tree microbenchmark (paper Figure 5 and Figure 10).
//!
//! Short, simple transactions over a shared [`RbTree`]: lookups, inserts and
//! removals of uniformly random keys from a fixed range. The paper's
//! configuration is a key range of 16 384 with 20 % update operations; both
//! parameters are configurable here.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::tm::{ThreadContext, TmAlgorithm};

use crate::driver::Workload;
use crate::structures::RbTree;

/// Configuration of the microbenchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RbTreeConfig {
    /// Keys are drawn uniformly from `[0, key_range)`.
    pub key_range: u64,
    /// Percentage of operations that update the tree (split evenly between
    /// inserts and removals); the rest are lookups.
    pub update_percent: u64,
    /// Number of keys inserted before the measurement starts.
    pub initial_size: u64,
}

impl RbTreeConfig {
    /// The paper's configuration: range 16 384, 20 % updates, half-full
    /// tree.
    pub fn paper_default() -> Self {
        RbTreeConfig {
            key_range: 16 * 1024,
            update_percent: 20,
            initial_size: 8 * 1024,
        }
    }

    /// A small configuration for unit tests.
    pub fn small() -> Self {
        RbTreeConfig {
            key_range: 512,
            update_percent: 20,
            initial_size: 256,
        }
    }

    /// Overrides the update percentage.
    pub fn with_update_percent(mut self, update_percent: u64) -> Self {
        self.update_percent = update_percent;
        self
    }
}

impl Default for RbTreeConfig {
    fn default() -> Self {
        RbTreeConfig::paper_default()
    }
}

/// The microbenchmark workload: a shared tree plus the operation mix.
#[derive(Debug)]
pub struct RbTreeWorkload {
    tree: RbTree,
    config: RbTreeConfig,
}

impl RbTreeWorkload {
    /// Creates the tree and pre-populates it with `initial_size` random
    /// keys.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the initial tree.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: RbTreeConfig, seed: u64) -> Arc<Self> {
        let tree = RbTree::create(stm.heap()).expect("heap too small for red-black tree");
        let mut ctx = ThreadContext::register(Arc::clone(stm));
        let mut rng = FastRng::new(seed | 1);
        let mut inserted = 0;
        while inserted < config.initial_size {
            let key = rng.next_below(config.key_range);
            let fresh = ctx
                .atomically(|tx| tree.insert(tx, key, key))
                .expect("initial population must not fail");
            if fresh {
                inserted += 1;
            }
        }
        Arc::new(RbTreeWorkload { tree, config })
    }

    /// The shared tree (used by tests and consistency checks).
    pub fn tree(&self) -> RbTree {
        self.tree
    }

    /// The configured operation mix.
    pub fn config(&self) -> RbTreeConfig {
        self.config
    }
}

impl<A: TmAlgorithm> Workload<A> for RbTreeWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, _op_index: u64) {
        let key = rng.next_below(self.config.key_range);
        let roll = rng.next_below(100);
        if roll < self.config.update_percent {
            if roll % 2 == 0 {
                ctx.atomically(|tx| self.tree.insert(tx, key, key))
                    .expect("insert transaction must eventually commit");
            } else {
                ctx.atomically(|tx| self.tree.remove(tx, key))
                    .expect("remove transaction must eventually commit");
            }
        } else {
            ctx.atomically(|tx| self.tree.contains(tx, key))
                .expect("lookup transaction must eventually commit");
        }
    }

    fn name(&self) -> String {
        format!(
            "rbtree(range={}, updates={}%)",
            self.config.key_range, self.config.update_percent
        )
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        ctx.atomically(|tx| self.tree.check_invariants(tx))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::StmConfig;
    use swisstm::SwissTm;
    use tinystm::TinyStm;
    use tl2::Tl2;

    #[test]
    fn workload_runs_on_swisstm_and_keeps_invariants() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = RbTreeWorkload::setup(&stm, RbTreeConfig::small(), 3);
        let result = run_workload(stm, workload, 3, RunLength::OpsPerThread(300), 99);
        assert!(result.check_passed);
        assert_eq!(result.operations, 900);
        assert!(result.stats.totals.commits >= 900);
    }

    #[test]
    fn workload_runs_on_tl2_and_tinystm() {
        let stm = Arc::new(Tl2::with_config(StmConfig::small()));
        let workload = RbTreeWorkload::setup(&stm, RbTreeConfig::small(), 4);
        let result = run_workload(stm, workload, 2, RunLength::OpsPerThread(200), 7);
        assert!(result.check_passed);

        let stm = Arc::new(TinyStm::with_config(StmConfig::small()));
        let workload = RbTreeWorkload::setup(&stm, RbTreeConfig::small(), 4);
        let result = run_workload(stm, workload, 2, RunLength::OpsPerThread(200), 7);
        assert!(result.check_passed);
    }

    #[test]
    fn read_only_mix_produces_read_only_commits() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let config = RbTreeConfig::small().with_update_percent(0);
        let workload = RbTreeWorkload::setup(&stm, config, 5);
        let result = run_workload(stm, workload, 1, RunLength::OpsPerThread(100), 1);
        assert_eq!(result.stats.totals.read_only_commits, 100);
    }

    #[test]
    fn setup_populates_requested_size() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let workload = RbTreeWorkload::setup(&stm, RbTreeConfig::small(), 11);
        let mut ctx = ThreadContext::register(stm);
        let len = ctx.atomically(|tx| workload.tree().len(tx)).unwrap();
        assert_eq!(len, RbTreeConfig::small().initial_size);
    }
}
