//! The multi-threaded benchmark driver.
//!
//! The paper measures either *throughput* (transactions per second over a
//! fixed wall-clock interval — STMBench7, red-black tree) or *execution
//! time* (time to complete a fixed amount of work — Lee-TM, STAMP). The
//! driver supports both through [`RunLength`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stm_core::backoff::FastRng;
use stm_core::stats::{StatsAggregate, TxStats};
use stm_core::tm::{ThreadContext, TmAlgorithm};

/// A benchmark workload: a shared, thread-safe description of the data
/// structure plus an `execute` method performing one application-level
/// operation (usually one transaction, sometimes a couple).
pub trait Workload<A: TmAlgorithm>: Send + Sync {
    /// Executes one operation on behalf of the calling thread.
    ///
    /// `op_index` is a per-thread operation counter; `rng` is a per-thread
    /// deterministic generator.
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, op_index: u64);

    /// Human-readable workload name.
    fn name(&self) -> String;

    /// Optional post-run consistency check (run single-threaded). Returning
    /// `false` fails the benchmark run's sanity assertion.
    fn check(&self, _ctx: &mut ThreadContext<A>) -> bool {
        true
    }
}

/// How long a benchmark run lasts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunLength {
    /// Each thread executes exactly this many operations (execution-time
    /// style measurements: Lee-TM, STAMP).
    OpsPerThread(u64),
    /// All threads run until the wall-clock duration elapses (throughput
    /// style measurements: STMBench7, red-black tree).
    Duration(Duration),
    /// The threads collectively execute this many operations, claimed from a
    /// shared counter (used when the work list is global, e.g. Lee-TM
    /// routes).
    TotalOps(u64),
}

/// Result of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Aggregated transaction statistics.
    pub stats: StatsAggregate,
    /// Number of application-level operations executed.
    pub operations: u64,
    /// Wall-clock time of the measured interval.
    pub elapsed: Duration,
    /// Whether the workload's consistency check passed.
    pub check_passed: bool,
}

impl RunResult {
    /// Application-level operations per second.
    pub fn ops_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.operations as f64 / secs
        }
    }

    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput()
    }

    /// Abort ratio across all threads.
    pub fn abort_ratio(&self) -> f64 {
        self.stats.abort_ratio()
    }
}

/// Runs `workload` on `threads` threads and collects statistics.
///
/// Each thread registers a [`ThreadContext`], draws a deterministic RNG
/// seeded from `seed` and its thread index, and repeatedly calls
/// [`Workload::execute`] until the run length is exhausted.
///
/// # Panics
///
/// Panics if a worker thread panics or the workload's consistency check
/// fails.
pub fn run_workload<A, W>(
    stm: Arc<A>,
    workload: Arc<W>,
    threads: usize,
    length: RunLength,
    seed: u64,
) -> RunResult
where
    A: TmAlgorithm,
    W: Workload<A> + ?Sized + 'static,
{
    assert!(threads > 0, "at least one thread is required");
    let stop = Arc::new(AtomicBool::new(false));
    let shared_ops = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let per_thread: Vec<(TxStats, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for thread_index in 0..threads {
            let stm = Arc::clone(&stm);
            let workload = Arc::clone(&workload);
            let stop = Arc::clone(&stop);
            let shared_ops = Arc::clone(&shared_ops);
            handles.push(scope.spawn(move || {
                let mut ctx = ThreadContext::register(stm);
                let mut rng =
                    FastRng::new(seed ^ (thread_index as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
                let mut executed = 0u64;
                match length {
                    RunLength::OpsPerThread(ops) => {
                        for op_index in 0..ops {
                            workload.execute(&mut ctx, &mut rng, op_index);
                            executed += 1;
                        }
                    }
                    RunLength::Duration(_) => {
                        let mut op_index = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            workload.execute(&mut ctx, &mut rng, op_index);
                            executed += 1;
                            op_index += 1;
                        }
                    }
                    RunLength::TotalOps(total) => loop {
                        let op_index = shared_ops.fetch_add(1, Ordering::Relaxed);
                        if op_index >= total {
                            break;
                        }
                        workload.execute(&mut ctx, &mut rng, op_index);
                        executed += 1;
                    },
                }
                (ctx.take_stats(), executed)
            }));
        }

        if let RunLength::Duration(duration) = length {
            // The main thread acts as the timer.
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("benchmark worker thread panicked"))
            .collect()
    });

    let elapsed = started.elapsed();
    let operations = per_thread.iter().map(|(_, ops)| ops).sum();
    let stats = StatsAggregate::collect(per_thread.iter().map(|(s, _)| s), elapsed);

    // Post-run consistency check on a fresh context.
    let mut checker = ThreadContext::register(stm);
    let check_passed = workload.check(&mut checker);
    assert!(
        check_passed,
        "workload '{}' failed its post-run consistency check",
        workload.name()
    );

    RunResult {
        stats,
        operations,
        elapsed,
        check_passed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::config::HeapConfig;
    use stm_core::naive::NaiveGlobalLockTm;
    use stm_core::word::Addr;

    struct CounterWorkload {
        addr: Addr,
    }

    impl Workload<NaiveGlobalLockTm> for CounterWorkload {
        fn execute(
            &self,
            ctx: &mut ThreadContext<NaiveGlobalLockTm>,
            _rng: &mut FastRng,
            _op: u64,
        ) {
            ctx.atomically(|tx| {
                let v = tx.read(self.addr)?;
                tx.write(self.addr, v + 1)
            })
            .unwrap();
        }

        fn name(&self) -> String {
            "counter".into()
        }

        fn check(&self, ctx: &mut ThreadContext<NaiveGlobalLockTm>) -> bool {
            ctx.read_word(self.addr).unwrap() > 0
        }
    }

    fn setup() -> (Arc<NaiveGlobalLockTm>, Arc<CounterWorkload>) {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        (stm, Arc::new(CounterWorkload { addr }))
    }

    #[test]
    fn ops_per_thread_executes_exact_count() {
        let (stm, workload) = setup();
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            3,
            RunLength::OpsPerThread(100),
            42,
        );
        assert_eq!(result.operations, 300);
        assert_eq!(stm.heap().load(workload.addr), 300);
        assert!(result.check_passed);
        assert!(result.ops_per_second() > 0.0);
    }

    #[test]
    fn total_ops_splits_work_between_threads() {
        let (stm, workload) = setup();
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            4,
            RunLength::TotalOps(200),
            1,
        );
        assert_eq!(result.operations, 200);
        assert_eq!(stm.heap().load(workload.addr), 200);
    }

    #[test]
    fn duration_run_terminates_and_reports_throughput() {
        let (stm, workload) = setup();
        let result = run_workload(
            stm,
            workload,
            2,
            RunLength::Duration(Duration::from_millis(50)),
            7,
        );
        assert!(result.operations > 0);
        assert!(result.throughput() > 0.0);
        assert!(result.elapsed >= Duration::from_millis(50));
    }
}
