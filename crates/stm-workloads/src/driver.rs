//! The multi-threaded benchmark driver.
//!
//! The paper measures either *throughput* (transactions per second over a
//! fixed wall-clock interval — STMBench7, red-black tree) or *execution
//! time* (time to complete a fixed amount of work — Lee-TM, STAMP). The
//! driver supports both through [`RunLength`].

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use stm_core::backoff::FastRng;
use stm_core::config::{ClockMode, TableLayout};
use stm_core::stats::{StatsAggregate, TxStats};
use stm_core::sync::{AtomicBool, AtomicU64, Ordering};
use stm_core::tm::{ThreadContext, TmAlgorithm};

use crate::placement::{
    available_cores, pin_current_thread, plan_placement, PinOutcome, PlacementOutcome,
    PlacementPolicy,
};

/// A benchmark workload: a shared, thread-safe description of the data
/// structure plus an `execute` method performing one application-level
/// operation (usually one transaction, sometimes a couple).
pub trait Workload<A: TmAlgorithm>: Send + Sync {
    /// Executes one operation on behalf of the calling thread.
    ///
    /// `op_index` is a per-thread operation counter; `rng` is a per-thread
    /// deterministic generator.
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, op_index: u64);

    /// Human-readable workload name.
    fn name(&self) -> String;

    /// Optional post-run consistency check (run single-threaded). Returning
    /// `false` fails the benchmark run's sanity assertion.
    fn check(&self, _ctx: &mut ThreadContext<A>) -> bool {
        true
    }

    /// Optional per-thread setup, called after the worker has registered its
    /// [`ThreadContext`] but *before* the start barrier: whatever happens
    /// here (warm-up, pinning, allocation) is excluded from the measurement
    /// window.
    fn on_thread_start(&self, _thread_index: usize) {}
}

/// How long a benchmark run lasts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunLength {
    /// Each thread executes exactly this many operations (execution-time
    /// style measurements: Lee-TM, STAMP).
    OpsPerThread(u64),
    /// All threads run until the wall-clock duration elapses (throughput
    /// style measurements: STMBench7, red-black tree).
    Duration(Duration),
    /// The threads collectively execute this many operations, claimed from a
    /// shared counter (used when the work list is global, e.g. Lee-TM
    /// routes).
    TotalOps(u64),
}

/// Full specification of one benchmark run: how long it runs, how it is
/// seeded, and which runtime configuration knobs were active.
///
/// `clock` and `table_layout` describe the STM instance the caller built —
/// the driver records them verbatim into [`RunResult`] so every measured
/// point is self-describing (the driver itself only sees the instance
/// through [`TmAlgorithm`] and cannot read its configuration back).
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Number of worker threads.
    pub threads: usize,
    /// How long the run lasts.
    pub length: RunLength,
    /// Seed for the per-thread operation streams.
    pub seed: u64,
    /// Thread-placement policy applied to the workers.
    pub pin: PlacementPolicy,
    /// Commit-clock mode the STM instance was built with.
    pub clock: ClockMode,
    /// Lock-table layout the STM instance was built with.
    pub table_layout: TableLayout,
}

impl RunSpec {
    /// A spec with the default runtime knobs (no pinning, strict clock,
    /// flat lock table).
    pub fn new(threads: usize, length: RunLength, seed: u64) -> Self {
        RunSpec {
            threads,
            length,
            seed,
            pin: PlacementPolicy::None,
            clock: ClockMode::Strict,
            table_layout: TableLayout::Flat,
        }
    }

    /// Returns a copy with a different placement policy.
    pub fn with_pin(mut self, pin: PlacementPolicy) -> Self {
        self.pin = pin;
        self
    }

    /// Returns a copy recording a different commit-clock mode.
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// Returns a copy recording a different lock-table layout.
    pub fn with_table_layout(mut self, table_layout: TableLayout) -> Self {
        self.table_layout = table_layout;
        self
    }
}

/// Result of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Aggregated transaction statistics.
    pub stats: StatsAggregate,
    /// Number of application-level operations executed.
    pub operations: u64,
    /// Wall-clock time of the measured interval.
    pub elapsed: Duration,
    /// Whether the workload's consistency check passed.
    pub check_passed: bool,
    /// Thread-placement record: the requested policy and, per worker, where
    /// it was pinned (or why it was not). Pinning is best-effort, so a
    /// degraded placement is recorded here rather than failing the run.
    pub placement: PlacementOutcome,
    /// Seed the run's operation streams were drawn from ([`RunSpec::seed`]).
    pub seed: u64,
    /// Commit-clock mode recorded for this run ([`RunSpec::clock`]).
    pub clock: ClockMode,
    /// Lock-table layout recorded for this run ([`RunSpec::table_layout`]).
    pub table_layout: TableLayout,
}

impl RunResult {
    /// Application-level operations per second.
    pub fn ops_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.operations as f64 / secs
        }
    }

    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput()
    }

    /// Abort ratio across all threads.
    pub fn abort_ratio(&self) -> f64 {
        self.stats.abort_ratio()
    }

    /// Fraction of total thread-time spent in CM wait loops (contention
    /// telemetry; see [`stm_core::stats::StatsAggregate::wait_share`]).
    pub fn wait_share(&self) -> f64 {
        self.stats.wait_share()
    }

    /// Fraction of total thread-time spent spinning in back-off (contention
    /// telemetry; see [`stm_core::stats::StatsAggregate::backoff_share`]).
    pub fn backoff_share(&self) -> f64 {
        self.stats.backoff_share()
    }
}

/// Runs `workload` on `threads` threads and collects statistics.
///
/// Each thread registers a [`ThreadContext`], runs the workload's
/// [`Workload::on_thread_start`] setup, draws a deterministic RNG seeded
/// from `seed` and its thread index, and then blocks on a start barrier: no
/// worker executes an operation until *every* worker has registered. The
/// measurement window opens when the barrier releases.
///
/// `elapsed` is measured on the workers' own clocks for every run mode:
/// the earliest worker's barrier release to the last worker's loop end.
/// This is exactly the interval the counted operations span — thread
/// creation, registration and join overhead never pollute it, and (unlike
/// a window sampled by the main thread) it cannot be skewed by the timer
/// thread being scheduled late on an oversubscribed machine. For
/// [`RunLength::Duration`] runs the main thread still acts as the timer
/// (sleep, then raise the stop flag), so `elapsed` is the requested
/// duration plus the in-flight tail of operations that were already
/// counted when the flag landed.
///
/// # Panics
///
/// Panics if a worker thread panics or the workload's consistency check
/// fails.
pub fn run_workload<A, W>(
    stm: Arc<A>,
    workload: Arc<W>,
    threads: usize,
    length: RunLength,
    seed: u64,
) -> RunResult
where
    A: TmAlgorithm,
    W: Workload<A> + ?Sized + 'static,
{
    run_workload_spec(stm, workload, &RunSpec::new(threads, length, seed))
}

/// [`run_workload`] with an explicit thread-placement policy.
///
/// Each worker pins itself (best-effort, via [`crate::placement`]) right
/// after registering its [`ThreadContext`] and *before* the start barrier,
/// so pinning overhead — a `taskset` process per worker — never lands in
/// the measurement window and every measured operation runs on the
/// assigned core. Pin failures and unplanned threads (policy `None`, or
/// more threads than cores) degrade gracefully: the run proceeds unpinned
/// and the per-thread outcome is recorded in [`RunResult::placement`].
pub fn run_workload_placed<A, W>(
    stm: Arc<A>,
    workload: Arc<W>,
    threads: usize,
    length: RunLength,
    seed: u64,
    policy: PlacementPolicy,
) -> RunResult
where
    A: TmAlgorithm,
    W: Workload<A> + ?Sized + 'static,
{
    run_workload_spec(
        stm,
        workload,
        &RunSpec::new(threads, length, seed).with_pin(policy),
    )
}

/// Runs `workload` under a full [`RunSpec`] and collects statistics.
///
/// This is the fully specified entry point the harness uses: besides the
/// thread count, run length, seed and placement policy, the spec carries
/// the commit-clock mode and lock-table layout of the STM instance so the
/// returned [`RunResult`] describes the complete configuration the numbers
/// were measured under.
pub fn run_workload_spec<A, W>(stm: Arc<A>, workload: Arc<W>, spec: &RunSpec) -> RunResult
where
    A: TmAlgorithm,
    W: Workload<A> + ?Sized + 'static,
{
    let threads = spec.threads;
    let length = spec.length;
    let seed = spec.seed;
    let policy = spec.pin;
    assert!(threads > 0, "at least one thread is required");
    let cores = available_cores();
    let plan = plan_placement(policy, threads, cores);
    let stop = Arc::new(AtomicBool::new(false));
    let shared_ops = Arc::new(AtomicU64::new(0));
    // Workers + the main (timer) thread all meet at the start barrier.
    let barrier = Arc::new(Barrier::new(threads + 1));

    /// Guarantees the barrier is reached even if per-thread setup panics:
    /// the main thread is parked on the barrier, and a missing participant
    /// would otherwise turn the panic into a deadlock instead of a
    /// propagated join error.
    struct BarrierGuard {
        barrier: Arc<Barrier>,
        armed: bool,
    }

    impl BarrierGuard {
        fn wait(mut self) {
            self.armed = false;
            self.barrier.wait();
        }
    }

    impl Drop for BarrierGuard {
        fn drop(&mut self) {
            if self.armed {
                self.barrier.wait();
            }
        }
    }

    type WorkerSample = (TxStats, u64, Instant, Instant, PinOutcome);
    let (per_thread, elapsed): (Vec<WorkerSample>, Duration) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (thread_index, &assigned_core) in plan.iter().enumerate().take(threads) {
            let stm = Arc::clone(&stm);
            let workload = Arc::clone(&workload);
            let stop = Arc::clone(&stop);
            let shared_ops = Arc::clone(&shared_ops);
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let release = BarrierGuard {
                    barrier: Arc::clone(&barrier),
                    armed: true,
                };
                let mut ctx = ThreadContext::register(stm);
                let pin = match assigned_core {
                    Some(core) => pin_current_thread(core),
                    None => PinOutcome::Unplanned,
                };
                workload.on_thread_start(thread_index);
                let mut rng =
                    FastRng::new(seed ^ (thread_index as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
                release.wait();
                // Each worker samples its own window edges: on an
                // oversubscribed machine the workers can run (or a
                // small fixed-work run even finish) before the main
                // thread is scheduled again, so the main thread's
                // clock cannot bound the window the counted
                // operations actually span.
                let started_at = Instant::now();
                let mut executed = 0u64;
                match length {
                    RunLength::OpsPerThread(ops) => {
                        for op_index in 0..ops {
                            workload.execute(&mut ctx, &mut rng, op_index);
                            executed += 1;
                        }
                    }
                    RunLength::Duration(_) => {
                        let mut op_index = 0u64;
                        // sync: Relaxed — the stop flag only ends the
                        // measurement window; the worker's results are
                        // published by the join, not by this load.
                        while !stop.load(Ordering::Relaxed) {
                            workload.execute(&mut ctx, &mut rng, op_index);
                            executed += 1;
                            op_index += 1;
                        }
                    }
                    RunLength::TotalOps(total) => loop {
                        // sync: Relaxed RMW — indices must be unique
                        // (atomicity), but no payload rides on the counter.
                        let op_index = shared_ops.fetch_add(1, Ordering::Relaxed);
                        if op_index >= total {
                            break;
                        }
                        workload.execute(&mut ctx, &mut rng, op_index);
                        executed += 1;
                    },
                }
                let finished_at = Instant::now();
                (ctx.take_stats(), executed, started_at, finished_at, pin)
            }));
        }

        // Release the workers; the measurement window opens here.
        barrier.wait();
        if let RunLength::Duration(duration) = length {
            // The main thread is only the timer; the window itself is
            // measured by the workers' clocks below.
            std::thread::sleep(duration);
            // sync: Relaxed — see the worker-side load above.
            stop.store(true, Ordering::Relaxed);
        }

        let per_thread: Vec<WorkerSample> = handles
            .into_iter()
            .map(|h| h.join().expect("benchmark worker thread panicked"))
            .collect();
        // The window spans the earliest worker's barrier release to the
        // last worker's loop end — the exact interval the counted
        // operations executed in.
        let first_start = per_thread
            .iter()
            .map(|&(_, _, started_at, _, _)| started_at)
            .min();
        let last_finish = per_thread
            .iter()
            .map(|&(_, _, _, finished_at, _)| finished_at)
            .max();
        let elapsed = match (first_start, last_finish) {
            (Some(start), Some(finish)) => finish.saturating_duration_since(start),
            _ => Duration::ZERO,
        };
        (per_thread, elapsed)
    });

    let operations = per_thread.iter().map(|(_, ops, _, _, _)| ops).sum();
    let stats = StatsAggregate::collect(per_thread.iter().map(|(s, _, _, _, _)| s), elapsed);
    let placement = PlacementOutcome {
        policy,
        cores,
        threads: per_thread.iter().map(|&(_, _, _, _, pin)| pin).collect(),
    };

    // Post-run consistency check on a fresh context.
    let mut checker = ThreadContext::register(stm);
    let check_passed = workload.check(&mut checker);
    assert!(
        check_passed,
        "workload '{}' failed its post-run consistency check",
        workload.name()
    );

    RunResult {
        stats,
        operations,
        elapsed,
        check_passed,
        placement,
        seed,
        clock: spec.clock,
        table_layout: spec.table_layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::config::HeapConfig;
    use stm_core::naive::NaiveGlobalLockTm;
    use stm_core::sync::AtomicUsize;
    use stm_core::word::Addr;

    struct CounterWorkload {
        addr: Addr,
    }

    impl Workload<NaiveGlobalLockTm> for CounterWorkload {
        fn execute(
            &self,
            ctx: &mut ThreadContext<NaiveGlobalLockTm>,
            _rng: &mut FastRng,
            _op: u64,
        ) {
            ctx.atomically(|tx| {
                let v = tx.read(self.addr)?;
                tx.write(self.addr, v + 1)
            })
            .unwrap();
        }

        fn name(&self) -> String {
            "counter".into()
        }

        fn check(&self, ctx: &mut ThreadContext<NaiveGlobalLockTm>) -> bool {
            ctx.read_word(self.addr).unwrap() > 0
        }
    }

    fn setup() -> (Arc<NaiveGlobalLockTm>, Arc<CounterWorkload>) {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        (stm, Arc::new(CounterWorkload { addr }))
    }

    #[test]
    fn ops_per_thread_executes_exact_count() {
        let (stm, workload) = setup();
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            3,
            RunLength::OpsPerThread(100),
            42,
        );
        assert_eq!(result.operations, 300);
        assert_eq!(stm.heap().load(workload.addr), 300);
        assert!(result.check_passed);
        assert!(result.ops_per_second() > 0.0);
    }

    #[test]
    fn total_ops_splits_work_between_threads() {
        let (stm, workload) = setup();
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            4,
            RunLength::TotalOps(200),
            1,
        );
        assert_eq!(result.operations, 200);
        assert_eq!(stm.heap().load(workload.addr), 200);
    }

    /// The contention telemetry flows from the per-thread contexts through
    /// `take_stats` into the aggregated `RunResult`: the retry histogram
    /// accounts for every commit, and the share metrics are well-formed.
    #[test]
    fn run_result_carries_contention_telemetry() {
        let (stm, workload) = setup();
        let result = run_workload(stm, workload, 2, RunLength::OpsPerThread(50), 3);
        let totals = &result.stats.totals;
        assert_eq!(
            totals.retries.total(),
            totals.commits,
            "every commit lands in exactly one retry-depth bucket"
        );
        assert!(result.wait_share() >= 0.0);
        assert!(result.backoff_share() >= 0.0);
        // Wait time can never exceed the total thread-time of the window.
        let thread_time_nanos = result.elapsed.as_nanos() as u64 * 2;
        assert!(totals.contention.cm_wait_nanos <= thread_time_nanos);
    }

    #[test]
    fn duration_run_terminates_and_reports_throughput() {
        let (stm, workload) = setup();
        let result = run_workload(
            stm,
            workload,
            2,
            RunLength::Duration(Duration::from_millis(50)),
            7,
        );
        assert!(result.operations > 0);
        assert!(result.throughput() > 0.0);
        assert!(result.elapsed >= Duration::from_millis(50));
    }

    /// A counter workload whose per-thread setup is artificially slow: the
    /// regression stand-in for expensive thread registration. The measured
    /// window must not include it.
    struct SlowStartWorkload {
        inner: CounterWorkload,
        startup_delay: Duration,
        registered: AtomicUsize,
        threads: usize,
        saw_unregistered_peer: AtomicBool,
    }

    impl Workload<NaiveGlobalLockTm> for SlowStartWorkload {
        fn execute(&self, ctx: &mut ThreadContext<NaiveGlobalLockTm>, rng: &mut FastRng, op: u64) {
            // sync: SeqCst — regression test flags; strongest ordering so
            // the assertion can't be blamed on the counters themselves.
            if self.registered.load(Ordering::SeqCst) != self.threads {
                self.saw_unregistered_peer.store(true, Ordering::SeqCst);
            }
            self.inner.execute(ctx, rng, op);
        }

        fn name(&self) -> String {
            "slow-start counter".into()
        }

        fn on_thread_start(&self, thread_index: usize) {
            // Stagger the delays so late threads register visibly later, as
            // a slow spawn tail would.
            std::thread::sleep(self.startup_delay * (thread_index as u32));
            // sync: SeqCst — regression test counter, see execute().
            self.registered.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn slow_start_setup(
        threads: usize,
        startup_delay: Duration,
    ) -> (Arc<NaiveGlobalLockTm>, Arc<SlowStartWorkload>) {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let workload = SlowStartWorkload {
            inner: CounterWorkload { addr },
            startup_delay,
            registered: AtomicUsize::new(0),
            threads,
            saw_unregistered_peer: AtomicBool::new(false),
        };
        (stm, Arc::new(workload))
    }

    /// Regression test for the measurement-window bug: `elapsed` used to
    /// span spawn-to-join, so slow per-thread start-up (registration) was
    /// charged to the measured interval. With four threads staggering their
    /// start-up by 40 ms each (120 ms for the last), the old measurement
    /// reported ≥ 170 ms for a 50 ms point; the post-barrier window stays
    /// within a tight tolerance of the requested duration.
    #[test]
    fn duration_elapsed_excludes_thread_startup_time() {
        let duration = Duration::from_millis(50);
        let (stm, workload) = slow_start_setup(4, Duration::from_millis(40));
        let result = run_workload(
            stm,
            Arc::clone(&workload),
            4,
            RunLength::Duration(duration),
            5,
        );
        assert!(
            result.elapsed >= duration - Duration::from_millis(25),
            "elapsed {:?}",
            result.elapsed
        );
        assert!(
            result.elapsed < duration + Duration::from_millis(100),
            "elapsed {:?} should stay close to the requested {:?} window \
             even though thread start-up took 120 ms",
            result.elapsed,
            duration
        );
        // The stats aggregate must use the same measured window.
        assert_eq!(result.stats.elapsed, result.elapsed);
    }

    /// Same regression with many threads: sixteen workers whose staggered
    /// start-up tail (10 ms × 15 = 150 ms) dwarfs the 50 ms point. The old
    /// spawn-to-join measurement grew with the thread count; the
    /// barrier-to-stop window must not.
    #[test]
    fn duration_elapsed_is_tight_with_many_threads() {
        let duration = Duration::from_millis(50);
        let (stm, workload) = slow_start_setup(16, Duration::from_millis(10));
        let result = run_workload(
            stm,
            Arc::clone(&workload),
            16,
            RunLength::Duration(duration),
            9,
        );
        // The window is measured on the workers' clocks, so scheduling on a
        // loaded box can shift it a little either way relative to the timer
        // thread's sleep; the regression being pinned is the 150 ms
        // start-up tail leaking in, which would push elapsed past 200 ms.
        assert!(
            result.elapsed >= duration - Duration::from_millis(25),
            "elapsed {:?}",
            result.elapsed
        );
        assert!(
            result.elapsed < duration + Duration::from_millis(100),
            "elapsed {:?} must not grow with the 150 ms start-up tail of 16 \
             threads",
            result.elapsed
        );
    }

    /// A worker panicking during per-thread setup (registration or
    /// `on_thread_start`) must propagate as a join panic — the barrier
    /// guard releases the other participants, so the panic cannot turn
    /// into a deadlock of the start barrier.
    #[test]
    #[should_panic(expected = "benchmark worker thread panicked")]
    fn worker_panic_during_setup_propagates_instead_of_deadlocking() {
        struct PanickyStart {
            inner: CounterWorkload,
        }

        impl Workload<NaiveGlobalLockTm> for PanickyStart {
            fn execute(
                &self,
                ctx: &mut ThreadContext<NaiveGlobalLockTm>,
                rng: &mut FastRng,
                op: u64,
            ) {
                self.inner.execute(ctx, rng, op);
            }

            fn name(&self) -> String {
                "panicky-start counter".into()
            }

            fn on_thread_start(&self, thread_index: usize) {
                if thread_index == 1 {
                    panic!("per-thread setup failed");
                }
            }
        }

        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let workload = Arc::new(PanickyStart {
            inner: CounterWorkload { addr },
        });
        run_workload(stm, workload, 2, RunLength::OpsPerThread(4), 1);
    }

    /// The start barrier: no worker may execute an operation until every
    /// worker has registered. Without the barrier, thread 0 runs alone for
    /// the whole (staggered, 120 ms) spawn tail and trips the flag.
    #[test]
    fn no_worker_executes_before_all_threads_registered() {
        let (stm, workload) = slow_start_setup(4, Duration::from_millis(40));
        let result = run_workload(
            stm,
            Arc::clone(&workload),
            4,
            RunLength::OpsPerThread(200),
            5,
        );
        assert_eq!(result.operations, 800);
        assert!(
            // sync: SeqCst — regression test flag, see execute().
            !workload.saw_unregistered_peer.load(Ordering::SeqCst),
            "a worker executed operations before all threads were registered"
        );
    }

    /// Every `RunResult` is self-describing: the seed and the runtime
    /// configuration knobs (clock mode, table layout, placement policy)
    /// land in the result exactly as specified, so a perf-snapshot point
    /// built from it can be reproduced without out-of-band context.
    #[test]
    fn run_result_records_seed_and_config_knobs() {
        let (stm, workload) = setup();
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            2,
            RunLength::OpsPerThread(10),
            0xfeed,
        );
        // The convenience wrapper records the defaults.
        assert_eq!(result.seed, 0xfeed);
        assert_eq!(result.clock, ClockMode::Strict);
        assert_eq!(result.table_layout, TableLayout::Flat);
        assert_eq!(result.placement.policy, PlacementPolicy::None);

        // A full spec threads every knob through verbatim.
        let spec = RunSpec::new(2, RunLength::OpsPerThread(10), 77)
            .with_clock(ClockMode::Deferred)
            .with_table_layout(TableLayout::PaddedMixed)
            .with_pin(PlacementPolicy::Compact);
        let result = run_workload_spec(stm, workload, &spec);
        assert_eq!(result.seed, 77);
        assert_eq!(result.clock, ClockMode::Deferred);
        assert_eq!(result.table_layout, TableLayout::PaddedMixed);
        assert_eq!(result.placement.policy, PlacementPolicy::Compact);
    }

    /// The default entry point never pins: every worker is recorded as
    /// `Unplanned` and the placement is not degraded (unpinned was the
    /// request, not a failure).
    #[test]
    fn default_run_records_unpinned_placement() {
        let (stm, workload) = setup();
        let result = run_workload(stm, workload, 2, RunLength::OpsPerThread(10), 11);
        assert_eq!(result.placement.policy, PlacementPolicy::None);
        assert_eq!(result.placement.threads, vec![PinOutcome::Unplanned; 2]);
        assert_eq!(result.placement.pinned(), 0);
        assert!(!result.placement.degraded());
    }

    /// Pinning assigns distinct cores to the threads the plan covers, and
    /// degrades gracefully — no panic, outcome recorded in `RunResult` —
    /// when `available_parallelism` is smaller than the thread count or
    /// pinning is unsupported on the host. With more threads than cores
    /// (guaranteed here by using `cores + 1` threads) at least one thread
    /// is always left `Unplanned`, so the run is recorded as degraded.
    #[test]
    fn placed_run_pins_distinct_cores_and_degrades_gracefully() {
        let cores = crate::placement::available_cores();
        let threads = cores + 1;
        let (stm, workload) = setup();
        let result = run_workload_placed(
            stm,
            workload,
            threads,
            RunLength::OpsPerThread(10),
            13,
            PlacementPolicy::Compact,
        );
        let placement = &result.placement;
        assert_eq!(placement.policy, PlacementPolicy::Compact);
        assert_eq!(placement.cores, cores);
        assert_eq!(placement.threads.len(), threads);
        // Whatever the host supports, pinned threads landed on distinct
        // in-range cores.
        let pinned_cores: Vec<usize> = placement
            .threads
            .iter()
            .filter_map(|outcome| match outcome {
                PinOutcome::Pinned(core) => Some(*core),
                _ => None,
            })
            .collect();
        let distinct: std::collections::HashSet<_> = pinned_cores.iter().collect();
        assert_eq!(distinct.len(), pinned_cores.len());
        assert!(pinned_cores.iter().all(|&core| core < cores));
        // The surplus thread was left to the scheduler, and that shortfall
        // is what `degraded` reports.
        assert_eq!(
            placement.threads[cores..],
            vec![PinOutcome::Unplanned; threads - cores]
        );
        assert!(placement.degraded());
        // Degradation never compromises the run itself.
        assert_eq!(result.operations, threads as u64 * 10);
        assert!(result.check_passed);
    }

    /// Fixed-work runs measure from barrier release to the last worker's
    /// loop end, so the staggered start-up cannot inflate execution time.
    #[test]
    fn ops_run_elapsed_excludes_thread_startup_time() {
        let (stm, workload) = slow_start_setup(3, Duration::from_millis(50));
        let result = run_workload(stm, workload, 3, RunLength::TotalOps(60), 5);
        assert_eq!(result.operations, 60);
        // The window is measured by the workers' own clocks, so it can
        // never collapse to zero (which would blow up ops/s ratios) even if
        // the run outpaces the main thread's scheduling.
        assert!(result.elapsed > Duration::ZERO);
        assert!(result.ops_per_second() > 0.0);
        assert!(
            result.elapsed < Duration::from_millis(100),
            "60 trivial counter increments cannot take {:?}; the 100 ms \
             start-up tail leaked into the execution-time window",
            result.elapsed
        );
    }
}
