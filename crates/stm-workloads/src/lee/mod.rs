//! The Lee-TM circuit-routing benchmark (paper Figure 4 and Figure 8).
//!
//! Lee's algorithm routes point-to-point connections on a grid: an
//! expansion phase floods outwards from the source until the destination is
//! reached (reading a large number of grid cells), then a backtracking phase
//! lays the route (writing a small number of cells). Each connection is one
//! transaction — large, but with a very regular read-then-write pattern.
//!
//! The original benchmark ships two input boards ("memory" and
//! "mainboard"). Those files are not redistributable here, so
//! [`LeeConfig::memory_board`] and [`LeeConfig::main_board`] generate
//! deterministic pseudo-random netlists of comparable density (see
//! DESIGN.md §2); the transaction shape (many reads, few writes, conflicts
//! where routes cross) is the same.
//!
//! The *irregular* variant of Section 5 adds a single hot word `Oc` that
//! every transaction reads at its start and a fraction `R` of transactions
//! also update, creating long-lasting read/write conflicts; this is
//! [`LeeConfig::irregular_update_percent`].

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::error::TxResult;
use stm_core::tm::{ThreadContext, TmAlgorithm, Tx};
use stm_core::word::{Addr, Word};

use crate::driver::Workload;
use crate::profile::SizeProfile;

/// Which of the two benchmark inputs a board stands in for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LeeBoard {
    /// The dense "memory" circuit board with short connections.
    #[default]
    Memory,
    /// The larger "mainboard" input with longer connections.
    Main,
    /// Ad-hoc boards used by unit tests.
    Test,
}

/// Configuration of the router benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeeConfig {
    /// Which benchmark input this board stands in for (used for labels).
    pub board: LeeBoard,
    /// Grid width in cells.
    pub width: usize,
    /// Grid height in cells.
    pub height: usize,
    /// Number of connections in the netlist.
    pub routes: usize,
    /// Maximum Manhattan length of a generated connection.
    pub max_route_length: usize,
    /// Percentage of transactions that also update the shared hot word
    /// (`R` in the paper's irregular Lee-TM experiment); 0 disables the hot
    /// word entirely, reproducing the original regular benchmark.
    pub irregular_update_percent: u64,
}

impl LeeConfig {
    /// Stand-in for the "memory" circuit board at the quick profile: a
    /// dense board with short connections.
    pub fn memory_board() -> Self {
        LeeConfig::memory_board_at(SizeProfile::Quick)
    }

    /// The "memory" board at the given size profile.
    pub fn memory_board_at(profile: SizeProfile) -> Self {
        LeeConfig {
            board: LeeBoard::Memory,
            width: profile.pick(64, 128, 256),
            height: profile.pick(64, 128, 256),
            routes: profile.pick(160, 384, 1024),
            max_route_length: profile.pick(24, 32, 48),
            irregular_update_percent: 0,
        }
    }

    /// Stand-in for the "mainboard" input at the quick profile: a larger
    /// board with longer connections.
    pub fn main_board() -> Self {
        LeeConfig::main_board_at(SizeProfile::Quick)
    }

    /// The "mainboard" input at the given size profile.
    pub fn main_board_at(profile: SizeProfile) -> Self {
        LeeConfig {
            board: LeeBoard::Main,
            width: profile.pick(96, 192, 384),
            height: profile.pick(96, 192, 384),
            routes: profile.pick(220, 512, 1536),
            max_route_length: profile.pick(48, 64, 96),
            irregular_update_percent: 0,
        }
    }

    /// A tiny board for unit tests.
    pub fn tiny() -> Self {
        LeeConfig {
            board: LeeBoard::Test,
            width: 16,
            height: 16,
            routes: 24,
            max_route_length: 8,
            irregular_update_percent: 0,
        }
    }

    /// Enables the "irregular" variant with update ratio `percent`.
    pub fn with_irregular_updates(mut self, percent: u64) -> Self {
        self.irregular_update_percent = percent;
        self
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.width * self.height
    }
}

impl Default for LeeConfig {
    fn default() -> Self {
        LeeConfig::memory_board()
    }
}

/// One connection request of the netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Source cell (x, y).
    pub src: (usize, usize),
    /// Destination cell (x, y).
    pub dst: (usize, usize),
}

/// The Lee-TM workload: a shared grid plus a fixed netlist.
#[derive(Debug)]
pub struct LeeWorkload {
    config: LeeConfig,
    grid: Addr,
    /// The shared hot word of the irregular variant.
    hot_word: Addr,
    /// Count of successfully routed connections (heap word, updated
    /// transactionally).
    routed_counter: Addr,
    netlist: Vec<Route>,
}

impl LeeWorkload {
    /// Builds the grid and a deterministic netlist.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot hold the grid.
    pub fn setup<A: TmAlgorithm>(stm: &Arc<A>, config: LeeConfig, seed: u64) -> Arc<Self> {
        let heap = stm.heap();
        let grid = heap
            .alloc_zeroed(config.cells())
            .expect("heap too small for the routing grid");
        let hot_word = heap.alloc_zeroed(1).expect("heap exhausted");
        let routed_counter = heap.alloc_zeroed(1).expect("heap exhausted");

        let mut rng = FastRng::new(seed | 1);
        let mut netlist = Vec::with_capacity(config.routes);
        while netlist.len() < config.routes {
            let sx = rng.next_below(config.width as u64) as usize;
            let sy = rng.next_below(config.height as u64) as usize;
            let max = config.max_route_length as i64;
            let dx = rng.next_below((2 * max + 1) as u64) as i64 - max;
            let dy = rng.next_below((2 * max + 1) as u64) as i64 - max;
            let tx = sx as i64 + dx;
            let ty = sy as i64 + dy;
            if tx < 0 || ty < 0 || tx >= config.width as i64 || ty >= config.height as i64 {
                continue;
            }
            let dst = (tx as usize, ty as usize);
            if dst == (sx, sy) {
                continue;
            }
            netlist.push(Route { src: (sx, sy), dst });
        }

        Arc::new(LeeWorkload {
            config,
            grid,
            hot_word,
            routed_counter,
            netlist,
        })
    }

    /// The netlist (route `op_index % len` is attempted by each operation).
    pub fn netlist(&self) -> &[Route] {
        &self.netlist
    }

    /// The benchmark configuration.
    pub fn config(&self) -> LeeConfig {
        self.config
    }

    fn cell(&self, x: usize, y: usize) -> Addr {
        self.grid.offset(y * self.config.width + x)
    }

    /// Number of successfully routed connections so far.
    pub fn routed<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> u64 {
        ctx.read_word(self.routed_counter).unwrap_or(0)
    }

    /// Routes one connection inside the given transaction. Returns `true`
    /// if a route was laid.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn route_one<A: TmAlgorithm>(
        &self,
        tx: &mut Tx<'_, A>,
        route: Route,
        net_id: Word,
        rng: &mut FastRng,
    ) -> TxResult<bool> {
        let config = self.config;

        // Irregular variant: read the hot word first; a fraction of the
        // transactions also update it, creating read/write conflicts with
        // every other in-flight transaction.
        if config.irregular_update_percent > 0 {
            let hot = tx.read(self.hot_word)?;
            if rng.chance_percent(config.irregular_update_percent) {
                tx.write(self.hot_word, hot.wrapping_add(1))?;
            }
        }

        // Expansion (breadth-first flood): cost grid is transaction-local,
        // the occupancy reads are transactional.
        let cells = config.cells();
        let mut cost: Vec<u32> = vec![u32::MAX; cells];
        let mut queue = std::collections::VecDeque::new();
        let src_index = route.src.1 * config.width + route.src.0;
        let dst_index = route.dst.1 * config.width + route.dst.0;
        cost[src_index] = 0;
        queue.push_back(route.src);

        let mut found = false;
        while let Some((x, y)) = queue.pop_front() {
            if (x, y) == route.dst {
                found = true;
                break;
            }
            let here = cost[y * config.width + x];
            for (nx, ny) in neighbours(x, y, config.width, config.height) {
                let n_index = ny * config.width + nx;
                if cost[n_index] != u32::MAX {
                    continue;
                }
                let occupancy = tx.read(self.cell(nx, ny))?;
                // A cell is passable if it is free, already carries this net,
                // or is the destination endpoint.
                if occupancy != 0 && occupancy != net_id && n_index != dst_index {
                    continue;
                }
                cost[n_index] = here + 1;
                queue.push_back((nx, ny));
            }
        }

        if !found {
            return Ok(false);
        }

        // Backtracking: walk from the destination to the source along
        // decreasing cost, claiming the cells.
        let (mut x, mut y) = route.dst;
        loop {
            tx.write(self.cell(x, y), net_id)?;
            if (x, y) == route.src {
                break;
            }
            let here = cost[y * config.width + x];
            let mut stepped = false;
            for (nx, ny) in neighbours(x, y, config.width, config.height) {
                let neighbour_cost = cost[ny * config.width + nx];
                if neighbour_cost != u32::MAX && neighbour_cost + 1 == here {
                    x = nx;
                    y = ny;
                    stepped = true;
                    break;
                }
            }
            if !stepped {
                // Should be impossible: the expansion found the destination.
                return Ok(false);
            }
        }

        let routed = tx.read(self.routed_counter)?;
        tx.write(self.routed_counter, routed + 1)?;
        Ok(true)
    }

    /// Grid-consistency check: every occupied cell carries a valid net id.
    pub fn grid_is_consistent<A: TmAlgorithm>(&self, ctx: &mut ThreadContext<A>) -> bool {
        let max_net = self.netlist.len() as Word;
        ctx.atomically(|tx| {
            for i in 0..self.config.cells() {
                let value = tx.read(self.grid.offset(i))?;
                if value > max_net {
                    return Ok(false);
                }
            }
            Ok(true)
        })
        .unwrap_or(false)
    }
}

fn neighbours(x: usize, y: usize, width: usize, height: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(4);
    if x > 0 {
        out.push((x - 1, y));
    }
    if x + 1 < width {
        out.push((x + 1, y));
    }
    if y > 0 {
        out.push((x, y - 1));
    }
    if y + 1 < height {
        out.push((x, y + 1));
    }
    out
}

impl<A: TmAlgorithm> Workload<A> for LeeWorkload {
    fn execute(&self, ctx: &mut ThreadContext<A>, rng: &mut FastRng, op_index: u64) {
        let route_index = (op_index as usize) % self.netlist.len();
        let route = self.netlist[route_index];
        let net_id = route_index as Word + 1;
        ctx.atomically(|tx| self.route_one(tx, route, net_id, rng))
            .expect("routing transaction must eventually commit");
    }

    fn name(&self) -> String {
        format!(
            "lee({}x{}, {} routes, R={}%)",
            self.config.width,
            self.config.height,
            self.config.routes,
            self.config.irregular_update_percent
        )
    }

    fn check(&self, ctx: &mut ThreadContext<A>) -> bool {
        self.grid_is_consistent(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_workload, RunLength};
    use stm_core::config::{HeapConfig, LockTableConfig, StmConfig};
    use swisstm::SwissTm;
    use tinystm::TinyStm;

    fn small_config() -> StmConfig {
        StmConfig {
            heap: HeapConfig::with_words(1 << 18),
            lock_table: LockTableConfig::small(),
            clock: stm_core::config::ClockMode::Strict,
        }
    }

    #[test]
    fn boards_scale_with_the_profile() {
        for board_at in [LeeConfig::memory_board_at, LeeConfig::main_board_at] {
            let quick = board_at(SizeProfile::Quick);
            let full = board_at(SizeProfile::Full);
            let huge = board_at(SizeProfile::Huge);
            assert!(quick.cells() < full.cells() && full.cells() < huge.cells());
            assert!(quick.routes < full.routes && full.routes < huge.routes);
            assert_eq!(quick.board, full.board);
        }
        assert_eq!(LeeConfig::memory_board().board, LeeBoard::Memory);
        assert_eq!(LeeConfig::main_board().board, LeeBoard::Main);
        assert_eq!(LeeConfig::tiny().board, LeeBoard::Test);
    }

    #[test]
    fn netlist_is_deterministic_and_in_bounds() {
        let stm = Arc::new(SwissTm::with_config(small_config()));
        let a = LeeWorkload::setup(&stm, LeeConfig::tiny(), 7);
        let b = LeeWorkload::setup(&stm, LeeConfig::tiny(), 7);
        assert_eq!(a.netlist(), b.netlist());
        for route in a.netlist() {
            assert!(route.src.0 < LeeConfig::tiny().width);
            assert!(route.dst.1 < LeeConfig::tiny().height);
            assert_ne!(route.src, route.dst);
        }
    }

    #[test]
    fn routes_are_laid_on_the_grid() {
        let stm = Arc::new(SwissTm::with_config(small_config()));
        let workload = LeeWorkload::setup(&stm, LeeConfig::tiny(), 3);
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            2,
            RunLength::TotalOps(LeeConfig::tiny().routes as u64),
            9,
        );
        assert!(result.check_passed);
        let mut ctx = ThreadContext::register(stm);
        let routed = workload.routed(&mut ctx);
        assert!(routed > 0, "at least one connection must be routable");
        // Every routed connection has its endpoints claimed by its net.
        let all_good = ctx
            .atomically(|tx| {
                for (i, route) in workload.netlist().iter().enumerate() {
                    let net = i as Word + 1;
                    let src = tx.read(workload.cell(route.src.0, route.src.1))?;
                    let dst = tx.read(workload.cell(route.dst.0, route.dst.1))?;
                    // Either the route failed (both untouched by this net) or
                    // both endpoints belong to the net.
                    let laid = src == net && dst == net;
                    let skipped = src != net || dst != net;
                    if !(laid || skipped) {
                        return Ok(false);
                    }
                }
                Ok(true)
            })
            .unwrap();
        assert!(all_good);
    }

    #[test]
    fn irregular_variant_touches_the_hot_word() {
        let stm = Arc::new(TinyStm::with_config(small_config()));
        let config = LeeConfig::tiny().with_irregular_updates(100);
        let workload = LeeWorkload::setup(&stm, config, 5);
        let result = run_workload(
            Arc::clone(&stm),
            Arc::clone(&workload),
            2,
            RunLength::TotalOps(16),
            3,
        );
        assert!(result.check_passed);
        assert!(stm.heap().load(workload.hot_word) > 0);
    }

    #[test]
    fn unroutable_connection_commits_without_writes() {
        let stm = Arc::new(SwissTm::with_config(small_config()));
        let workload = LeeWorkload::setup(&stm, LeeConfig::tiny(), 11);
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        // Wall off the destination so the route cannot be laid.
        let route = workload.netlist()[0];
        ctx.atomically(|tx| {
            for (nx, ny) in neighbours(
                route.dst.0,
                route.dst.1,
                workload.config().width,
                workload.config().height,
            ) {
                tx.write(workload.cell(nx, ny), 999)?;
            }
            Ok(())
        })
        .unwrap();
        let mut rng = FastRng::new(1);
        let routed = ctx
            .atomically(|tx| workload.route_one(tx, route, 1, &mut rng))
            .unwrap();
        assert!(!routed);
        assert_eq!(workload.routed(&mut ctx), 0);
    }
}
