//! Workload size profiles.
//!
//! Every benchmark family states its geometry (dataset dimensions, fixed
//! work amounts) explicitly per profile instead of scaling a single default
//! by a flat percentage. Three profiles exist:
//!
//! * [`SizeProfile::Quick`] — small datasets and short fixed-work runs:
//!   every figure's shape is visible in minutes on a laptop, and CI smoke
//!   tests stay cheap.
//! * [`SizeProfile::Full`] — the paper-style sweep geometry used by
//!   `repro --full`: datasets large enough that transaction length
//!   distributions and conflict patterns match the paper's descriptions,
//!   while a complete `repro all --full` still finishes end-to-end on one
//!   machine.
//! * [`SizeProfile::Huge`] — paper-scale-and-beyond datasets for dedicated
//!   runs of individual figures (`repro --huge`); a full sweep at this size
//!   is an overnight job.

/// How large the workload datasets and fixed work amounts are.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SizeProfile {
    /// Scaled-down smoke geometry (CI, laptops).
    #[default]
    Quick,
    /// The paper-style sweep geometry.
    Full,
    /// Paper-scale-and-beyond datasets for dedicated runs.
    Huge,
}

impl SizeProfile {
    /// Label used in table headers and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            SizeProfile::Quick => "quick",
            SizeProfile::Full => "full",
            SizeProfile::Huge => "huge",
        }
    }

    /// Picks one of three values by profile — the common pattern of the
    /// per-workload size tables.
    pub fn pick<T>(self, quick: T, full: T, huge: T) -> T {
        match self {
            SizeProfile::Quick => quick,
            SizeProfile::Full => full,
            SizeProfile::Huge => huge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_pick_follow_the_profile() {
        assert_eq!(SizeProfile::Quick.label(), "quick");
        assert_eq!(SizeProfile::Full.label(), "full");
        assert_eq!(SizeProfile::Huge.label(), "huge");
        assert_eq!(SizeProfile::default(), SizeProfile::Quick);
        assert_eq!(SizeProfile::Full.pick(1, 2, 3), 2);
        assert_eq!(SizeProfile::Huge.pick("a", "b", "c"), "c");
    }
}
