//! # stm-workloads
//!
//! The benchmark workloads used by the SwissTM paper's evaluation,
//! reimplemented on top of the [`stm_core::tm::TmAlgorithm`] interface so
//! that every workload runs unchanged on SwissTM, TL2, TinySTM and RSTM:
//!
//! * [`rbtree`] — the red-black tree microbenchmark (paper Figure 5, 10),
//! * [`stmbench7`] — the STMBench7-style CAD object graph with its
//!   read-dominated / read-write / write-dominated operation mixes
//!   (Figures 2, 7, 9, 12 and Table 1),
//! * [`lee`] — the Lee-TM circuit router with the paper's "memory" and
//!   "mainboard" style inputs and the *irregular* variant with a hot shared
//!   word (Figures 4 and 8),
//! * [`stamp`] — reimplementations of the ten STAMP workloads (Figures 3
//!   and 11),
//! * [`structures`] — the transactional data structures (red-black tree,
//!   sorted list, hash map, queue) the workloads are built from,
//! * [`driver`] — the multi-threaded measurement driver shared by the
//!   experiment harness and the Criterion benches,
//! * [`placement`] — thread-placement policies (core pinning) the driver
//!   applies to its workers before the measurement window opens,
//! * [`profile`] — the `quick` / `full` / `huge` size profiles every
//!   workload family states its dataset geometry for.
//!
//! All workloads are deterministic given a seed, so experiment tables are
//! reproducible run to run (modulo thread interleaving).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod lee;
pub mod placement;
pub mod profile;
pub mod rbtree;
pub mod stamp;
pub mod stmbench7;
pub mod structures;

pub use driver::{run_workload, run_workload_placed, RunLength, RunResult, Workload};
pub use placement::{PinOutcome, PlacementOutcome, PlacementPolicy};
pub use profile::SizeProfile;
