//! Read, write and allocation logs kept by transaction descriptors.
//!
//! The read and allocation logs are append-only `Vec`s, as in the paper's
//! STMs. Everything *searched on the hot paths* is backed by a hash index
//! so that a single transactional operation never pays a scan proportional
//! to the log size:
//!
//! * [`WriteLog`] answers read-after-write lookups by address in O(1) and
//!   tracks the set of distinct acquired stripes — together with the
//!   version observed at acquisition time — in an O(1) [`StripeSet`]
//!   instead of a linear `Vec::contains` scan.
//! * [`ReadLog`] keeps a *validated watermark*: the prefix of the log that
//!   was confirmed consistent by the last successful snapshot extension.
//!   Extension checks the fresh suffix first (the entries that can actually
//!   carry a new conflict) before re-confirming the prefix, so a doomed
//!   snapshot is detected without scanning the whole log.
//!
//! This keeps the per-operation bookkeeping of the reproduced algorithms
//! constant-time, which is the regime their published cost models assume
//! (validation linear in the read-set size with O(1) per entry, not
//! O(read-set × write-set)).

use crate::hash::{fast_map_with_capacity, FastHashMap};
use crate::word::{Addr, Word};

/// One entry of a read log: which lock-table entry was read and the version
/// observed at the time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadEntry {
    /// Index of the lock-table entry covering the location.
    pub lock_index: usize,
    /// Version number observed when the location was first read.
    pub version: u64,
}

/// Append-only read log with a validated watermark.
///
/// The watermark marks the prefix of the log that was confirmed consistent
/// by the last successful validation ([`ReadLog::mark_validated`]).
/// Algorithms use it to check the *unvalidated suffix first* during
/// snapshot extension; the prefix must still be re-confirmed before the
/// snapshot timestamp advances (skipping it would violate opacity: a stripe
/// validated at the old timestamp may have been overwritten since), but a
/// conflict on the fresh entries is now detected without touching the rest
/// of the log.
#[derive(Debug, Default)]
pub struct ReadLog {
    entries: Vec<ReadEntry>,
    validated: usize,
}

impl ReadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ReadLog {
            entries: Vec::with_capacity(64),
            validated: 0,
        }
    }

    /// Appends an entry.
    #[inline]
    pub fn push(&mut self, lock_index: usize, version: u64) {
        self.entries.push(ReadEntry {
            lock_index,
            version,
        });
    }

    /// Number of logged reads.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no reads were logged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The logged reads in program order.
    #[inline]
    pub fn entries(&self) -> &[ReadEntry] {
        &self.entries
    }

    /// Iterates over the logged reads in program order.
    pub fn iter(&self) -> impl Iterator<Item = &ReadEntry> {
        self.entries.iter()
    }

    /// Length of the prefix confirmed by the last successful validation
    /// (diagnostic accessor; the watermark itself is advanced only by
    /// [`ReadLog::extend_with`]).
    #[inline]
    pub fn validated_len(&self) -> usize {
        self.validated
    }

    /// Runs a snapshot extension over the log: `entries_valid` is called on
    /// the suffix appended since the last successful extension first (the
    /// fail-fast path — fresh entries are the ones that can carry a new
    /// conflict), then on the already-validated prefix. Only if both passes
    /// succeed is the watermark advanced.
    ///
    /// The prefix re-check is mandatory for opacity, not an optimisation
    /// artifact: an entry validated at an older timestamp may cover a
    /// stripe that was overwritten since, and only the per-entry version
    /// check can detect that. Implementing the ordering here keeps the
    /// invariant in one place for every STM that extends snapshots.
    #[inline]
    pub fn extend_with(&mut self, mut entries_valid: impl FnMut(&[ReadEntry]) -> bool) -> bool {
        if !entries_valid(&self.entries[self.validated..]) {
            return false;
        }
        if !entries_valid(&self.entries[..self.validated]) {
            return false;
        }
        self.validated = self.entries.len();
        true
    }

    /// Clears the log for the next transaction attempt.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.validated = 0;
    }
}

/// One record of a [`StripeSet`]: a lock-table index and the version the
/// stripe carried when it was recorded.
///
/// Algorithms use the version to restore a stripe's lock word when an
/// attempt aborts and to recognise, during validation, reads that observed
/// the stripe *before* this transaction acquired it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeRecord {
    /// Index of the lock-table entry.
    pub lock_index: usize,
    /// Version observed when the stripe was recorded.
    pub version: u64,
}

/// An insertion-ordered set of lock-table stripes with O(1) membership and
/// version lookup.
///
/// This replaces the `Vec<(usize, u64)>` + linear-scan pattern the seed
/// used for acquired-stripe tracking: `insert`, `contains` and
/// `version_of` are all amortised O(1), while iteration still yields the
/// records in acquisition order (commit and rollback rely on that to
/// release each lock exactly once).
#[derive(Debug, Default)]
pub struct StripeSet {
    records: Vec<StripeRecord>,
    index: FastHashMap<usize, usize>,
}

impl StripeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StripeSet {
            records: Vec::with_capacity(16),
            index: fast_map_with_capacity(16),
        }
    }

    /// Inserts `lock_index` with the given `version`. Returns `true` if the
    /// stripe was not yet recorded; an existing record keeps its original
    /// version (the first observation is the one abort paths must restore).
    pub fn insert(&mut self, lock_index: usize, version: u64) -> bool {
        match self.index.entry(lock_index) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.records.len());
                self.records.push(StripeRecord {
                    lock_index,
                    version,
                });
                true
            }
        }
    }

    /// Returns `true` if `lock_index` is in the set.
    #[inline]
    pub fn contains(&self, lock_index: usize) -> bool {
        self.index.contains_key(&lock_index)
    }

    /// The version recorded for `lock_index`, if present.
    #[inline]
    pub fn version_of(&self, lock_index: usize) -> Option<u64> {
        self.index
            .get(&lock_index)
            .map(|&pos| self.records[pos].version)
    }

    /// The records in insertion order.
    #[inline]
    pub fn records(&self) -> &[StripeRecord] {
        &self.records
    }

    /// Iterates over the records in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &StripeRecord> {
        self.records.iter()
    }

    /// Number of recorded stripes.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no stripe is recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Clears the set for the next transaction attempt.
    pub fn clear(&mut self) {
        self.records.clear();
        self.index.clear();
    }
}

/// One entry of a write (redo) log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteEntry {
    /// The written address.
    pub addr: Addr,
    /// The value to install at commit time.
    pub value: Word,
    /// Index of the lock-table entry covering `addr`.
    pub lock_index: usize,
    /// Version of the location when the stripe was acquired (used by
    /// algorithms that restore versions on rollback).
    pub version: u64,
}

/// A redo log with O(1) read-after-write lookups by address.
///
/// Several written addresses may share a lock-table stripe; the log also
/// tracks the set of *distinct* stripes acquired — with the version each
/// stripe carried at acquisition time — so that commit and rollback release
/// each lock exactly once and validation can recognise self-owned stripes
/// in O(1).
#[derive(Debug, Default)]
pub struct WriteLog {
    entries: Vec<WriteEntry>,
    by_addr: FastHashMap<Addr, usize>,
    stripes: StripeSet,
}

impl WriteLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        WriteLog {
            entries: Vec::with_capacity(32),
            by_addr: fast_map_with_capacity(32),
            stripes: StripeSet::new(),
        }
    }

    /// Records a write to `addr`. If the address was already written the
    /// existing entry's value is updated (no new entry is appended) and
    /// `false` is returned; otherwise a new entry is appended and `true` is
    /// returned.
    pub fn record(&mut self, addr: Addr, value: Word, lock_index: usize, version: u64) -> bool {
        if let Some(&pos) = self.by_addr.get(&addr) {
            self.entries[pos].value = value;
            false
        } else {
            self.by_addr.insert(addr, self.entries.len());
            self.entries.push(WriteEntry {
                addr,
                value,
                lock_index,
                version,
            });
            true
        }
    }

    /// Marks `lock_index` as a stripe acquired by this transaction,
    /// remembering the version it carried at acquisition time. Returns
    /// `true` if the stripe was not yet recorded; re-recording keeps the
    /// original version.
    ///
    /// Lazy STMs that never acquire at encounter time (TL2, RSTM's lazy
    /// variant) record stripes with a sentinel version of `0` purely to
    /// track the distinct write-set stripes; for them the real restore
    /// versions live elsewhere (e.g. TL2's `commit_locked`), and
    /// [`WriteLog::stripe_version`] must not be used for validation.
    #[inline]
    pub fn record_stripe(&mut self, lock_index: usize, version: u64) -> bool {
        self.stripes.insert(lock_index, version)
    }

    /// Fills `scratch` with the distinct recorded stripe indices in
    /// ascending order — the global acquisition order lazy STMs use at
    /// commit time for deadlock avoidance. Reusing a per-descriptor
    /// scratch buffer keeps the commit path allocation-free.
    pub fn sorted_stripe_indices(&self, scratch: &mut Vec<usize>) {
        scratch.clear();
        scratch.extend(self.stripes.iter().map(|s| s.lock_index));
        scratch.sort_unstable();
    }

    /// The distinct lock-table stripes acquired so far, in acquisition
    /// order.
    #[inline]
    pub fn stripes(&self) -> &[StripeRecord] {
        self.stripes.records()
    }

    /// Number of distinct stripes recorded so far.
    #[inline]
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Returns `true` if this transaction already recorded `lock_index`.
    #[inline]
    pub fn owns_stripe(&self, lock_index: usize) -> bool {
        self.stripes.contains(lock_index)
    }

    /// The version `lock_index` carried when it was recorded, if this
    /// transaction recorded it.
    #[inline]
    pub fn stripe_version(&self, lock_index: usize) -> Option<u64> {
        self.stripes.version_of(lock_index)
    }

    /// Looks up the latest value written to `addr`, if any.
    #[inline]
    pub fn lookup(&self, addr: Addr) -> Option<Word> {
        self.by_addr.get(&addr).map(|&pos| self.entries[pos].value)
    }

    /// Number of distinct written addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the write entries in first-write order.
    pub fn iter(&self) -> impl Iterator<Item = &WriteEntry> {
        self.entries.iter()
    }

    /// Clears the log for the next transaction attempt.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_addr.clear();
        self.stripes.clear();
    }
}

/// Log of transactional allocations and frees.
///
/// * Allocations performed inside an aborted transaction are returned to
///   the heap.
/// * Frees requested inside a transaction are deferred until commit (so
///   that concurrent readers never observe recycled memory mid-transaction).
#[derive(Debug, Default)]
pub struct AllocLog {
    allocated: Vec<(Addr, usize)>,
    freed: Vec<(Addr, usize)>,
}

impl AllocLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AllocLog::default()
    }

    /// Records a block allocated by the running transaction.
    pub fn record_alloc(&mut self, addr: Addr, words: usize) {
        self.allocated.push((addr, words));
    }

    /// Records a block the running transaction wants to free at commit.
    pub fn record_free(&mut self, addr: Addr, words: usize) {
        self.freed.push((addr, words));
    }

    /// Blocks allocated by the running transaction.
    pub fn allocated(&self) -> &[(Addr, usize)] {
        &self.allocated
    }

    /// Blocks to free when the transaction commits.
    pub fn freed(&self) -> &[(Addr, usize)] {
        &self.freed
    }

    /// Returns `true` if the log records no allocator activity.
    pub fn is_empty(&self) -> bool {
        self.allocated.is_empty() && self.freed.is_empty()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.allocated.clear();
        self.freed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::FastRng;

    #[test]
    fn read_log_appends_in_order() {
        let mut log = ReadLog::new();
        assert!(log.is_empty());
        log.push(3, 10);
        log.push(7, 11);
        assert_eq!(log.len(), 2);
        let entries: Vec<_> = log.iter().copied().collect();
        assert_eq!(
            entries[0],
            ReadEntry {
                lock_index: 3,
                version: 10
            }
        );
        assert_eq!(
            entries[1],
            ReadEntry {
                lock_index: 7,
                version: 11
            }
        );
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn read_log_watermark_tracks_validated_prefix() {
        let mut log = ReadLog::new();
        log.push(1, 5);
        log.push(2, 5);
        assert_eq!(log.validated_len(), 0);
        assert!(log.extend_with(|_| true));
        assert_eq!(log.validated_len(), 2);
        log.push(3, 6);
        assert_eq!(log.validated_len(), 2);
        log.clear();
        assert_eq!(log.validated_len(), 0);
    }

    #[test]
    fn extend_with_checks_suffix_first_and_then_prefix() {
        let mut log = ReadLog::new();
        log.push(1, 5);
        log.push(2, 5);
        assert!(log.extend_with(|_| true));
        log.push(3, 6);

        // Record the slices the extension hands to the checker.
        let mut seen: Vec<Vec<usize>> = Vec::new();
        assert!(log.extend_with(|entries| {
            seen.push(entries.iter().map(|e| e.lock_index).collect());
            true
        }));
        assert_eq!(
            seen,
            vec![vec![3], vec![1, 2]],
            "suffix must be checked first"
        );
        assert_eq!(log.validated_len(), 3, "success advances the watermark");

        // A failing suffix check must not advance the watermark and must not
        // touch the prefix.
        log.push(4, 9);
        let mut calls = 0;
        assert!(!log.extend_with(|_| {
            calls += 1;
            false
        }));
        assert_eq!(calls, 1, "prefix must not be checked after a failed suffix");
        assert_eq!(log.validated_len(), 3);
    }

    #[test]
    fn stripe_set_keeps_first_version_and_insertion_order() {
        let mut set = StripeSet::new();
        assert!(set.insert(4, 10));
        assert!(!set.insert(4, 99));
        assert!(set.insert(9, 11));
        assert_eq!(set.version_of(4), Some(10));
        assert_eq!(set.version_of(9), Some(11));
        assert_eq!(set.version_of(2), None);
        assert!(set.contains(9));
        assert!(!set.contains(2));
        let order: Vec<usize> = set.iter().map(|r| r.lock_index).collect();
        assert_eq!(order, vec![4, 9]);
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(4));
    }

    #[test]
    fn write_log_deduplicates_addresses() {
        let mut log = WriteLog::new();
        assert!(log.record(Addr::new(5), 1, 0, 0));
        assert!(!log.record(Addr::new(5), 2, 0, 0));
        assert_eq!(log.len(), 1);
        assert_eq!(log.lookup(Addr::new(5)), Some(2));
        assert_eq!(log.lookup(Addr::new(6)), None);
    }

    #[test]
    fn write_log_tracks_distinct_stripes() {
        let mut log = WriteLog::new();
        assert!(log.record_stripe(4, 7));
        assert!(!log.record_stripe(4, 8));
        assert!(log.record_stripe(9, 3));
        let stripes: Vec<(usize, u64)> = log
            .stripes()
            .iter()
            .map(|r| (r.lock_index, r.version))
            .collect();
        assert_eq!(stripes, vec![(4, 7), (9, 3)]);
        assert_eq!(log.stripe_count(), 2);
        assert!(log.owns_stripe(9));
        assert!(!log.owns_stripe(2));
        assert_eq!(log.stripe_version(4), Some(7));
        assert_eq!(log.stripe_version(2), None);
        let mut order = vec![999];
        log.sorted_stripe_indices(&mut order);
        assert_eq!(order, vec![4, 9]);
    }

    #[test]
    fn write_log_clear_resets_everything() {
        let mut log = WriteLog::new();
        log.record(Addr::new(1), 1, 0, 0);
        log.record_stripe(0, 5);
        log.clear();
        assert!(log.is_empty());
        assert!(log.stripes().is_empty());
        assert_eq!(log.stripe_count(), 0);
        assert!(!log.owns_stripe(0));
        assert_eq!(log.lookup(Addr::new(1)), None);
    }

    #[test]
    fn alloc_log_tracks_both_directions() {
        let mut log = AllocLog::new();
        assert!(log.is_empty());
        log.record_alloc(Addr::new(10), 4);
        log.record_free(Addr::new(20), 2);
        assert_eq!(log.allocated(), &[(Addr::new(10), 4)]);
        assert_eq!(log.freed(), &[(Addr::new(20), 2)]);
        log.clear();
        assert!(log.is_empty());
    }

    /// Vec-scan reference model of [`StripeSet`]: the exact structure the
    /// seed used for acquired-stripe tracking.
    #[derive(Default)]
    struct ModelStripes(Vec<(usize, u64)>);

    impl ModelStripes {
        fn insert(&mut self, lock_index: usize, version: u64) -> bool {
            if self.0.iter().any(|&(idx, _)| idx == lock_index) {
                false
            } else {
                self.0.push((lock_index, version));
                true
            }
        }

        fn contains(&self, lock_index: usize) -> bool {
            self.0.iter().any(|&(idx, _)| idx == lock_index)
        }

        fn version_of(&self, lock_index: usize) -> Option<u64> {
            self.0
                .iter()
                .find(|&&(idx, _)| idx == lock_index)
                .map(|&(_, v)| v)
        }
    }

    #[test]
    fn stripe_set_matches_vec_scan_model() {
        // Property-style test with the workspace's seeded FastRng (the
        // `stm-workloads` pattern): random insert/lookup/clear sequences
        // must behave exactly like the old linear-scan structure.
        let mut rng = FastRng::new(0xD06F00D);
        let mut set = StripeSet::new();
        let mut model = ModelStripes::default();
        for step in 0..20_000u64 {
            let lock_index = rng.next_below(64) as usize;
            match rng.next_below(100) {
                0..=49 => {
                    let version = rng.next_below(1 << 20);
                    assert_eq!(
                        set.insert(lock_index, version),
                        model.insert(lock_index, version),
                        "insert diverged at step {step}"
                    );
                }
                50..=74 => {
                    assert_eq!(
                        set.contains(lock_index),
                        model.contains(lock_index),
                        "contains diverged at step {step}"
                    );
                }
                75..=97 => {
                    assert_eq!(
                        set.version_of(lock_index),
                        model.version_of(lock_index),
                        "version_of diverged at step {step}"
                    );
                }
                _ => {
                    set.clear();
                    model.0.clear();
                }
            }
            assert_eq!(set.len(), model.0.len(), "len diverged at step {step}");
            let order: Vec<(usize, u64)> = set.iter().map(|r| (r.lock_index, r.version)).collect();
            assert_eq!(order, model.0, "iteration order diverged at step {step}");
        }
    }

    /// Vec-backed reference model of the [`WriteLog`] address map plus the
    /// old `distinct_stripes: Vec<usize>` stripe tracking.
    #[derive(Default)]
    struct ModelWriteLog {
        entries: Vec<(Addr, Word)>,
        stripes: Vec<(usize, u64)>,
    }

    impl ModelWriteLog {
        fn record(&mut self, addr: Addr, value: Word) -> bool {
            if let Some(entry) = self.entries.iter_mut().find(|(a, _)| *a == addr) {
                entry.1 = value;
                false
            } else {
                self.entries.push((addr, value));
                true
            }
        }

        fn lookup(&self, addr: Addr) -> Option<Word> {
            self.entries
                .iter()
                .find(|&&(a, _)| a == addr)
                .map(|&(_, v)| v)
        }
    }

    #[test]
    fn write_log_matches_vec_scan_model() {
        let mut rng = FastRng::new(0xBEEFCAFE);
        let mut log = WriteLog::new();
        let mut model = ModelWriteLog::default();
        for step in 0..20_000u64 {
            match rng.next_below(100) {
                0..=39 => {
                    let addr = Addr::new(1 + rng.next_below(96) as usize);
                    let value = rng.next_below(1 << 30);
                    let lock_index = addr.index() / 2;
                    assert_eq!(
                        log.record(addr, value, lock_index, 0),
                        model.record(addr, value),
                        "record diverged at step {step}"
                    );
                }
                40..=59 => {
                    let addr = Addr::new(1 + rng.next_below(96) as usize);
                    assert_eq!(
                        log.lookup(addr),
                        model.lookup(addr),
                        "lookup diverged at step {step}"
                    );
                }
                60..=79 => {
                    let lock_index = rng.next_below(48) as usize;
                    let version = rng.next_below(1 << 20);
                    let fresh = !model.stripes.iter().any(|&(idx, _)| idx == lock_index);
                    if fresh {
                        model.stripes.push((lock_index, version));
                    }
                    assert_eq!(
                        log.record_stripe(lock_index, version),
                        fresh,
                        "record_stripe diverged at step {step}"
                    );
                }
                80..=97 => {
                    let lock_index = rng.next_below(48) as usize;
                    let expected = model
                        .stripes
                        .iter()
                        .find(|&&(idx, _)| idx == lock_index)
                        .map(|&(_, v)| v);
                    assert_eq!(log.stripe_version(lock_index), expected);
                    assert_eq!(log.owns_stripe(lock_index), expected.is_some());
                }
                _ => {
                    log.clear();
                    model.entries.clear();
                    model.stripes.clear();
                }
            }
            assert_eq!(log.len(), model.entries.len());
            let stripes: Vec<(usize, u64)> = log
                .stripes()
                .iter()
                .map(|r| (r.lock_index, r.version))
                .collect();
            assert_eq!(
                stripes, model.stripes,
                "stripe order diverged at step {step}"
            );
        }
    }
}
