//! Read, write and allocation logs kept by transaction descriptors.
//!
//! These containers are deliberately simple `Vec`-backed logs: the paper's
//! STMs all use append-only logs with an auxiliary lookup for
//! read-after-write, and the cost model of the reproduced algorithms
//! (validation time proportional to read-set size, write-set search on
//! read-after-write) follows from the same structure.

use std::collections::HashMap;

use crate::word::{Addr, Word};

/// One entry of a read log: which lock-table entry was read and the version
/// observed at the time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReadEntry {
    /// Index of the lock-table entry covering the location.
    pub lock_index: usize,
    /// Version number observed when the location was first read.
    pub version: u64,
}

/// Append-only read log.
#[derive(Debug, Default)]
pub struct ReadLog {
    entries: Vec<ReadEntry>,
}

impl ReadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ReadLog {
            entries: Vec::with_capacity(64),
        }
    }

    /// Appends an entry.
    #[inline]
    pub fn push(&mut self, lock_index: usize, version: u64) {
        self.entries.push(ReadEntry {
            lock_index,
            version,
        });
    }

    /// Number of logged reads.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no reads were logged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the logged reads in program order.
    pub fn iter(&self) -> impl Iterator<Item = &ReadEntry> {
        self.entries.iter()
    }

    /// Clears the log for the next transaction attempt.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// One entry of a write (redo) log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteEntry {
    /// The written address.
    pub addr: Addr,
    /// The value to install at commit time.
    pub value: Word,
    /// Index of the lock-table entry covering `addr`.
    pub lock_index: usize,
    /// Version of the location when the stripe was acquired (used by
    /// algorithms that restore versions on rollback).
    pub version: u64,
}

/// A redo log with O(1) read-after-write lookups by address.
///
/// Several written addresses may share a lock-table stripe; the log also
/// tracks the set of *distinct* stripes acquired so that commit and
/// rollback release each lock exactly once.
#[derive(Debug, Default)]
pub struct WriteLog {
    entries: Vec<WriteEntry>,
    by_addr: HashMap<Addr, usize>,
    distinct_stripes: Vec<usize>,
}

impl WriteLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        WriteLog {
            entries: Vec::with_capacity(32),
            by_addr: HashMap::with_capacity(32),
            distinct_stripes: Vec::with_capacity(32),
        }
    }

    /// Records a write to `addr`. If the address was already written the
    /// existing entry's value is updated (no new entry is appended) and
    /// `false` is returned; otherwise a new entry is appended and `true` is
    /// returned.
    pub fn record(&mut self, addr: Addr, value: Word, lock_index: usize, version: u64) -> bool {
        if let Some(&pos) = self.by_addr.get(&addr) {
            self.entries[pos].value = value;
            false
        } else {
            self.by_addr.insert(addr, self.entries.len());
            self.entries.push(WriteEntry {
                addr,
                value,
                lock_index,
                version,
            });
            true
        }
    }

    /// Marks `lock_index` as a stripe acquired by this transaction. Returns
    /// `true` if the stripe was not yet recorded.
    pub fn record_stripe(&mut self, lock_index: usize) -> bool {
        if self.distinct_stripes.contains(&lock_index) {
            false
        } else {
            self.distinct_stripes.push(lock_index);
            true
        }
    }

    /// The distinct lock-table stripes acquired so far, in acquisition
    /// order.
    pub fn stripes(&self) -> &[usize] {
        &self.distinct_stripes
    }

    /// Returns `true` if this transaction already acquired `lock_index`.
    #[inline]
    pub fn owns_stripe(&self, lock_index: usize) -> bool {
        self.distinct_stripes.contains(&lock_index)
    }

    /// Looks up the latest value written to `addr`, if any.
    #[inline]
    pub fn lookup(&self, addr: Addr) -> Option<Word> {
        self.by_addr.get(&addr).map(|&pos| self.entries[pos].value)
    }

    /// Number of distinct written addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the write entries in first-write order.
    pub fn iter(&self) -> impl Iterator<Item = &WriteEntry> {
        self.entries.iter()
    }

    /// Clears the log for the next transaction attempt.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_addr.clear();
        self.distinct_stripes.clear();
    }
}

/// Log of transactional allocations and frees.
///
/// * Allocations performed inside an aborted transaction are returned to
///   the heap.
/// * Frees requested inside a transaction are deferred until commit (so
///   that concurrent readers never observe recycled memory mid-transaction).
#[derive(Debug, Default)]
pub struct AllocLog {
    allocated: Vec<(Addr, usize)>,
    freed: Vec<(Addr, usize)>,
}

impl AllocLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AllocLog::default()
    }

    /// Records a block allocated by the running transaction.
    pub fn record_alloc(&mut self, addr: Addr, words: usize) {
        self.allocated.push((addr, words));
    }

    /// Records a block the running transaction wants to free at commit.
    pub fn record_free(&mut self, addr: Addr, words: usize) {
        self.freed.push((addr, words));
    }

    /// Blocks allocated by the running transaction.
    pub fn allocated(&self) -> &[(Addr, usize)] {
        &self.allocated
    }

    /// Blocks to free when the transaction commits.
    pub fn freed(&self) -> &[(Addr, usize)] {
        &self.freed
    }

    /// Returns `true` if the log records no allocator activity.
    pub fn is_empty(&self) -> bool {
        self.allocated.is_empty() && self.freed.is_empty()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.allocated.clear();
        self.freed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_log_appends_in_order() {
        let mut log = ReadLog::new();
        assert!(log.is_empty());
        log.push(3, 10);
        log.push(7, 11);
        assert_eq!(log.len(), 2);
        let entries: Vec<_> = log.iter().copied().collect();
        assert_eq!(
            entries[0],
            ReadEntry {
                lock_index: 3,
                version: 10
            }
        );
        assert_eq!(
            entries[1],
            ReadEntry {
                lock_index: 7,
                version: 11
            }
        );
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn write_log_deduplicates_addresses() {
        let mut log = WriteLog::new();
        assert!(log.record(Addr::new(5), 1, 0, 0));
        assert!(!log.record(Addr::new(5), 2, 0, 0));
        assert_eq!(log.len(), 1);
        assert_eq!(log.lookup(Addr::new(5)), Some(2));
        assert_eq!(log.lookup(Addr::new(6)), None);
    }

    #[test]
    fn write_log_tracks_distinct_stripes() {
        let mut log = WriteLog::new();
        assert!(log.record_stripe(4));
        assert!(!log.record_stripe(4));
        assert!(log.record_stripe(9));
        assert_eq!(log.stripes(), &[4, 9]);
        assert!(log.owns_stripe(9));
        assert!(!log.owns_stripe(2));
    }

    #[test]
    fn write_log_clear_resets_everything() {
        let mut log = WriteLog::new();
        log.record(Addr::new(1), 1, 0, 0);
        log.record_stripe(0);
        log.clear();
        assert!(log.is_empty());
        assert!(log.stripes().is_empty());
        assert_eq!(log.lookup(Addr::new(1)), None);
    }

    #[test]
    fn alloc_log_tracks_both_directions() {
        let mut log = AllocLog::new();
        assert!(log.is_empty());
        log.record_alloc(Addr::new(10), 4);
        log.record_free(Addr::new(20), 2);
        assert_eq!(log.allocated(), &[(Addr::new(10), 4)]);
        assert_eq!(log.freed(), &[(Addr::new(20), 2)]);
        log.clear();
        assert!(log.is_empty());
    }
}
