//! Fundamental value and address types of the transactional heap.
//!
//! All STMs in this workspace are *word-based*: the unit of transactional
//! access is a single 64-bit [`Word`] identified by an [`Addr`]. Addresses
//! index into a [`crate::heap::TmHeap`]; they are the reproduction's
//! substitute for the raw `void*` addresses used by the paper's C/C++
//! implementation (see DESIGN.md §2).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// The unit of transactional storage: one 64-bit machine word.
pub type Word = u64;

/// Index of a word in the transactional heap.
///
/// `Addr` is a plain newtype around `usize`; arithmetic helpers make it easy
/// to lay out records ("objects") as consecutive words:
///
/// ```
/// use stm_core::word::Addr;
/// let base = Addr::new(100);
/// assert_eq!(base.offset(3), Addr::new(103));
/// assert_eq!((base + 3) - base, 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(usize);

impl Addr {
    /// The null address. Word 0 of the heap is reserved so that `Addr::NULL`
    /// never aliases live data; data structures may use it as a sentinel
    /// (e.g. a red-black tree's `nil` pointer).
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw heap index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        Addr(index)
    }

    /// Returns the raw heap index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns the address `words` words past `self`.
    #[inline]
    pub const fn offset(self, words: usize) -> Self {
        Addr(self.0 + words)
    }

    /// Returns `true` if this is [`Addr::NULL`].
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Encodes the address as a [`Word`] so that heap cells can store
    /// "pointers" to other heap cells.
    #[inline]
    pub const fn to_word(self) -> Word {
        self.0 as Word
    }

    /// Decodes an address previously encoded with [`Addr::to_word`].
    #[inline]
    pub const fn from_word(word: Word) -> Self {
        Addr(word as usize)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<usize> for Addr {
    fn from(index: usize) -> Self {
        Addr(index)
    }
}

impl From<Addr> for usize {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl Add<usize> for Addr {
    type Output = Addr;

    fn add(self, rhs: usize) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<usize> for Addr {
    fn add_assign(&mut self, rhs: usize) {
        self.0 += rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = usize;

    fn sub(self, rhs: Addr) -> usize {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_index_zero() {
        assert!(Addr::NULL.is_null());
        assert_eq!(Addr::NULL.index(), 0);
        assert!(!Addr::new(1).is_null());
    }

    #[test]
    fn offset_and_arithmetic() {
        let a = Addr::new(10);
        assert_eq!(a.offset(5).index(), 15);
        assert_eq!(a + 5, Addr::new(15));
        assert_eq!(Addr::new(15) - a, 5);
        let mut b = a;
        b += 7;
        assert_eq!(b.index(), 17);
    }

    #[test]
    fn word_round_trip() {
        let a = Addr::new(123_456);
        assert_eq!(Addr::from_word(a.to_word()), a);
    }

    #[test]
    fn conversions_and_formatting() {
        let a: Addr = 42usize.into();
        let raw: usize = a.into();
        assert_eq!(raw, 42);
        assert_eq!(format!("{a}"), "@42");
        assert_eq!(format!("{a:?}"), "Addr(42)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Addr::new(1) < Addr::new(2));
        assert_eq!(Addr::new(7), Addr::new(7));
    }
}
