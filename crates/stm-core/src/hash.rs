//! A cheap multiplicative hasher for the descriptor-side log indexes.
//!
//! The write-log address map and the stripe sets are keyed by small
//! integers (heap word indexes and lock-table indexes) and sit on the
//! hottest STM paths: every transactional write performs at least one map
//! insertion and every read-after-write a lookup. The standard library's
//! default SipHash is a keyed cryptographic hash built to resist
//! collision-flooding from untrusted input — a property these maps do not
//! need (the keys come from the transaction itself) — and its per-operation
//! cost is visible in the `stm_primitives` microbenchmarks.
//!
//! [`FxStyleHasher`] is the Firefox/rustc "Fx" construction: fold each word
//! of input into the state with a rotate, xor and multiply by a
//! golden-ratio-derived odd constant. It is not DoS-resistant and must not
//! be used for attacker-controlled keys.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the 64-bit golden ratio (same constant as SplitMix64).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fast, non-cryptographic hasher for integer-keyed hot-path maps.
#[derive(Debug, Default)]
pub struct FxStyleHasher {
    hash: u64,
}

impl FxStyleHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxStyleHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` using [`FxStyleHasher`]; for hot-path maps with
/// transaction-internal integer keys only.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxStyleHasher>>;

/// Creates a [`FastHashMap`] with room for `capacity` entries.
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_integer_keys() {
        let mut map: FastHashMap<usize, u64> = fast_map_with_capacity(8);
        for i in 0..1000usize {
            map.insert(i, (i * 2) as u64);
        }
        for i in 0..1000usize {
            assert_eq!(map.get(&i), Some(&((i * 2) as u64)));
        }
        assert_eq!(map.get(&1000), None);
    }

    #[test]
    fn nearby_keys_spread_across_buckets() {
        // Dense small integers (the common lock-index pattern) must not all
        // collide in the low bits the HashMap uses for bucketing.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = FxStyleHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 63);
        }
        assert!(
            low_bits.len() > 32,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_fallback_is_consistent() {
        let mut a = FxStyleHasher::default();
        let mut b = FxStyleHasher::default();
        a.write(b"swisstm-stripe");
        b.write(b"swisstm-stripe");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxStyleHasher::default();
        c.write(b"swisstm-stripes");
        assert_ne!(a.finish(), c.finish());
    }
}
