//! The single gateway to atomics for every STM crate in this workspace.
//!
//! All of `stm-core`, `swisstm`, `tl2`, `tinystm` and `rstm` import their
//! atomic types, fences and spin hints from here instead of
//! `std::sync::atomic` (the `lint_atomics` test at the workspace root
//! enforces this, together with a `// sync:` justification comment on
//! every `Ordering::` site).
//!
//! In a normal build the module is a zero-cost re-export of std. Built
//! with `RUSTFLAGS="--cfg stm_model"` it swaps in the instrumented atomics
//! from the in-workspace [`stm_model`] bounded model checker, so the
//! scenarios in `stm-model-tests` can exhaustively explore thread
//! interleavings and stale-read choices of the *production* ordering
//! annotations — the orderings are not mocked, the same `Ordering` values
//! flow into the model.
//!
//! The model build is selected by `--cfg` rather than a cargo feature on
//! purpose: feature unification across a workspace could silently turn a
//! production benchmark build into an instrumented one, whereas a
//! `RUSTFLAGS` cfg only ever applies to the dedicated model-test
//! invocation.

#[cfg(not(stm_model))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(stm_model)]
pub use std::sync::atomic::Ordering;

#[cfg(stm_model)]
pub use stm_model::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};

/// Spin-loop hint.
///
/// Production builds emit [`std::hint::spin_loop`]. Under the model the
/// calling thread parks until another thread stores, which both prunes the
/// (infinite) re-run-the-spin schedules and turns spin livelocks into
/// detected deadlocks; see `stm_model::spin_loop`.
#[inline]
pub fn spin_loop() {
    #[cfg(not(stm_model))]
    std::hint::spin_loop();
    #[cfg(stm_model)]
    stm_model::spin_loop();
}
