//! Contention telemetry: allocation-free per-thread counters for the
//! contended paths.
//!
//! [`crate::stats::TxStats`] counts commits and aborts, but throughput alone
//! does not explain the paper's contention-manager comparisons (Figures
//! 9/10/12, Table 1): the interesting question is *where contended
//! transactions spend their time* — waiting in CM wait loops, spinning in
//! post-abort back-off, or being aborted remotely. This module provides the
//! counters for exactly that breakdown:
//!
//! * [`ContentionTelemetry`] — the live counters, embedded in every
//!   [`TxShared`] record. They are plain relaxed atomics written only by the
//!   owning thread (contention-manager hooks receive `&TxShared`, so the
//!   counters must be interior-mutable), and they are drained into the
//!   thread's [`crate::stats::TxStats`] when the driver collects statistics.
//!   Nothing on the uncontended fast path touches them.
//! * [`ContentionCounters`] — the drained, plain-integer snapshot carried
//!   inside `TxStats` and merged (saturating) across threads.
//! * [`ConflictSite`] — which STM code path detected the conflict.
//! * [`WaitTimer`] — a drop guard the STMs use to attribute wall-clock time
//!   to their CM wait loops, created lazily on the first contended
//!   iteration so conflict-free operations pay nothing.
//!
//! # Why every counter here is `Relaxed`
//!
//! The repo-wide atomics discipline (see `stm_core::sync` and the
//! `lint_atomics` test) requires each `Ordering::` site to justify itself.
//! Telemetry is the blanket exemption: these counters are *pure
//! statistics*. They are written by the owning thread, drained by the same
//! thread at collection points, and no control-flow decision anywhere reads
//! them — so they carry no happens-before claims and nothing downstream
//! depends on their ordering relative to STM state. `Relaxed` RMWs still
//! guarantee the counts themselves are never lost; the only thing given up
//! is cross-location ordering, which a statistic does not need. The same
//! rule covers the heuristic CM counters on `TxShared` (priority,
//! successive aborts, wait counts): stale values change *which side backs
//! off*, never whether the STM is correct.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::clock::TxShared;
use crate::cm::{ContentionManager, Resolution};
use crate::sync::{AtomicU64, Ordering};

/// Number of distinct [`ConflictSite`] values.
pub const SITE_COUNT: usize = 4;

/// Number of distinct [`Resolution`] values.
pub const RESOLUTION_COUNT: usize = 3;

/// Which STM code path detected a conflict and consulted the contention
/// manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictSite {
    /// Encounter-time write/write conflict: the transaction tried to acquire
    /// a stripe's write lock during [`crate::tm::TmAlgorithm::write`]
    /// (SwissTM, TinySTM, eager RSTM).
    Write,
    /// Commit-time write/write conflict: the transaction tried to lock its
    /// write set during commit (TL2, lazy RSTM).
    Commit,
    /// Eager read/write conflict: a read found the stripe owned by an active
    /// writer and "opened" it through the contention manager (RSTM).
    Read,
    /// Writer vs. visible readers: a newly acquired object still had
    /// registered visible readers (RSTM with visible reads).
    VisibleReader,
}

impl ConflictSite {
    /// All sites, in index order.
    pub const ALL: [ConflictSite; SITE_COUNT] = [
        ConflictSite::Write,
        ConflictSite::Commit,
        ConflictSite::Read,
        ConflictSite::VisibleReader,
    ];

    /// Dense index of this site.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ConflictSite::Write => 0,
            ConflictSite::Commit => 1,
            ConflictSite::Read => 2,
            ConflictSite::VisibleReader => 3,
        }
    }

    /// Short machine-friendly label used in tables.
    pub const fn label(self) -> &'static str {
        match self {
            ConflictSite::Write => "write",
            ConflictSite::Commit => "commit",
            ConflictSite::Read => "read",
            ConflictSite::VisibleReader => "visible-reader",
        }
    }
}

/// Dense index of a [`Resolution`].
#[inline]
const fn resolution_index(resolution: Resolution) -> usize {
    match resolution {
        Resolution::Wait => 0,
        Resolution::AbortSelf => 1,
        Resolution::AbortOther => 2,
    }
}

/// Resolves a conflict through `cm` with the accounting every STM shares:
/// the outcome is recorded at `site` in `me`'s telemetry and, on
/// `AbortOther`, the abort request is delivered to `owner` (a fresh
/// delivery — the victim's flag transitioned from clear to set — counts as
/// an inflicted remote abort). Returns the decision for the caller's
/// control flow; this is the single implementation behind all four STMs'
/// conflict loops, so the recording order (resolve → record → inflict)
/// cannot diverge between them.
pub fn resolve_recorded(
    cm: &dyn ContentionManager,
    me: &TxShared,
    owner: &TxShared,
    site: ConflictSite,
) -> Resolution {
    let resolution = cm.resolve(me, owner);
    me.telemetry().record_resolution(site, resolution);
    if resolution == Resolution::AbortOther && owner.request_abort() {
        me.telemetry().record_abort_inflicted();
    }
    resolution
}

/// Live contention counters of one thread.
///
/// Embedded in [`TxShared`]; written through `&self` by the owning thread
/// only (relaxed atomics — there is no cross-thread ordering requirement, the
/// values are pure statistics). Drained with [`ContentionTelemetry::drain_into`]
/// when the driver collects the thread's statistics.
#[derive(Debug, Default)]
pub struct ContentionTelemetry {
    /// `resolutions[site][resolution]` counts of CM `resolve` outcomes.
    resolutions: [[AtomicU64; RESOLUTION_COUNT]; SITE_COUNT],
    /// Nanoseconds spent inside CM wait loops (from the first contended
    /// acquisition attempt until the conflict was resolved either way).
    cm_wait_nanos: AtomicU64,
    /// Nanoseconds spent spinning in back-off (post-rollback back-off and
    /// Polka's in-conflict exponential back-off).
    backoff_nanos: AtomicU64,
    /// Spin-loop iterations executed by back-off.
    backoff_spins: AtomicU64,
    /// Abort requests this thread *delivered* to victims (transitions of the
    /// victim's abort flag from clear to set; re-requests while the flag is
    /// already pending are not counted).
    aborts_inflicted: AtomicU64,
}

impl ContentionTelemetry {
    /// Records the outcome of one [`crate::cm::ContentionManager::resolve`]
    /// call at `site`.
    #[inline]
    pub fn record_resolution(&self, site: ConflictSite, resolution: Resolution) {
        self.resolutions[site.index()][resolution_index(resolution)]
            // sync: Relaxed — statistics exemption (module docs).
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records time spent in a CM wait loop.
    #[inline]
    pub fn record_cm_wait(&self, waited: Duration) {
        self.cm_wait_nanos
            // sync: Relaxed — statistics exemption (module docs).
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one back-off episode: `spins` spin-loop iterations taking
    /// `waited` wall-clock time.
    #[inline]
    pub fn record_backoff(&self, spins: u64, waited: Duration) {
        // sync: Relaxed — statistics exemption (module docs).
        self.backoff_spins.fetch_add(spins, Ordering::Relaxed);
        self.backoff_nanos
            // sync: Relaxed — statistics exemption (module docs).
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records one delivered abort request (the victim's flag transitioned
    /// from clear to set).
    #[inline]
    pub fn record_abort_inflicted(&self) {
        // sync: Relaxed — statistics exemption (module docs).
        self.aborts_inflicted.fetch_add(1, Ordering::Relaxed);
    }

    /// Moves the accumulated counters into `out` (saturating) and resets
    /// them to zero.
    pub fn drain_into(&self, out: &mut ContentionCounters) {
        for (site, row) in self.resolutions.iter().enumerate() {
            for (res, counter) in row.iter().enumerate() {
                // sync: Relaxed — statistics exemption (module docs).
                let drained = counter.swap(0, Ordering::Relaxed);
                out.resolutions[site][res] = out.resolutions[site][res].saturating_add(drained);
            }
        }
        out.cm_wait_nanos = out
            .cm_wait_nanos
            // sync: Relaxed — statistics exemption (module docs).
            .saturating_add(self.cm_wait_nanos.swap(0, Ordering::Relaxed));
        out.backoff_nanos = out
            .backoff_nanos
            // sync: Relaxed — statistics exemption (module docs).
            .saturating_add(self.backoff_nanos.swap(0, Ordering::Relaxed));
        out.backoff_spins = out
            .backoff_spins
            // sync: Relaxed — statistics exemption (module docs).
            .saturating_add(self.backoff_spins.swap(0, Ordering::Relaxed));
        out.remote_aborts_inflicted = out
            .remote_aborts_inflicted
            // sync: Relaxed — statistics exemption (module docs).
            .saturating_add(self.aborts_inflicted.swap(0, Ordering::Relaxed));
    }
}

/// Drained, plain-integer contention counters, carried inside
/// [`crate::stats::TxStats`] and merged saturating across threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContentionCounters {
    /// `resolutions[site][resolution]` counts of CM `resolve` outcomes
    /// (indices per [`ConflictSite::index`] / Wait = 0, AbortSelf = 1,
    /// AbortOther = 2).
    pub resolutions: [[u64; RESOLUTION_COUNT]; SITE_COUNT],
    /// Nanoseconds spent inside CM wait loops.
    pub cm_wait_nanos: u64,
    /// Nanoseconds spent spinning in back-off. For Polka this overlaps with
    /// `cm_wait_nanos` (its exponential back-off runs *inside* the wait
    /// loop); for post-rollback back-off the two are disjoint.
    pub backoff_nanos: u64,
    /// Spin-loop iterations executed by back-off.
    pub backoff_spins: u64,
    /// Abort requests delivered to victims by this thread.
    pub remote_aborts_inflicted: u64,
    /// Aborts of this thread caused by a remote abort request (the
    /// `remote-abort` entries of `aborts_by_reason`, kept as a dedicated
    /// counter so the inflicted/received pair reads off one struct).
    pub remote_aborts_received: u64,
}

impl ContentionCounters {
    /// Resolution count for one (site, resolution) pair.
    #[inline]
    pub fn resolved(&self, site: ConflictSite, resolution: Resolution) -> u64 {
        self.resolutions[site.index()][resolution_index(resolution)]
    }

    /// Total `Wait` resolutions across all sites.
    pub fn waits(&self) -> u64 {
        self.total_of(Resolution::Wait)
    }

    /// Total `AbortSelf` resolutions across all sites.
    pub fn aborts_self(&self) -> u64 {
        self.total_of(Resolution::AbortSelf)
    }

    /// Total `AbortOther` resolutions across all sites.
    pub fn aborts_other(&self) -> u64 {
        self.total_of(Resolution::AbortOther)
    }

    fn total_of(&self, resolution: Resolution) -> u64 {
        let idx = resolution_index(resolution);
        self.resolutions
            .iter()
            .fold(0u64, |acc, row| acc.saturating_add(row[idx]))
    }

    /// Merges another snapshot into this one, saturating instead of
    /// wrapping on overflow.
    pub fn merge_saturating(&mut self, other: &ContentionCounters) {
        for (row, other_row) in self.resolutions.iter_mut().zip(&other.resolutions) {
            for (cell, other_cell) in row.iter_mut().zip(other_row) {
                *cell = cell.saturating_add(*other_cell);
            }
        }
        self.cm_wait_nanos = self.cm_wait_nanos.saturating_add(other.cm_wait_nanos);
        self.backoff_nanos = self.backoff_nanos.saturating_add(other.backoff_nanos);
        self.backoff_spins = self.backoff_spins.saturating_add(other.backoff_spins);
        self.remote_aborts_inflicted = self
            .remote_aborts_inflicted
            .saturating_add(other.remote_aborts_inflicted);
        self.remote_aborts_received = self
            .remote_aborts_received
            .saturating_add(other.remote_aborts_received);
    }
}

/// Drop guard attributing wall-clock time to a CM wait loop.
///
/// The STMs create one lazily when an acquisition loop first encounters a
/// foreign owner; whichever way the loop exits (lock acquired, self-abort,
/// remote abort), dropping the guard adds the elapsed time to the thread's
/// `cm_wait_nanos`. Holds its own `Arc` so the guard does not borrow the
/// descriptor across the loop body.
#[derive(Debug)]
pub struct WaitTimer {
    shared: Arc<TxShared>,
    start: Instant,
}

impl WaitTimer {
    /// Starts timing a wait loop for the thread owning `shared`.
    pub fn start(shared: &Arc<TxShared>) -> WaitTimer {
        WaitTimer {
            shared: Arc::clone(shared),
            start: Instant::now(),
        }
    }
}

impl Drop for WaitTimer {
    fn drop(&mut self) {
        self.shared.telemetry().record_cm_wait(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ThreadRegistry;

    #[test]
    fn site_indices_are_dense_and_labels_distinct() {
        for (i, site) in ConflictSite::ALL.iter().enumerate() {
            assert_eq!(site.index(), i);
        }
        let mut labels: Vec<_> = ConflictSite::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), SITE_COUNT);
    }

    #[test]
    fn drain_moves_and_resets() {
        let t = ContentionTelemetry::default();
        t.record_resolution(ConflictSite::Write, Resolution::Wait);
        t.record_resolution(ConflictSite::Write, Resolution::Wait);
        t.record_resolution(ConflictSite::Commit, Resolution::AbortOther);
        t.record_cm_wait(Duration::from_nanos(500));
        t.record_backoff(7, Duration::from_nanos(300));
        t.record_abort_inflicted();

        let mut c = ContentionCounters::default();
        t.drain_into(&mut c);
        assert_eq!(c.resolved(ConflictSite::Write, Resolution::Wait), 2);
        assert_eq!(c.resolved(ConflictSite::Commit, Resolution::AbortOther), 1);
        assert_eq!(c.waits(), 2);
        assert_eq!(c.aborts_other(), 1);
        assert_eq!(c.aborts_self(), 0);
        assert_eq!(c.cm_wait_nanos, 500);
        assert_eq!(c.backoff_nanos, 300);
        assert_eq!(c.backoff_spins, 7);
        assert_eq!(c.remote_aborts_inflicted, 1);

        // A second drain finds everything reset.
        let mut again = ContentionCounters::default();
        t.drain_into(&mut again);
        assert_eq!(again, ContentionCounters::default());
        // And the first drain target is additive across drains.
        t.record_backoff(1, Duration::from_nanos(1));
        t.drain_into(&mut c);
        assert_eq!(c.backoff_spins, 8);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = ContentionCounters {
            cm_wait_nanos: u64::MAX,
            backoff_nanos: u64::MAX - 1,
            ..ContentionCounters::default()
        };
        a.resolutions[0][0] = u64::MAX;
        let mut b = ContentionCounters {
            cm_wait_nanos: 10,
            backoff_nanos: 10,
            remote_aborts_inflicted: u64::MAX,
            remote_aborts_received: u64::MAX,
            backoff_spins: 3,
            ..ContentionCounters::default()
        };
        b.resolutions[0][0] = 5;
        a.merge_saturating(&b);
        assert_eq!(a.resolutions[0][0], u64::MAX);
        assert_eq!(a.cm_wait_nanos, u64::MAX);
        assert_eq!(a.backoff_nanos, u64::MAX);
        assert_eq!(a.backoff_spins, 3);
        assert_eq!(a.remote_aborts_inflicted, u64::MAX);
        assert_eq!(a.remote_aborts_received, u64::MAX);
        // waits() totals saturate rather than overflow.
        let mut c = ContentionCounters::default();
        c.resolutions[0][0] = u64::MAX;
        c.resolutions[1][0] = 1;
        assert_eq!(c.waits(), u64::MAX);
    }

    #[test]
    fn wait_timer_records_on_drop() {
        let registry = ThreadRegistry::new();
        let slot = registry.register().unwrap();
        let shared = registry.shared(slot);
        {
            let _timer = WaitTimer::start(shared);
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut c = ContentionCounters::default();
        shared.telemetry().drain_into(&mut c);
        assert!(c.cm_wait_nanos >= 1_000_000, "waited {}ns", c.cm_wait_nanos);
    }
}
