//! Back-off policies used after transaction rollbacks and while waiting on
//! conflicts.
//!
//! The paper's SwissTM uses *randomized linear back-off*: after the `k`-th
//! successive abort a transaction spins for a uniformly random number of
//! iterations in `[0, k * UNIT)` before restarting (Algorithm 2, line 11 and
//! Figure 11). Polka uses *exponential* back-off while waiting on a
//! conflicting owner. Both are provided here.

use std::cell::Cell;
#[cfg(not(stm_model))]
use std::hint;

/// Number of spin iterations in one back-off "unit".
pub const BACKOFF_UNIT: u64 = 64;

/// Cap on the exponential back-off exponent to avoid multi-second stalls.
pub const MAX_EXPONENT: u32 = 16;

thread_local! {
    static THREAD_RNG_STATE: Cell<u64> = const { Cell::new(0) };
}

fn thread_seed() -> u64 {
    THREAD_RNG_STATE.with(|state| {
        let mut s = state.get();
        if s == 0 {
            // Derive a per-thread seed from the address of the TLS cell so
            // that threads do not back off in lock step.
            s = (state as *const Cell<u64> as usize as u64) ^ 0x9e37_79b9_7f4a_7c15;
        }
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state.set(s);
        s
    })
}

/// Spins for `iterations` relaxed spin-loop hints.
///
/// Under the model checker (`--cfg stm_model`) this is a no-op: backoff
/// burns wall-clock time to dodge contention, which is meaningless when the
/// scheduler already enumerates every interleaving — and a bounded busy
/// loop is not a schedule point, so spinning here would only slow the DFS
/// down without adding explored states.
#[inline]
pub fn spin(iterations: u64) {
    #[cfg(stm_model)]
    let _ = iterations;
    #[cfg(not(stm_model))]
    for _ in 0..iterations {
        hint::spin_loop();
    }
}

/// Randomized linear back-off: spin for a uniformly random number of
/// iterations in the half-open range `[0, successive_aborts * BACKOFF_UNIT)`.
/// Returns the number of iterations spun, so callers can feed the
/// contention telemetry.
///
/// This is the paper's `wait-random(tx.succ-abort-count)`.
pub fn wait_random_linear(successive_aborts: u64) -> u64 {
    if successive_aborts == 0 {
        return 0;
    }
    let bound = successive_aborts.saturating_mul(BACKOFF_UNIT).max(1);
    let mut rng = FastRng::new(thread_seed());
    let iterations = rng.next_below(bound);
    spin(iterations);
    iterations
}

/// Randomized exponential back-off: spin for a random number of iterations
/// in the half-open range `[0, 2^min(attempt, MAX_EXPONENT) * BACKOFF_UNIT)`.
/// Returns the number of iterations spun, so callers can feed the
/// contention telemetry.
pub fn wait_random_exponential(attempt: u32) -> u64 {
    let exp = attempt.min(MAX_EXPONENT);
    let bound = (1u64 << exp).saturating_mul(BACKOFF_UNIT);
    let mut rng = FastRng::new(thread_seed());
    let iterations = rng.next_below(bound);
    spin(iterations);
    iterations
}

/// A deterministic, cheap pseudo-random generator for use *inside*
/// transaction bodies of the workloads (so that aborted and re-executed
/// transactions draw fresh values without heap allocation).
///
/// This is a SplitMix64 generator; it is not cryptographically secure.
#[derive(Clone, Debug)]
pub struct FastRng {
    state: u64,
}

impl FastRng {
    /// Creates a generator from a seed (a zero seed is remapped so that the
    /// stream is never all-zero).
    pub fn new(seed: u64) -> Self {
        FastRng {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniformly random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Returns `true` with probability `percent / 100`.
    #[inline]
    pub fn chance_percent(&mut self, percent: u64) -> bool {
        self.next_below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_backoff_with_zero_aborts_returns_immediately() {
        assert_eq!(wait_random_linear(0), 0);
        assert!(wait_random_linear(3) < 3 * BACKOFF_UNIT);
    }

    #[test]
    fn exponential_backoff_caps_exponent() {
        // Must terminate quickly even for absurd attempt counts, and report
        // a spin count inside the capped bound.
        let spins = wait_random_exponential(1_000_000);
        assert!(spins < (1u64 << MAX_EXPONENT) * BACKOFF_UNIT);
    }

    #[test]
    fn fast_rng_is_deterministic_per_seed() {
        let mut a = FastRng::new(42);
        let mut b = FastRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fast_rng_streams_differ_between_seeds() {
        let mut a = FastRng::new(1);
        let mut b = FastRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = FastRng::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn chance_percent_extremes() {
        let mut rng = FastRng::new(9);
        assert!((0..100).all(|_| !rng.chance_percent(0)));
        assert!((0..100).all(|_| rng.chance_percent(100)));
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = FastRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn thread_seed_varies_between_calls() {
        assert_ne!(thread_seed(), thread_seed());
    }
}
