//! The lock table: mapping heap words to ownership records.
//!
//! This reproduces the paper's Figure 1. Every stripe of
//! `2^grain_shift` consecutive heap words maps to one entry of a global
//! table with `2^log2_entries` entries:
//!
//! ```text
//! entry_index = mix((addr >> grain_shift)) & (2^log2_entries - 1)
//! ```
//!
//! Different stripes may alias to the same entry (false conflicts), which
//! the paper notes "does not cause any problems in practice"; the
//! granularity sweep of Figure 13 / Table 2 is reproduced by varying
//! `grain_shift`.
//!
//! The table is generic over the entry type because each STM stores
//! different metadata per stripe (SwissTM: a read lock and a write lock;
//! TL2/TinySTM: one versioned lock; RSTM: an object header with a visible
//! reader bitmap).
//!
//! # Layouts ([`TableLayout`])
//!
//! The paper's table packs entries back to back, so with 8-byte entries
//! eight *adjacent* stripes share one 64-byte cache line: threads working
//! on neighbouring heap words ping-pong that line even when their stripes
//! never conflict. Two independent remedies are available:
//!
//! * **Padding** ([`TableLayout::padded`]) stores every entry in its own
//!   [`CachePadded`] cell. False sharing between entries disappears
//!   entirely, at 4–8× the table's memory (the paper-default 2^22-entry
//!   table grows from 32–64 MiB to 256 MiB — opt-in for dedicated runs).
//! * **Index mixing** ([`TableLayout::mixed`]) keeps the packed layout but
//!   multiplies the stripe index by an odd constant (mod the table size)
//!   before indexing. The map is a bijection on the index space, so the
//!   false-conflict rate is unchanged — stripes that aliased before still
//!   alias (indices equal mod `2^log2_entries` stay equal after the odd
//!   multiply) — but stripes that are *adjacent* in the heap land on
//!   distant cache lines, for free.

use crate::config::{LockTableConfig, TableLayout};
use crate::pad::CachePadded;
use crate::word::Addr;

/// Odd multiplier for index mixing, from the 64-bit golden ratio (the same
/// constant as [`crate::hash`]). Any odd constant gives a bijection modulo
/// a power of two; this one also spreads consecutive indices far apart.
const INDEX_MIX: usize = 0x9e37_79b9_7f4a_7c15_u64 as usize;

/// Entry storage for the two memory layouts.
///
/// The enum match in [`LockTable::entry_at`] is a perfectly predicted
/// branch (the variant never changes for a given table), so the flat
/// layout's hot path is unaffected by the padded option's existence.
#[derive(Debug)]
enum Entries<E> {
    /// Packed entries (the paper's layout).
    Flat(Box<[E]>),
    /// One cache line per entry.
    Padded(Box<[CachePadded<E>]>),
}

/// A fixed-size table mapping heap addresses to per-stripe entries.
#[derive(Debug)]
pub struct LockTable<E> {
    entries: Entries<E>,
    grain_shift: u32,
    mask: usize,
    /// Multiplier applied to the stripe index before masking; 1 for the
    /// identity mapping, [`INDEX_MIX`] when index mixing is enabled. Using
    /// a multiplier of 1 keeps the unmixed hot path branch-free.
    mix: usize,
}

impl<E: Default> LockTable<E> {
    /// Creates a table whose entries are default-initialised.
    pub fn new(config: LockTableConfig) -> Self {
        let entries = if config.layout.padded() {
            Entries::Padded(
                (0..config.entries())
                    .map(|_| CachePadded::new(E::default()))
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            )
        } else {
            Entries::Flat(
                (0..config.entries())
                    .map(|_| E::default())
                    .collect::<Vec<_>>()
                    .into_boxed_slice(),
            )
        };
        LockTable {
            entries,
            grain_shift: config.grain_shift,
            mask: config.entries() - 1,
            mix: if config.layout.mixed() { INDEX_MIX } else { 1 },
        }
    }
}

impl<E> LockTable<E> {
    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        match &self.entries {
            Entries::Flat(entries) => entries.len(),
            Entries::Padded(entries) => entries.len(),
        }
    }

    /// Returns `true` if the table has no entries (never the case for
    /// tables built through [`LockTable::new`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// log2 of the number of heap words covered by one entry.
    pub fn grain_shift(&self) -> u32 {
        self.grain_shift
    }

    /// The memory layout this table was built with.
    pub fn layout(&self) -> TableLayout {
        match (&self.entries, self.mix != 1) {
            (Entries::Flat(_), false) => TableLayout::Flat,
            (Entries::Flat(_), true) => TableLayout::Mixed,
            (Entries::Padded(_), false) => TableLayout::Padded,
            (Entries::Padded(_), true) => TableLayout::PaddedMixed,
        }
    }

    /// Index of the entry covering `addr`.
    #[inline]
    pub fn index_of(&self, addr: Addr) -> usize {
        (addr.index() >> self.grain_shift).wrapping_mul(self.mix) & self.mask
    }

    /// The entry covering `addr`.
    #[inline]
    pub fn entry(&self, addr: Addr) -> &E {
        self.entry_at(self.index_of(addr))
    }

    /// The entry at a raw table index (used when logs store indices instead
    /// of addresses).
    #[inline]
    pub fn entry_at(&self, index: usize) -> &E {
        match &self.entries {
            Entries::Flat(entries) => &entries[index],
            Entries::Padded(entries) => &entries[index],
        }
    }

    /// Iterates over all entries (used by tests and invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        (0..self.len()).map(move |i| self.entry_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pad::CACHE_LINE_BYTES;
    use crate::sync::{AtomicU64, Ordering};

    #[test]
    fn entries_cover_consecutive_words() {
        // grain_shift = 2 -> 4 words per stripe.
        let table: LockTable<AtomicU64> =
            LockTable::new(LockTableConfig::small().with_grain_shift(2));
        let base = Addr::new(64);
        let idx = table.index_of(base);
        for i in 0..4 {
            assert_eq!(table.index_of(base.offset(i)), idx);
        }
        assert_ne!(table.index_of(base.offset(4)), idx);
    }

    #[test]
    fn mapping_wraps_around_table_size() {
        let cfg = LockTableConfig {
            log2_entries: 4,
            grain_shift: 0,
            layout: TableLayout::Flat,
        };
        let table: LockTable<AtomicU64> = LockTable::new(cfg);
        assert_eq!(table.len(), 16);
        // Addresses 16 apart alias to the same entry: a false conflict.
        assert_eq!(table.index_of(Addr::new(3)), table.index_of(Addr::new(19)));
    }

    #[test]
    fn word_level_granularity_distinguishes_neighbours() {
        let cfg = LockTableConfig::small().with_grain_shift(0);
        let table: LockTable<AtomicU64> = LockTable::new(cfg);
        assert_ne!(table.index_of(Addr::new(1)), table.index_of(Addr::new(2)));
    }

    #[test]
    fn entries_are_shared_state() {
        let table: LockTable<AtomicU64> = LockTable::new(LockTableConfig::small());
        let addr = Addr::new(40);
        // sync: Relaxed — single-threaded test, no concurrent observer.
        table.entry(addr).store(7, Ordering::Relaxed);
        assert_eq!(
            // sync: Relaxed — single-threaded test.
            table.entry_at(table.index_of(addr)).load(Ordering::Relaxed),
            7
        );
    }

    #[test]
    fn iter_covers_all_entries() {
        let cfg = LockTableConfig {
            log2_entries: 6,
            grain_shift: 1,
            layout: TableLayout::Flat,
        };
        let table: LockTable<AtomicU64> = LockTable::new(cfg);
        assert_eq!(table.iter().count(), 64);
        assert!(!table.is_empty());
    }

    /// Every layout must produce the same aliasing classes: within-stripe
    /// words map together, and stripes `2^log2_entries` apart still alias.
    #[test]
    fn all_layouts_preserve_stripe_aliasing() {
        for layout in TableLayout::ALL {
            let cfg = LockTableConfig {
                log2_entries: 4,
                grain_shift: 1,
                layout,
            };
            let table: LockTable<AtomicU64> = LockTable::new(cfg);
            assert_eq!(table.layout(), layout);
            assert_eq!(table.len(), 16);
            // Words 0 and 1 share the stripe, whatever the mapping.
            assert_eq!(
                table.index_of(Addr::new(2)),
                table.index_of(Addr::new(3)),
                "{layout:?}"
            );
            // Stripes 16 apart (words 32 apart) alias: the mix is a
            // bijection modulo the table size, so false-conflict classes
            // are unchanged.
            assert_eq!(
                table.index_of(Addr::new(3)),
                table.index_of(Addr::new(35)),
                "{layout:?}"
            );
        }
    }

    #[test]
    fn mixing_is_a_bijection_on_the_index_space() {
        let cfg = LockTableConfig {
            log2_entries: 8,
            grain_shift: 0,
            layout: TableLayout::Mixed,
        };
        let table: LockTable<AtomicU64> = LockTable::new(cfg);
        let mut seen = vec![false; 256];
        for word in 0..256usize {
            let idx = table.index_of(Addr::new(word));
            assert!(!seen[idx], "index {idx} hit twice");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mixing_separates_adjacent_stripes() {
        let flat: LockTable<AtomicU64> = LockTable::new(LockTableConfig {
            log2_entries: 12,
            grain_shift: 0,
            layout: TableLayout::Flat,
        });
        let mixed: LockTable<AtomicU64> = LockTable::new(LockTableConfig {
            log2_entries: 12,
            grain_shift: 0,
            layout: TableLayout::Mixed,
        });
        let per_line = CACHE_LINE_BYTES / std::mem::size_of::<AtomicU64>();
        // Flat: consecutive stripes pack onto the same cache line.
        assert_eq!(
            flat.index_of(Addr::new(1)) / per_line,
            flat.index_of(Addr::new(2)) / per_line
        );
        // Mixed: every pair of adjacent stripes is at least a line apart.
        for word in 1..64usize {
            let a = mixed.index_of(Addr::new(word));
            let b = mixed.index_of(Addr::new(word + 1));
            assert!(
                a.abs_diff(b) >= per_line,
                "stripes {word} and {} map {a} and {b}, same line",
                word + 1
            );
        }
    }

    #[test]
    fn padded_layout_gives_each_entry_its_own_line() {
        let table: LockTable<AtomicU64> = LockTable::new(LockTableConfig {
            log2_entries: 4,
            grain_shift: 1,
            layout: TableLayout::Padded,
        });
        let lines: Vec<usize> = (0..table.len())
            .map(|i| (table.entry_at(i) as *const AtomicU64 as usize) / CACHE_LINE_BYTES)
            .collect();
        let distinct: std::collections::HashSet<_> = lines.iter().collect();
        assert_eq!(distinct.len(), table.len());
    }

    #[test]
    fn padded_tables_behave_like_flat_ones() {
        for layout in [TableLayout::Padded, TableLayout::PaddedMixed] {
            let table: LockTable<AtomicU64> =
                LockTable::new(LockTableConfig::small().with_layout(layout));
            let addr = Addr::new(40);
            // sync: Relaxed — single-threaded test.
            table.entry(addr).store(9, Ordering::Relaxed);
            assert_eq!(
                // sync: Relaxed — single-threaded test.
                table.entry_at(table.index_of(addr)).load(Ordering::Relaxed),
                9
            );
            assert_eq!(table.iter().count(), table.len());
        }
    }
}
