//! The lock table: mapping heap words to ownership records.
//!
//! This reproduces the paper's Figure 1. Every stripe of
//! `2^grain_shift` consecutive heap words maps to one entry of a global
//! table with `2^log2_entries` entries:
//!
//! ```text
//! entry_index = (addr >> grain_shift) & (2^log2_entries - 1)
//! ```
//!
//! Different stripes may alias to the same entry (false conflicts), which
//! the paper notes "does not cause any problems in practice"; the
//! granularity sweep of Figure 13 / Table 2 is reproduced by varying
//! `grain_shift`.
//!
//! The table is generic over the entry type because each STM stores
//! different metadata per stripe (SwissTM: a read lock and a write lock;
//! TL2/TinySTM: one versioned lock; RSTM: an object header with a visible
//! reader bitmap).

use crate::config::LockTableConfig;
use crate::word::Addr;

/// A fixed-size table mapping heap addresses to per-stripe entries.
#[derive(Debug)]
pub struct LockTable<E> {
    entries: Box<[E]>,
    grain_shift: u32,
    mask: usize,
}

impl<E: Default> LockTable<E> {
    /// Creates a table whose entries are default-initialised.
    pub fn new(config: LockTableConfig) -> Self {
        let entries = (0..config.entries())
            .map(|_| E::default())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LockTable {
            entries,
            grain_shift: config.grain_shift,
            mask: config.entries() - 1,
        }
    }
}

impl<E> LockTable<E> {
    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table has no entries (never the case for
    /// tables built through [`LockTable::new`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// log2 of the number of heap words covered by one entry.
    pub fn grain_shift(&self) -> u32 {
        self.grain_shift
    }

    /// Index of the entry covering `addr`.
    #[inline]
    pub fn index_of(&self, addr: Addr) -> usize {
        (addr.index() >> self.grain_shift) & self.mask
    }

    /// The entry covering `addr`.
    #[inline]
    pub fn entry(&self, addr: Addr) -> &E {
        &self.entries[self.index_of(addr)]
    }

    /// The entry at a raw table index (used when logs store indices instead
    /// of addresses).
    #[inline]
    pub fn entry_at(&self, index: usize) -> &E {
        &self.entries[index]
    }

    /// Iterates over all entries (used by tests and invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = &E> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn entries_cover_consecutive_words() {
        // grain_shift = 2 -> 4 words per stripe.
        let table: LockTable<AtomicU64> =
            LockTable::new(LockTableConfig::small().with_grain_shift(2));
        let base = Addr::new(64);
        let idx = table.index_of(base);
        for i in 0..4 {
            assert_eq!(table.index_of(base.offset(i)), idx);
        }
        assert_ne!(table.index_of(base.offset(4)), idx);
    }

    #[test]
    fn mapping_wraps_around_table_size() {
        let cfg = LockTableConfig {
            log2_entries: 4,
            grain_shift: 0,
        };
        let table: LockTable<AtomicU64> = LockTable::new(cfg);
        assert_eq!(table.len(), 16);
        // Addresses 16 apart alias to the same entry: a false conflict.
        assert_eq!(table.index_of(Addr::new(3)), table.index_of(Addr::new(19)));
    }

    #[test]
    fn word_level_granularity_distinguishes_neighbours() {
        let cfg = LockTableConfig::small().with_grain_shift(0);
        let table: LockTable<AtomicU64> = LockTable::new(cfg);
        assert_ne!(table.index_of(Addr::new(1)), table.index_of(Addr::new(2)));
    }

    #[test]
    fn entries_are_shared_state() {
        let table: LockTable<AtomicU64> = LockTable::new(LockTableConfig::small());
        let addr = Addr::new(40);
        table.entry(addr).store(7, Ordering::Relaxed);
        assert_eq!(
            table.entry_at(table.index_of(addr)).load(Ordering::Relaxed),
            7
        );
    }

    #[test]
    fn iter_covers_all_entries() {
        let cfg = LockTableConfig {
            log2_entries: 6,
            grain_shift: 1,
        };
        let table: LockTable<AtomicU64> = LockTable::new(cfg);
        assert_eq!(table.iter().count(), 64);
        assert!(!table.is_empty());
    }
}
