//! Global clocks and the thread registry.
//!
//! * [`GlobalClock`] is the shared monotonically increasing counter used as
//!   the commit timestamp (`commit-ts` in the paper) and as the Greedy
//!   contention-manager clock (`greedy-ts`).
//! * [`TxClock`] wraps a [`GlobalClock`] with a [`ClockMode`]-selected
//!   timestamp protocol: the paper's strict `increment&get`, or a
//!   TL2/GV5-style deferred ("sloppy") clock that keeps update commits off
//!   the shared cache line. All four STMs take their snapshots and commit
//!   stamps through this type.
//! * [`ThreadRegistry`] hands out [`ThreadSlot`]s and stores one shared
//!   [`TxShared`] record per slot. Contention managers use these records to
//!   inspect and signal *other* transactions (e.g. Greedy aborting a
//!   victim), which is how the reproduction expresses the paper's
//!   `abort(lock-owner)` without raw pointers.

use std::sync::Arc;

use crate::sync::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::config::ClockMode;
use crate::error::StmError;
use crate::pad::CachePadded;
use crate::telemetry::ContentionTelemetry;

/// A shared monotonically increasing 64-bit counter.
///
/// Used both as the global commit counter (`commit-ts`) and, with a separate
/// instance, as the Greedy timestamp source (`greedy-ts`). The counter is
/// cache-line padded: it is the single most contended word in the system,
/// and without padding whatever the allocator happens to place next to it
/// (a registry header, another clock) is dragged into its coherence storms.
#[derive(Debug, Default)]
pub struct GlobalClock {
    value: CachePadded<AtomicU64>,
}

impl GlobalClock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        GlobalClock {
            value: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Reads the current clock value.
    #[inline]
    pub fn read(&self) -> u64 {
        // sync: Acquire pairs with the Release half of the committer RMWs
        // below — a reader that observes clock value v also observes every
        // stripe version published before the commit that produced v.
        self.value.load(Ordering::Acquire)
    }

    /// Atomically increments the clock and returns the *new* value
    /// (`increment&get` in the paper's pseudo-code).
    #[inline]
    pub fn increment_and_get(&self) -> u64 {
        // sync: AcqRel — Release publishes the committer's locked write set
        // to any reader whose snapshot observes the new value; Acquire
        // orders the committer after every earlier commit (this RMW is the
        // strict clock's only synchronisation edge, see the TxClock docs).
        self.value.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Atomically advances the clock to at least `target` and returns the
    /// resulting value. Used by TL2-style GV clocks when adopting a
    /// timestamp observed elsewhere.
    pub fn advance_to(&self, target: u64) -> u64 {
        // sync: Acquire — same reader edge as read(); the CAS below retries
        // from the observed value, so a stale first load only costs a loop.
        let mut current = self.value.load(Ordering::Acquire);
        while current < target {
            match self.value.compare_exchange_weak(
                current,
                target,
                // sync: AcqRel on success for the same publish edge as
                // increment_and_get; Acquire on failure because the
                // observed value seeds the next retry and may be returned
                // to a reader as its snapshot.
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return target,
                Err(observed) => current = observed,
            }
        }
        current
    }
}

/// Sentinel meaning "no Greedy timestamp yet" (the paper's `∞`).
pub const CM_TS_INFINITY: u64 = u64::MAX;

/// The timestamp handed to a committing update transaction by
/// [`TxClock::commit_stamp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitStamp {
    /// The version to publish on the written stripes.
    pub ts: u64,
    /// `true` when the clock guarantees that *no other* update transaction
    /// committed between the transaction's snapshot and `ts`, so commit-time
    /// read-set validation may be skipped. A strict clock hands out unique
    /// timestamps and sets this when `ts == snapshot + 1`; a deferred clock
    /// never sets it, because concurrent committers may share a timestamp
    /// and `ts == snapshot + 1` then proves nothing about quiescence.
    pub quiescent: bool,
}

impl CommitStamp {
    /// Whether the committer must run full read-set validation.
    #[inline]
    pub fn needs_validation(self) -> bool {
        !self.quiescent
    }
}

/// The commit clock used by the STM algorithms, in one of two modes.
///
/// # Strict mode (the paper's scheme)
///
/// [`TxClock::commit_stamp`] is `increment&get`: one CAS/`fetch_add` on the
/// shared counter per update commit. Timestamps are unique, and the RMW
/// doubles as the synchronisation edge that makes snapshot extension sound:
/// a reader whose snapshot is `v` has synchronised with the committer that
/// produced `v`, so it is guaranteed to see that committer's stripe locks.
/// The cost is that every committer in the system serialises on one cache
/// line — the exact coherence wall this module exists to remove.
///
/// # Deferred mode (GV5-style "sloppy" clock)
///
/// `commit_stamp` only *reads* the counter and stamps `read + 1` — no RMW,
/// no coherence traffic on the commit fast path. The counter advances
/// lazily, through [`TxClock::observe`], when a reader encounters a stripe
/// version ahead of its snapshot. Two trade-offs follow, both encoded in
/// the API so the STMs cannot get them wrong:
///
/// 1. **Timestamps are not unique.** Two concurrent committers may both
///    stamp `v + 1`, so the strict-mode shortcut "`ts == snapshot + 1`
///    implies nobody committed in between → skip read-set validation" is
///    unsound: a whole commit can complete without moving the clock.
///    [`CommitStamp::quiescent`] is therefore never set in deferred mode;
///    update commits always validate.
///
/// 2. **The RMW synchronisation edge is gone.** With plain loads, a reader
///    could take snapshot `v`, fail to see the stripe locks of a concurrent
///    committer that stamped `v` (its lock stores may not be visible yet),
///    validate successfully, and then accept that committer's
///    write-back as "not newer than my snapshot" — a mixed snapshot and an
///    opacity violation. The deferred clock restores the edge with two
///    `SeqCst` fences instead of a shared RMW: committers fence *between*
///    locking their write set and reading the clock
///    ([`TxClock::commit_stamp`]), readers fence *between* reading the
///    clock and validating ([`TxClock::read`]). For any committer/reader
///    pair, one fence precedes the other: either the reader's validation
///    sees the committer's locks (and fails or waits), or the committer's
///    clock read sees a value ≥ the reader's snapshot (and stamps beyond
///    it). Both fences are core-local — no cross-core cache-line traffic —
///    which is the entire point: under contention a local fence is vastly
///    cheaper than a shared-line RMW, and on the uncontended path it is
///    roughly a wash (documented in EXPERIMENTS.md).
///
/// Opacity is preserved in both modes; deferred mode pays slightly more
/// validation work (no quiescence shortcut) and slightly staler snapshots
/// (more false extensions/aborts) in exchange for a commit path that does
/// not touch any globally contended cache line.
#[derive(Debug, Default)]
pub struct TxClock {
    clock: GlobalClock,
    mode: ClockMode,
}

impl TxClock {
    /// Creates a clock in `mode`, starting at zero.
    pub fn new(mode: ClockMode) -> Self {
        TxClock {
            clock: GlobalClock::new(),
            mode,
        }
    }

    /// The configured mode.
    #[inline]
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Takes a snapshot of the clock for `begin` or snapshot extension.
    ///
    /// In deferred mode this issues the reader-side `SeqCst` fence *after*
    /// the load, so it must be called before the reads/validation it
    /// protects (which is how all the STMs' `begin` and `extend` paths are
    /// structured).
    #[inline]
    pub fn read(&self) -> u64 {
        let snapshot = self.clock.read();
        if self.mode == ClockMode::Deferred {
            // sync: SeqCst reader fence, paired with the committer fence in
            // commit_stamp. In the SC total order one of the pair is first:
            // either the reader's validation sees the committer's write-set
            // locks, or the committer's clock read sees >= the reader's
            // snapshot and stamps beyond it. Model-checked by
            // deferred_clock.rs in stm-model-tests.
            fence(Ordering::SeqCst);
        }
        snapshot
    }

    /// Produces the commit timestamp for an update transaction whose
    /// current snapshot is `snapshot`.
    ///
    /// Must be called *after* the write set is locked (which is where all
    /// four STMs call it): in deferred mode the committer-side fence sits
    /// between those lock stores and the clock read.
    #[inline]
    pub fn commit_stamp(&self, snapshot: u64) -> CommitStamp {
        match self.mode {
            ClockMode::Strict => {
                let ts = self.clock.increment_and_get();
                CommitStamp {
                    ts,
                    quiescent: ts == snapshot + 1,
                }
            }
            ClockMode::Deferred => {
                // sync: SeqCst committer fence between the write-set lock
                // stores and the clock read; see the pairing argument on
                // TxClock::read above.
                fence(Ordering::SeqCst);
                // The clock is monotone and `snapshot` was read from it, so
                // `read() + 1 > snapshot` always holds.
                CommitStamp {
                    ts: self.clock.read() + 1,
                    quiescent: false,
                }
            }
        }
    }

    /// Notes a stripe version ahead of the caller's snapshot.
    ///
    /// In deferred mode this is what advances the clock: versions published
    /// by committers are folded back in by the readers that encounter them,
    /// so a subsequent snapshot (or extension) reaches at least `version`
    /// and the reader stops tripping over the same stripe. Strict mode
    /// never hands out versions ahead of the counter, so this is a no-op.
    #[inline]
    pub fn observe(&self, version: u64) {
        if self.mode == ClockMode::Deferred && version > self.clock.read() {
            self.clock.advance_to(version);
        }
    }
}

/// Transaction status values stored in [`TxShared::status`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxStatus {
    /// No transaction is currently running in this slot.
    Idle,
    /// A transaction attempt is executing.
    Active,
    /// The transaction is in its commit sequence.
    Committing,
    /// The last attempt was aborted and has not been restarted yet.
    Aborted,
}

impl TxStatus {
    fn from_u64(v: u64) -> TxStatus {
        match v {
            0 => TxStatus::Idle,
            1 => TxStatus::Active,
            2 => TxStatus::Committing,
            _ => TxStatus::Aborted,
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            TxStatus::Idle => 0,
            TxStatus::Active => 1,
            TxStatus::Committing => 2,
            TxStatus::Aborted => 3,
        }
    }
}

/// Words of a [`TxShared`] record written by *other* threads.
///
/// Kept on a dedicated cache line: an attacker delivering an abort request
/// must not invalidate the line holding the owner's hot, owner-written
/// state (which the owner re-reads on every transactional operation).
#[derive(Debug)]
struct RemoteSignals {
    /// Set by an attacker that decided to abort this transaction.
    abort_requested: AtomicBool,
}

/// Words of a [`TxShared`] record written only by the *owning* thread
/// (other threads' contention managers read them).
#[derive(Debug)]
struct OwnerState {
    /// Contention-manager timestamp (`cm-ts`); [`CM_TS_INFINITY`] means the
    /// transaction is still in the first (timid) phase.
    cm_ts: AtomicU64,
    /// Polka/Karma-style priority: number of locations accessed so far.
    priority: AtomicU64,
    /// Number of successive aborts of the current transaction (reset on
    /// commit); drives randomized linear back-off.
    successive_aborts: AtomicU64,
    /// Number of times the current attempt's contention manager chose to
    /// wait; bounds Polka's wait budget per attempt.
    cm_waits: AtomicU64,
    /// Coarse transaction status, used by visible-reader style algorithms.
    status: AtomicU64,
}

/// Per-thread state that must be visible to *other* threads.
///
/// Everything a contention manager may need to know about a foreign
/// transaction lives here: its Greedy/two-phase timestamp, its Polka
/// priority, whether somebody asked it to abort, and how many times it has
/// aborted in a row (for back-off).
///
/// The record is split into cache-line-padded groups by *writer*: words
/// written remotely (abort requests) are isolated from words written by the
/// owner (timestamps, counters, telemetry), and the whole record is
/// 64-byte aligned so two threads' records never share a line. Without the
/// split, every remote abort request would invalidate the owner's priority
/// and back-off counters — false sharing on the conflict-resolution path,
/// exactly where latency decides which transaction wins.
#[derive(Debug)]
pub struct TxShared {
    /// The owning thread slot (index into the registry).
    slot: ThreadSlot,
    /// Remotely written signal words, on their own line.
    remote: CachePadded<RemoteSignals>,
    /// Owner-written conflict-resolution state, on its own line.
    owner: CachePadded<OwnerState>,
    /// Contention telemetry counters (written by the owning thread only).
    telemetry: ContentionTelemetry,
}

impl TxShared {
    fn new(slot: ThreadSlot) -> Self {
        TxShared {
            slot,
            remote: CachePadded::new(RemoteSignals {
                abort_requested: AtomicBool::new(false),
            }),
            owner: CachePadded::new(OwnerState {
                cm_ts: AtomicU64::new(CM_TS_INFINITY),
                priority: AtomicU64::new(0),
                successive_aborts: AtomicU64::new(0),
                cm_waits: AtomicU64::new(0),
                status: AtomicU64::new(TxStatus::Idle.as_u64()),
            }),
            telemetry: ContentionTelemetry::default(),
        }
    }

    /// The thread slot this record belongs to.
    pub fn slot(&self) -> ThreadSlot {
        self.slot
    }

    /// Current contention-manager timestamp ([`CM_TS_INFINITY`] if unset).
    #[inline]
    pub fn cm_ts(&self) -> u64 {
        // sync: Acquire/Release on cm_ts so a Greedy/Serializer CM that
        // reads a rival's timestamp also sees the writes of the attempt
        // that published it (priority decisions stay causally consistent).
        self.owner.cm_ts.load(Ordering::Acquire)
    }

    /// Sets the contention-manager timestamp.
    #[inline]
    pub fn set_cm_ts(&self, ts: u64) {
        // sync: Release half of the cm_ts edge documented on cm_ts().
        self.owner.cm_ts.store(ts, Ordering::Release);
    }

    /// Current Polka-style priority.
    #[inline]
    pub fn priority(&self) -> u64 {
        // sync: Relaxed — Polka priorities are heuristic inputs to conflict
        // resolution; a stale value changes which side backs off, never
        // correctness (see the telemetry module for the exemption rule).
        self.owner.priority.load(Ordering::Relaxed)
    }

    /// Sets the Polka-style priority.
    #[inline]
    pub fn set_priority(&self, p: u64) {
        // sync: Relaxed — heuristic, see priority().
        self.owner.priority.store(p, Ordering::Relaxed);
    }

    /// Increments the Polka-style priority by one.
    #[inline]
    pub fn bump_priority(&self) {
        // sync: Relaxed — heuristic, see priority(); the RMW itself is
        // still atomic, so increments are never lost.
        self.owner.priority.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests that the owning transaction aborts itself at its next
    /// transactional operation. Returns `true` when the request was newly
    /// delivered (the flag transitioned from clear to set) — the caller uses
    /// this to count *inflicted* remote aborts without double-counting
    /// re-requests while a previous one is still pending.
    #[inline]
    pub fn request_abort(&self) -> bool {
        // sync: AcqRel RMW — Release so the victim's next Acquire poll also
        // sees why it was aborted (the requester's conflicting ownership),
        // Acquire so the requester observes the victim state it is about to
        // act on; the RMW makes concurrent requesters agree on who delivered
        // first. Model-checked by remote_abort.rs in stm-model-tests.
        !self.remote.abort_requested.swap(true, Ordering::AcqRel)
    }

    /// Returns `true` if some other transaction requested an abort.
    #[inline]
    pub fn abort_requested(&self) -> bool {
        // sync: Acquire, pairing with the Release in request_abort().
        self.remote.abort_requested.load(Ordering::Acquire)
    }

    /// Clears the abort request flag (called when a new attempt starts).
    #[inline]
    pub fn clear_abort_request(&self) {
        // sync: Release so a requester that still sees `true` after this
        // store can only have raced the new attempt, not an old one.
        self.remote.abort_requested.store(false, Ordering::Release);
    }

    /// Number of successive aborts of the currently running transaction.
    #[inline]
    pub fn successive_aborts(&self) -> u64 {
        // sync: Relaxed — backoff/CM heuristic counters, owner-written;
        // remote readers tolerate staleness (telemetry exemption rule).
        self.owner.successive_aborts.load(Ordering::Relaxed)
    }

    /// Records one more abort and returns the updated count.
    #[inline]
    pub fn record_abort(&self) -> u64 {
        // sync: Relaxed — heuristic, see successive_aborts().
        self.owner.successive_aborts.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Resets the successive abort counter (on commit).
    #[inline]
    pub fn reset_aborts(&self) {
        // sync: Relaxed — heuristic, see successive_aborts().
        self.owner.successive_aborts.store(0, Ordering::Relaxed);
    }

    /// Number of CM waits recorded for the current attempt.
    #[inline]
    pub fn cm_wait_count(&self) -> u64 {
        // sync: Relaxed — heuristic, see successive_aborts().
        self.owner.cm_waits.load(Ordering::Relaxed)
    }

    /// Records one more CM wait of the current attempt.
    #[inline]
    pub fn bump_cm_waits(&self) {
        // sync: Relaxed — heuristic, see successive_aborts().
        self.owner.cm_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Resets the per-attempt CM wait counter (called from `on_start`).
    #[inline]
    pub fn reset_cm_waits(&self) {
        // sync: Relaxed — heuristic, see successive_aborts().
        self.owner.cm_waits.store(0, Ordering::Relaxed);
    }

    /// The thread's contention telemetry counters.
    #[inline]
    pub fn telemetry(&self) -> &ContentionTelemetry {
        &self.telemetry
    }

    /// Current coarse status.
    pub fn status(&self) -> TxStatus {
        // sync: Acquire/Release on status — a CM that sees a rival Active
        // must also see the attempt start that published it, otherwise
        // wait-for decisions could target an already-finished transaction.
        TxStatus::from_u64(self.owner.status.load(Ordering::Acquire))
    }

    /// Publishes a new coarse status.
    pub fn set_status(&self, status: TxStatus) {
        // sync: Release half of the status edge documented on status().
        self.owner.status.store(status.as_u64(), Ordering::Release);
    }
}

/// Identifier of a registered thread (a dense index starting at zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadSlot(usize);

impl ThreadSlot {
    /// Creates a slot from a raw index. Mostly useful in tests.
    pub const fn new(index: usize) -> Self {
        ThreadSlot(index)
    }

    /// The raw slot index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ThreadSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Maximum number of threads a single STM instance supports.
///
/// The bound exists because visible-reader bitmaps (used by the RSTM
/// baseline) store one bit per thread in a single word.
pub const MAX_THREADS: usize = 64;

/// Registry of per-thread shared records.
#[derive(Debug)]
pub struct ThreadRegistry {
    slots: Vec<Arc<TxShared>>,
    next: AtomicUsize,
}

impl ThreadRegistry {
    /// Creates a registry with capacity for [`MAX_THREADS`] threads.
    pub fn new() -> Self {
        let slots = (0..MAX_THREADS)
            .map(|i| Arc::new(TxShared::new(ThreadSlot(i))))
            .collect();
        ThreadRegistry {
            slots,
            next: AtomicUsize::new(0),
        }
    }

    /// Registers the calling thread and returns its slot.
    ///
    /// # Errors
    ///
    /// Returns [`StmError::TooManyThreads`] once [`MAX_THREADS`] slots have
    /// been handed out.
    pub fn register(&self) -> Result<ThreadSlot, StmError> {
        // sync: AcqRel — the RMW hands out unique slots; Release/Acquire
        // orders slot initialisation with registered() readers iterating
        // live slots.
        let idx = self.next.fetch_add(1, Ordering::AcqRel);
        if idx >= MAX_THREADS {
            return Err(StmError::TooManyThreads { max: MAX_THREADS });
        }
        Ok(ThreadSlot(idx))
    }

    /// Number of slots handed out so far.
    pub fn registered(&self) -> usize {
        // sync: Acquire, pairing with register()'s Release (see above).
        self.next.load(Ordering::Acquire).min(MAX_THREADS)
    }

    /// Shared record for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn shared(&self, slot: ThreadSlot) -> &Arc<TxShared> {
        &self.slots[slot.index()]
    }

    /// Iterates over the shared records of all slots handed out so far.
    pub fn iter_registered(&self) -> impl Iterator<Item = &Arc<TxShared>> {
        self.slots.iter().take(self.registered())
    }
}

impl Default for ThreadRegistry {
    fn default() -> Self {
        ThreadRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_increments() {
        let c = GlobalClock::new();
        assert_eq!(c.read(), 0);
        assert_eq!(c.increment_and_get(), 1);
        assert_eq!(c.increment_and_get(), 2);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn clock_advance_to_is_monotone() {
        let c = GlobalClock::new();
        assert_eq!(c.advance_to(10), 10);
        assert_eq!(c.advance_to(5), 10);
        assert_eq!(c.read(), 10);
    }

    #[test]
    fn registry_hands_out_dense_slots() {
        let r = ThreadRegistry::new();
        let a = r.register().unwrap();
        let b = r.register().unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(r.registered(), 2);
        assert_eq!(r.shared(a).slot(), a);
    }

    #[test]
    fn registry_rejects_too_many_threads() {
        let r = ThreadRegistry::new();
        for _ in 0..MAX_THREADS {
            r.register().unwrap();
        }
        assert!(matches!(r.register(), Err(StmError::TooManyThreads { .. })));
    }

    #[test]
    fn tx_shared_flags_round_trip() {
        let r = ThreadRegistry::new();
        let slot = r.register().unwrap();
        let shared = r.shared(slot);
        assert_eq!(shared.cm_ts(), CM_TS_INFINITY);
        shared.set_cm_ts(7);
        assert_eq!(shared.cm_ts(), 7);

        assert!(!shared.abort_requested());
        assert!(shared.request_abort(), "first request is newly delivered");
        assert!(shared.abort_requested());
        assert!(
            !shared.request_abort(),
            "re-request while pending is not a fresh delivery"
        );
        shared.clear_abort_request();
        assert!(!shared.abort_requested());

        assert_eq!(shared.cm_wait_count(), 0);
        shared.bump_cm_waits();
        shared.bump_cm_waits();
        assert_eq!(shared.cm_wait_count(), 2);
        shared.reset_cm_waits();
        assert_eq!(shared.cm_wait_count(), 0);

        assert_eq!(shared.record_abort(), 1);
        assert_eq!(shared.record_abort(), 2);
        shared.reset_aborts();
        assert_eq!(shared.successive_aborts(), 0);

        shared.set_status(TxStatus::Committing);
        assert_eq!(shared.status(), TxStatus::Committing);

        shared.set_priority(3);
        shared.bump_priority();
        assert_eq!(shared.priority(), 4);
    }

    #[test]
    fn strict_stamps_are_unique_and_detect_quiescence() {
        let clock = TxClock::new(ClockMode::Strict);
        let snapshot = clock.read();
        let first = clock.commit_stamp(snapshot);
        assert_eq!(first.ts, snapshot + 1);
        assert!(first.quiescent, "no intervening commit: skip validation");
        assert!(!first.needs_validation());
        let second = clock.commit_stamp(snapshot);
        assert_eq!(second.ts, snapshot + 2);
        assert!(second.needs_validation(), "a commit intervened");
        assert_eq!(clock.read(), snapshot + 2);
    }

    #[test]
    fn strict_observe_is_a_no_op() {
        let clock = TxClock::new(ClockMode::Strict);
        clock.observe(100);
        assert_eq!(clock.read(), 0);
    }

    #[test]
    fn deferred_stamps_do_not_advance_the_clock() {
        let clock = TxClock::new(ClockMode::Deferred);
        assert_eq!(clock.mode(), ClockMode::Deferred);
        let snapshot = clock.read();
        let first = clock.commit_stamp(snapshot);
        let second = clock.commit_stamp(snapshot);
        assert_eq!(first.ts, snapshot + 1);
        assert_eq!(second.ts, first.ts, "stamps may repeat without an RMW");
        assert_eq!(clock.read(), snapshot, "the counter did not move");
        assert!(
            first.needs_validation() && second.needs_validation(),
            "deferred commits must always validate"
        );
    }

    #[test]
    fn deferred_clock_advances_through_observation() {
        let clock = TxClock::new(ClockMode::Deferred);
        clock.observe(7);
        assert_eq!(clock.read(), 7, "an observed version catches the clock up");
        clock.observe(3);
        assert_eq!(clock.read(), 7, "observation is monotone");
        let stamp = clock.commit_stamp(5);
        assert_eq!(stamp.ts, 8, "stamps sit one past the observed frontier");
    }

    #[test]
    fn tx_shared_isolates_remote_and_owner_lines() {
        use crate::pad::CACHE_LINE_BYTES;
        use std::mem::{align_of, size_of};

        assert_eq!(align_of::<TxShared>(), CACHE_LINE_BYTES);
        assert_eq!(size_of::<CachePadded<RemoteSignals>>(), CACHE_LINE_BYTES);
        assert_eq!(size_of::<CachePadded<OwnerState>>(), CACHE_LINE_BYTES);
        // The whole record is a multiple of the line size, so consecutive
        // records in any allocation never share a line.
        assert_eq!(size_of::<TxShared>() % CACHE_LINE_BYTES, 0);
        // The padded global clock occupies exactly one line.
        assert_eq!(align_of::<GlobalClock>(), CACHE_LINE_BYTES);
        assert_eq!(size_of::<GlobalClock>(), CACHE_LINE_BYTES);
    }

    #[test]
    fn clock_is_shared_across_threads() {
        let c = Arc::new(GlobalClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.increment_and_get();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read(), 4000);
    }
}
