//! Global clocks and the thread registry.
//!
//! * [`GlobalClock`] is the shared monotonically increasing counter used as
//!   the commit timestamp (`commit-ts` in the paper) and as the Greedy
//!   contention-manager clock (`greedy-ts`).
//! * [`ThreadRegistry`] hands out [`ThreadSlot`]s and stores one shared
//!   [`TxShared`] record per slot. Contention managers use these records to
//!   inspect and signal *other* transactions (e.g. Greedy aborting a
//!   victim), which is how the reproduction expresses the paper's
//!   `abort(lock-owner)` without raw pointers.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::StmError;
use crate::telemetry::ContentionTelemetry;

/// A shared monotonically increasing 64-bit counter.
///
/// Used both as the global commit counter (`commit-ts`) and, with a separate
/// instance, as the Greedy timestamp source (`greedy-ts`).
#[derive(Debug, Default)]
pub struct GlobalClock {
    value: AtomicU64,
}

impl GlobalClock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        GlobalClock {
            value: AtomicU64::new(0),
        }
    }

    /// Reads the current clock value.
    #[inline]
    pub fn read(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Atomically increments the clock and returns the *new* value
    /// (`increment&get` in the paper's pseudo-code).
    #[inline]
    pub fn increment_and_get(&self) -> u64 {
        self.value.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Atomically advances the clock to at least `target` and returns the
    /// resulting value. Used by TL2-style GV clocks when adopting a
    /// timestamp observed elsewhere.
    pub fn advance_to(&self, target: u64) -> u64 {
        let mut current = self.value.load(Ordering::Acquire);
        while current < target {
            match self.value.compare_exchange_weak(
                current,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return target,
                Err(observed) => current = observed,
            }
        }
        current
    }
}

/// Sentinel meaning "no Greedy timestamp yet" (the paper's `∞`).
pub const CM_TS_INFINITY: u64 = u64::MAX;

/// Transaction status values stored in [`TxShared::status`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxStatus {
    /// No transaction is currently running in this slot.
    Idle,
    /// A transaction attempt is executing.
    Active,
    /// The transaction is in its commit sequence.
    Committing,
    /// The last attempt was aborted and has not been restarted yet.
    Aborted,
}

impl TxStatus {
    fn from_u64(v: u64) -> TxStatus {
        match v {
            0 => TxStatus::Idle,
            1 => TxStatus::Active,
            2 => TxStatus::Committing,
            _ => TxStatus::Aborted,
        }
    }

    fn as_u64(self) -> u64 {
        match self {
            TxStatus::Idle => 0,
            TxStatus::Active => 1,
            TxStatus::Committing => 2,
            TxStatus::Aborted => 3,
        }
    }
}

/// Per-thread state that must be visible to *other* threads.
///
/// Everything a contention manager may need to know about a foreign
/// transaction lives here: its Greedy/two-phase timestamp, its Polka
/// priority, whether somebody asked it to abort, and how many times it has
/// aborted in a row (for back-off).
#[derive(Debug)]
pub struct TxShared {
    /// The owning thread slot (index into the registry).
    slot: ThreadSlot,
    /// Contention-manager timestamp (`cm-ts`); [`CM_TS_INFINITY`] means the
    /// transaction is still in the first (timid) phase.
    cm_ts: AtomicU64,
    /// Polka/Karma-style priority: number of locations accessed so far.
    priority: AtomicU64,
    /// Set by an attacker that decided to abort this transaction.
    abort_requested: AtomicBool,
    /// Number of successive aborts of the current transaction (reset on
    /// commit); drives randomized linear back-off.
    successive_aborts: AtomicU64,
    /// Number of times the current attempt's contention manager chose to
    /// wait; bounds Polka's wait budget per attempt.
    cm_waits: AtomicU64,
    /// Coarse transaction status, used by visible-reader style algorithms.
    status: AtomicU64,
    /// Contention telemetry counters (written by the owning thread only).
    telemetry: ContentionTelemetry,
}

impl TxShared {
    fn new(slot: ThreadSlot) -> Self {
        TxShared {
            slot,
            cm_ts: AtomicU64::new(CM_TS_INFINITY),
            priority: AtomicU64::new(0),
            abort_requested: AtomicBool::new(false),
            successive_aborts: AtomicU64::new(0),
            cm_waits: AtomicU64::new(0),
            status: AtomicU64::new(TxStatus::Idle.as_u64()),
            telemetry: ContentionTelemetry::default(),
        }
    }

    /// The thread slot this record belongs to.
    pub fn slot(&self) -> ThreadSlot {
        self.slot
    }

    /// Current contention-manager timestamp ([`CM_TS_INFINITY`] if unset).
    #[inline]
    pub fn cm_ts(&self) -> u64 {
        self.cm_ts.load(Ordering::Acquire)
    }

    /// Sets the contention-manager timestamp.
    #[inline]
    pub fn set_cm_ts(&self, ts: u64) {
        self.cm_ts.store(ts, Ordering::Release);
    }

    /// Current Polka-style priority.
    #[inline]
    pub fn priority(&self) -> u64 {
        self.priority.load(Ordering::Relaxed)
    }

    /// Sets the Polka-style priority.
    #[inline]
    pub fn set_priority(&self, p: u64) {
        self.priority.store(p, Ordering::Relaxed);
    }

    /// Increments the Polka-style priority by one.
    #[inline]
    pub fn bump_priority(&self) {
        self.priority.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests that the owning transaction aborts itself at its next
    /// transactional operation. Returns `true` when the request was newly
    /// delivered (the flag transitioned from clear to set) — the caller uses
    /// this to count *inflicted* remote aborts without double-counting
    /// re-requests while a previous one is still pending.
    #[inline]
    pub fn request_abort(&self) -> bool {
        !self.abort_requested.swap(true, Ordering::AcqRel)
    }

    /// Returns `true` if some other transaction requested an abort.
    #[inline]
    pub fn abort_requested(&self) -> bool {
        self.abort_requested.load(Ordering::Acquire)
    }

    /// Clears the abort request flag (called when a new attempt starts).
    #[inline]
    pub fn clear_abort_request(&self) {
        self.abort_requested.store(false, Ordering::Release);
    }

    /// Number of successive aborts of the currently running transaction.
    #[inline]
    pub fn successive_aborts(&self) -> u64 {
        self.successive_aborts.load(Ordering::Relaxed)
    }

    /// Records one more abort and returns the updated count.
    #[inline]
    pub fn record_abort(&self) -> u64 {
        self.successive_aborts.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Resets the successive abort counter (on commit).
    #[inline]
    pub fn reset_aborts(&self) {
        self.successive_aborts.store(0, Ordering::Relaxed);
    }

    /// Number of CM waits recorded for the current attempt.
    #[inline]
    pub fn cm_wait_count(&self) -> u64 {
        self.cm_waits.load(Ordering::Relaxed)
    }

    /// Records one more CM wait of the current attempt.
    #[inline]
    pub fn bump_cm_waits(&self) {
        self.cm_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Resets the per-attempt CM wait counter (called from `on_start`).
    #[inline]
    pub fn reset_cm_waits(&self) {
        self.cm_waits.store(0, Ordering::Relaxed);
    }

    /// The thread's contention telemetry counters.
    #[inline]
    pub fn telemetry(&self) -> &ContentionTelemetry {
        &self.telemetry
    }

    /// Current coarse status.
    pub fn status(&self) -> TxStatus {
        TxStatus::from_u64(self.status.load(Ordering::Acquire))
    }

    /// Publishes a new coarse status.
    pub fn set_status(&self, status: TxStatus) {
        self.status.store(status.as_u64(), Ordering::Release);
    }
}

/// Identifier of a registered thread (a dense index starting at zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadSlot(usize);

impl ThreadSlot {
    /// Creates a slot from a raw index. Mostly useful in tests.
    pub const fn new(index: usize) -> Self {
        ThreadSlot(index)
    }

    /// The raw slot index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ThreadSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Maximum number of threads a single STM instance supports.
///
/// The bound exists because visible-reader bitmaps (used by the RSTM
/// baseline) store one bit per thread in a single word.
pub const MAX_THREADS: usize = 64;

/// Registry of per-thread shared records.
#[derive(Debug)]
pub struct ThreadRegistry {
    slots: Vec<Arc<TxShared>>,
    next: AtomicUsize,
}

impl ThreadRegistry {
    /// Creates a registry with capacity for [`MAX_THREADS`] threads.
    pub fn new() -> Self {
        let slots = (0..MAX_THREADS)
            .map(|i| Arc::new(TxShared::new(ThreadSlot(i))))
            .collect();
        ThreadRegistry {
            slots,
            next: AtomicUsize::new(0),
        }
    }

    /// Registers the calling thread and returns its slot.
    ///
    /// # Errors
    ///
    /// Returns [`StmError::TooManyThreads`] once [`MAX_THREADS`] slots have
    /// been handed out.
    pub fn register(&self) -> Result<ThreadSlot, StmError> {
        let idx = self.next.fetch_add(1, Ordering::AcqRel);
        if idx >= MAX_THREADS {
            return Err(StmError::TooManyThreads { max: MAX_THREADS });
        }
        Ok(ThreadSlot(idx))
    }

    /// Number of slots handed out so far.
    pub fn registered(&self) -> usize {
        self.next.load(Ordering::Acquire).min(MAX_THREADS)
    }

    /// Shared record for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn shared(&self, slot: ThreadSlot) -> &Arc<TxShared> {
        &self.slots[slot.index()]
    }

    /// Iterates over the shared records of all slots handed out so far.
    pub fn iter_registered(&self) -> impl Iterator<Item = &Arc<TxShared>> {
        self.slots.iter().take(self.registered())
    }
}

impl Default for ThreadRegistry {
    fn default() -> Self {
        ThreadRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_increments() {
        let c = GlobalClock::new();
        assert_eq!(c.read(), 0);
        assert_eq!(c.increment_and_get(), 1);
        assert_eq!(c.increment_and_get(), 2);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn clock_advance_to_is_monotone() {
        let c = GlobalClock::new();
        assert_eq!(c.advance_to(10), 10);
        assert_eq!(c.advance_to(5), 10);
        assert_eq!(c.read(), 10);
    }

    #[test]
    fn registry_hands_out_dense_slots() {
        let r = ThreadRegistry::new();
        let a = r.register().unwrap();
        let b = r.register().unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(r.registered(), 2);
        assert_eq!(r.shared(a).slot(), a);
    }

    #[test]
    fn registry_rejects_too_many_threads() {
        let r = ThreadRegistry::new();
        for _ in 0..MAX_THREADS {
            r.register().unwrap();
        }
        assert!(matches!(r.register(), Err(StmError::TooManyThreads { .. })));
    }

    #[test]
    fn tx_shared_flags_round_trip() {
        let r = ThreadRegistry::new();
        let slot = r.register().unwrap();
        let shared = r.shared(slot);
        assert_eq!(shared.cm_ts(), CM_TS_INFINITY);
        shared.set_cm_ts(7);
        assert_eq!(shared.cm_ts(), 7);

        assert!(!shared.abort_requested());
        assert!(shared.request_abort(), "first request is newly delivered");
        assert!(shared.abort_requested());
        assert!(
            !shared.request_abort(),
            "re-request while pending is not a fresh delivery"
        );
        shared.clear_abort_request();
        assert!(!shared.abort_requested());

        assert_eq!(shared.cm_wait_count(), 0);
        shared.bump_cm_waits();
        shared.bump_cm_waits();
        assert_eq!(shared.cm_wait_count(), 2);
        shared.reset_cm_waits();
        assert_eq!(shared.cm_wait_count(), 0);

        assert_eq!(shared.record_abort(), 1);
        assert_eq!(shared.record_abort(), 2);
        shared.reset_aborts();
        assert_eq!(shared.successive_aborts(), 0);

        shared.set_status(TxStatus::Committing);
        assert_eq!(shared.status(), TxStatus::Committing);

        shared.set_priority(3);
        shared.bump_priority();
        assert_eq!(shared.priority(), 4);
    }

    #[test]
    fn clock_is_shared_across_threads() {
        let c = Arc::new(GlobalClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.increment_and_get();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read(), 4000);
    }
}
