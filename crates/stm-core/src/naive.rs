//! A trivial single-global-lock "STM".
//!
//! [`NaiveGlobalLockTm`] serialises every non-read-only transaction behind
//! one spin lock. It exists for two reasons:
//!
//! 1. it exercises the [`crate::tm::ThreadContext`] driver in this crate's
//!    own tests without depending on the real algorithms, and
//! 2. it is the "all shared objects protected by a single global lock"
//!    strawman the paper's introduction contrasts TMs against, so the
//!    harness can use it as a sanity baseline.
//!
//! It is intentionally *not* efficient: writes take the global lock eagerly
//! and hold it until commit.

use crate::sync::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::clock::{ThreadRegistry, ThreadSlot};
use crate::cm::{ContentionManager, Timid};
use crate::config::HeapConfig;
use crate::error::TxResult;
use crate::heap::TmHeap;
use crate::logs::WriteLog;
use crate::tm::{DescriptorCore, TmAlgorithm, TxDescriptor};
use crate::word::{Addr, Word};

/// Transaction descriptor of [`NaiveGlobalLockTm`].
#[derive(Debug)]
pub struct NaiveDescriptor {
    core: DescriptorCore,
    write_log: WriteLog,
    holds_lock: bool,
}

impl TxDescriptor for NaiveDescriptor {
    fn core(&self) -> &DescriptorCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut DescriptorCore {
        &mut self.core
    }

    fn is_read_only(&self) -> bool {
        self.write_log.is_empty()
    }
}

/// A single-global-lock transactional memory (sanity baseline).
#[derive(Debug)]
pub struct NaiveGlobalLockTm {
    heap: TmHeap,
    registry: ThreadRegistry,
    cm: Timid,
    lock: AtomicBool,
}

impl NaiveGlobalLockTm {
    /// Creates an instance with its own heap.
    pub fn new(heap_config: HeapConfig) -> Self {
        NaiveGlobalLockTm {
            heap: TmHeap::new(heap_config),
            registry: ThreadRegistry::new(),
            cm: Timid::new(),
            lock: AtomicBool::new(false),
        }
    }

    fn acquire_global_lock(&self, desc: &mut NaiveDescriptor) {
        if desc.holds_lock {
            return;
        }
        while self
            .lock
            // sync: AcqRel on success — Acquire makes the lock holder see
            // the previous holder's writes, Release is not needed for the
            // acquisition itself but comes free with the RMW; Relaxed on
            // failure because a failed attempt only spins again.
            .compare_exchange_weak(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            crate::sync::spin_loop();
        }
        desc.holds_lock = true;
    }

    fn release_global_lock(&self, desc: &mut NaiveDescriptor) {
        if desc.holds_lock {
            // sync: Release publishes the critical-section writes to the
            // next Acquire lock holder.
            self.lock.store(false, Ordering::Release);
            desc.holds_lock = false;
        }
    }
}

impl TmAlgorithm for NaiveGlobalLockTm {
    type Descriptor = NaiveDescriptor;

    fn name(&self) -> &'static str {
        "global-lock"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn contention_manager(&self) -> &dyn ContentionManager {
        &self.cm
    }

    fn create_descriptor(&self, slot: ThreadSlot) -> NaiveDescriptor {
        NaiveDescriptor {
            core: DescriptorCore::new(slot, Arc::clone(self.registry.shared(slot))),
            write_log: WriteLog::new(),
            holds_lock: false,
        }
    }

    fn begin(&self, desc: &mut NaiveDescriptor, _is_restart: bool) {
        desc.core.reset_attempt();
        desc.write_log.clear();
        // A single global lock serialises *all* transactions (including
        // read-only ones): this is the strawman baseline, not an optimised
        // STM, and taking the lock up front is what makes it trivially
        // opaque.
        self.acquire_global_lock(desc);
    }

    fn read(&self, desc: &mut NaiveDescriptor, addr: Addr) -> TxResult<Word> {
        desc.core.attempt_reads += 1;
        if let Some(value) = desc.write_log.lookup(addr) {
            return Ok(value);
        }
        // The global lock is held for the whole transaction, so reading the
        // committed state directly is trivially consistent.
        Ok(self.heap.load(addr))
    }

    fn write(&self, desc: &mut NaiveDescriptor, addr: Addr, value: Word) -> TxResult<()> {
        desc.core.attempt_writes += 1;
        desc.write_log.record(addr, value, 0, 0);
        Ok(())
    }

    fn commit(&self, desc: &mut NaiveDescriptor) -> TxResult<()> {
        for entry in desc.write_log.iter() {
            self.heap.store(entry.addr, entry.value);
        }
        desc.write_log.clear();
        self.release_global_lock(desc);
        Ok(())
    }

    fn rollback(&self, desc: &mut NaiveDescriptor) {
        desc.write_log.clear();
        self.release_global_lock(desc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::ThreadContext;

    #[test]
    fn counter_increments_across_threads() {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for _ in 0..250 {
                        ctx.atomically(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(stm.heap().load(addr), 1000);
    }

    #[test]
    fn rollback_releases_the_global_lock() {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
        let _ = ctx.atomically(|tx| {
            tx.write(addr, 9)?;
            tx.retry::<()>()
        });
        // If the lock leaked, this second transaction would deadlock.
        let mut ctx2 = ThreadContext::register(stm);
        ctx2.atomically(|tx| tx.write(addr, 3)).unwrap();
        assert_eq!(ctx2.read_word(addr).unwrap(), 3);
    }

    #[test]
    fn read_after_write_sees_own_update() {
        let stm = Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(stm);
        let observed = ctx
            .atomically(|tx| {
                tx.write(addr, 42)?;
                tx.read(addr)
            })
            .unwrap();
        assert_eq!(observed, 42);
    }
}
