//! Test support for contention-management rigs.
//!
//! [`RecordingCm`] wraps any [`ContentionManager`], records every `resolve`
//! outcome, and can run a caller-supplied hook *before* returning the
//! decision to the STM. The deterministic conflict rig
//! (`tests/contention_telemetry.rs` in the workspace root) combines it with
//! a "stuck lock" staged directly in an STM's lock table: the hook releases
//! the stuck lock the moment the manager decides `AbortOther`, so the
//! attacker's acquisition loop observes exactly one resolution per decision
//! and the whole schedule is single-threaded and deterministic — no timing,
//! no flakiness.
//!
//! This module is plain `pub` (not `cfg(test)`) because the rigs live in
//! integration tests of other crates; it is not part of the performance
//! path.

use std::sync::Mutex;

use crate::clock::TxShared;
use crate::cm::{CmHandle, ContentionManager, Resolution};

/// Type of the hook invoked after every delegated `resolve`, with the inner
/// manager's decision, before that decision reaches the STM.
pub type ResolveHook = Box<dyn Fn(Resolution) + Send + Sync>;

/// A contention manager decorator that logs every resolution.
pub struct RecordingCm {
    inner: CmHandle,
    log: Mutex<Vec<Resolution>>,
    hook: Mutex<Option<ResolveHook>>,
}

impl RecordingCm {
    /// Wraps `inner`, recording its resolutions.
    pub fn new(inner: CmHandle) -> Self {
        RecordingCm {
            inner,
            log: Mutex::new(Vec::new()),
            hook: Mutex::new(None),
        }
    }

    /// Installs a hook that runs after every delegated `resolve` (with its
    /// decision) before the decision is returned to the STM. Rigs use this
    /// to release a staged stuck lock on `AbortOther`, making the conflict
    /// schedule fully deterministic.
    pub fn set_resolve_hook(&self, hook: ResolveHook) {
        *self.hook.lock().unwrap() = Some(hook);
    }

    /// Removes the installed hook (dropping whatever it captured).
    pub fn clear_resolve_hook(&self) {
        *self.hook.lock().unwrap() = None;
    }

    /// The recorded resolution sequence so far.
    pub fn resolutions(&self) -> Vec<Resolution> {
        self.log.lock().unwrap().clone()
    }

    /// Clears the recorded sequence.
    pub fn clear(&self) {
        self.log.lock().unwrap().clear();
    }
}

impl std::fmt::Debug for RecordingCm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingCm")
            .field("inner", &self.inner.name())
            .field("recorded", &self.log.lock().unwrap().len())
            .finish()
    }
}

impl ContentionManager for RecordingCm {
    fn on_start(&self, me: &TxShared, is_restart: bool) {
        self.inner.on_start(me, is_restart);
    }

    fn on_write(&self, me: &TxShared, writes_so_far: usize) {
        self.inner.on_write(me, writes_so_far);
    }

    fn on_read(&self, me: &TxShared, reads_so_far: usize) {
        self.inner.on_read(me, reads_so_far);
    }

    fn resolve(&self, me: &TxShared, owner: &TxShared) -> Resolution {
        let resolution = self.inner.resolve(me, owner);
        self.log.lock().unwrap().push(resolution);
        if let Some(hook) = &*self.hook.lock().unwrap() {
            hook(resolution);
        }
        resolution
    }

    fn on_rollback(&self, me: &TxShared) {
        self.inner.on_rollback(me);
    }

    fn on_commit(&self, me: &TxShared) {
        self.inner.on_commit(me);
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ThreadRegistry;
    use crate::cm::Timid;
    use crate::sync::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn records_delegated_resolutions_and_runs_the_hook() {
        let cm = RecordingCm::new(Arc::new(Timid::new()));
        let hook_calls = Arc::new(AtomicUsize::new(0));
        let calls = Arc::clone(&hook_calls);
        cm.set_resolve_hook(Box::new(move |resolution| {
            assert_eq!(resolution, Resolution::AbortSelf);
            // sync: SeqCst — test counter, strongest ordering for clarity.
            calls.fetch_add(1, Ordering::SeqCst);
        }));
        let registry = ThreadRegistry::new();
        let a = registry.register().unwrap();
        let b = registry.register().unwrap();
        assert_eq!(
            cm.resolve(registry.shared(a), registry.shared(b)),
            Resolution::AbortSelf
        );
        assert_eq!(cm.resolutions(), vec![Resolution::AbortSelf]);
        // sync: SeqCst — test counter.
        assert_eq!(hook_calls.load(Ordering::SeqCst), 1);
        assert_eq!(cm.name(), "timid");
        cm.clear_resolve_hook();
        cm.clear();
        cm.resolve(registry.shared(a), registry.shared(b));
        assert_eq!(cm.resolutions().len(), 1);
        // sync: SeqCst — test counter.
        assert_eq!(hook_calls.load(Ordering::SeqCst), 1, "hook was cleared");
    }
}
