//! Per-thread and aggregated transaction statistics.
//!
//! Every [`crate::tm::ThreadContext`] keeps a [`TxStats`] record; the
//! benchmark harness aggregates them into a [`StatsAggregate`] to report
//! throughput, abort ratios and abort-reason breakdowns, which is what the
//! paper's figures are built from.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::error::AbortReason;
use crate::telemetry::{ContentionCounters, ContentionTelemetry};

/// Number of buckets in a [`RetryHistogram`].
pub const RETRY_BUCKETS: usize = 6;

/// Labels of the [`RetryHistogram`] buckets (attempts per committed
/// transaction).
pub const RETRY_BUCKET_LABELS: [&str; RETRY_BUCKETS] = ["1", "2", "3-4", "5-8", "9-16", "17+"];

/// Histogram of attempts-per-committed-transaction (retry depth).
///
/// One committed transaction that needed `a` attempts (1 = first try)
/// increments one fixed bucket, so recording is allocation-free and O(1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetryHistogram {
    buckets: [u64; RETRY_BUCKETS],
}

impl RetryHistogram {
    /// Records one committed transaction that needed `attempts` attempts
    /// (at least 1).
    pub fn record(&mut self, attempts: u64) {
        let bucket = match attempts {
            0 | 1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        };
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
    }

    /// The bucket counts, ordered as [`RETRY_BUCKET_LABELS`].
    pub fn buckets(&self) -> &[u64; RETRY_BUCKETS] {
        &self.buckets
    }

    /// Total number of recorded commits.
    pub fn total(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &b| acc.saturating_add(b))
    }

    /// Merges another histogram into this one, saturating on overflow.
    pub fn merge_saturating(&mut self, other: &RetryHistogram) {
        for (bucket, other_bucket) in self.buckets.iter_mut().zip(&other.buckets) {
            *bucket = bucket.saturating_add(*other_bucket);
        }
    }
}

impl fmt::Display for RetryHistogram {
    /// Compact `label:count` pairs, skipping empty buckets (`-` when the
    /// histogram is empty) — the form the harness tables print.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (label, count) in RETRY_BUCKET_LABELS.iter().zip(&self.buckets) {
            if *count == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{label}:{count}")?;
            first = false;
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// Statistics of a single thread's transactional activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Number of committed transactions.
    pub commits: u64,
    /// Number of committed read-only transactions (subset of `commits`).
    pub read_only_commits: u64,
    /// Number of aborted transaction attempts.
    pub aborts: u64,
    /// Aborts broken down by reason.
    pub aborts_by_reason: BTreeMap<&'static str, u64>,
    /// Number of transactional read operations (across all attempts).
    pub reads: u64,
    /// Number of transactional write operations (across all attempts).
    pub writes: u64,
    /// Number of read-set validations performed.
    pub validations: u64,
    /// Number of read-set extension attempts that succeeded.
    pub extensions: u64,
    /// Contention telemetry: CM resolutions per conflict site, wait/back-off
    /// time and the inflicted/received remote-abort pair.
    pub contention: ContentionCounters,
    /// Retry depth (attempts per committed transaction).
    pub retries: RetryHistogram,
}

impl TxStats {
    /// Creates an all-zero record.
    pub fn new() -> Self {
        TxStats::default()
    }

    /// Records a committed transaction.
    pub fn record_commit(&mut self, read_only: bool) {
        self.commits += 1;
        if read_only {
            self.read_only_commits += 1;
        }
    }

    /// Records an aborted attempt with its reason.
    pub fn record_abort(&mut self, reason: AbortReason) {
        self.aborts += 1;
        *self.aborts_by_reason.entry(reason.label()).or_insert(0) += 1;
        if reason == AbortReason::RemoteAbort {
            self.contention.remote_aborts_received =
                self.contention.remote_aborts_received.saturating_add(1);
        }
    }

    /// Drains the live contention telemetry counters of `telemetry` into
    /// this record (the counters are reset in the process).
    pub fn absorb_telemetry(&mut self, telemetry: &ContentionTelemetry) {
        telemetry.drain_into(&mut self.contention);
    }

    /// Total attempts (commits + aborts).
    pub fn attempts(&self) -> u64 {
        self.commits + self.aborts
    }

    /// Fraction of attempts that aborted, in `[0, 1]`; zero when no attempt
    /// was made.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Merges another record into this one. All counters saturate instead
    /// of wrapping, so adversarial inputs (or very long runs) cannot make an
    /// aggregate silently wrap around zero.
    pub fn merge(&mut self, other: &TxStats) {
        self.commits = self.commits.saturating_add(other.commits);
        self.read_only_commits = self
            .read_only_commits
            .saturating_add(other.read_only_commits);
        self.aborts = self.aborts.saturating_add(other.aborts);
        self.reads = self.reads.saturating_add(other.reads);
        self.writes = self.writes.saturating_add(other.writes);
        self.validations = self.validations.saturating_add(other.validations);
        self.extensions = self.extensions.saturating_add(other.extensions);
        for (reason, count) in &other.aborts_by_reason {
            let entry = self.aborts_by_reason.entry(reason).or_insert(0);
            *entry = entry.saturating_add(*count);
        }
        self.contention.merge_saturating(&other.contention);
        self.retries.merge_saturating(&other.retries);
    }
}

impl fmt::Display for TxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} (ro={}) aborts={} abort-ratio={:.3} reads={} writes={}",
            self.commits,
            self.read_only_commits,
            self.aborts,
            self.abort_ratio(),
            self.reads,
            self.writes
        )
    }
}

/// Aggregated statistics across the threads of one benchmark run.
#[derive(Clone, Debug, Default)]
pub struct StatsAggregate {
    /// Sum of per-thread statistics.
    pub totals: TxStats,
    /// Number of threads that contributed.
    pub threads: usize,
    /// Wall-clock duration of the measured interval.
    pub elapsed: Duration,
}

impl StatsAggregate {
    /// Builds an aggregate from per-thread records and the measured
    /// wall-clock duration.
    pub fn collect<'a, I>(stats: I, elapsed: Duration) -> Self
    where
        I: IntoIterator<Item = &'a TxStats>,
    {
        let mut totals = TxStats::new();
        let mut threads = 0;
        for s in stats {
            totals.merge(s);
            threads += 1;
        }
        StatsAggregate {
            totals,
            threads,
            elapsed,
        }
    }

    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.totals.commits as f64 / secs
        }
    }

    /// Abort ratio across all threads.
    pub fn abort_ratio(&self) -> f64 {
        self.totals.abort_ratio()
    }

    /// Total thread-time of the run in nanoseconds (`elapsed × threads`),
    /// the denominator of the share metrics below.
    fn thread_time_nanos(&self) -> f64 {
        self.elapsed.as_nanos() as f64 * self.threads as f64
    }

    /// Fraction of total thread-time spent inside CM wait loops, in
    /// `[0, ~1]`; zero when the run measured no time.
    pub fn wait_share(&self) -> f64 {
        let budget = self.thread_time_nanos();
        if budget <= 0.0 {
            0.0
        } else {
            self.totals.contention.cm_wait_nanos as f64 / budget
        }
    }

    /// Fraction of total thread-time spent spinning in back-off, in
    /// `[0, ~1]`; zero when the run measured no time. Overlaps with
    /// [`StatsAggregate::wait_share`] for managers that back off inside
    /// their wait loop (Polka).
    pub fn backoff_share(&self) -> f64 {
        let budget = self.thread_time_nanos();
        if budget <= 0.0 {
            0.0
        } else {
            self.totals.contention.backoff_nanos as f64 / budget
        }
    }
}

impl fmt::Display for StatsAggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads, {:.1} tx/s, {} ({:.2?})",
            self.threads,
            self.throughput(),
            self.totals,
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_abort_counters() {
        let mut s = TxStats::new();
        s.record_commit(true);
        s.record_commit(false);
        s.record_abort(AbortReason::WriteConflict);
        assert_eq!(s.commits, 2);
        assert_eq!(s.read_only_commits, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.attempts(), 3);
        assert!((s.abort_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.aborts_by_reason.get("write-conflict"), Some(&1));
    }

    #[test]
    fn abort_ratio_of_empty_stats_is_zero() {
        assert_eq!(TxStats::new().abort_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = TxStats::new();
        a.record_commit(false);
        a.reads = 10;
        a.record_abort(AbortReason::ReadValidation);
        let mut b = TxStats::new();
        b.record_commit(true);
        b.reads = 5;
        b.writes = 3;
        b.record_abort(AbortReason::ReadValidation);
        b.record_abort(AbortReason::WriteConflict);
        a.merge(&b);
        assert_eq!(a.commits, 2);
        assert_eq!(a.reads, 15);
        assert_eq!(a.writes, 3);
        assert_eq!(a.aborts, 3);
        assert_eq!(a.aborts_by_reason.get("read-validation"), Some(&2));
    }

    #[test]
    fn aggregate_throughput() {
        let mut a = TxStats::new();
        a.commits = 500;
        let mut b = TxStats::new();
        b.commits = 500;
        let agg = StatsAggregate::collect([&a, &b], Duration::from_secs(2));
        assert_eq!(agg.threads, 2);
        assert!((agg.throughput() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_with_zero_duration_reports_zero_throughput() {
        let a = TxStats::new();
        let agg = StatsAggregate::collect([&a], Duration::ZERO);
        assert_eq!(agg.throughput(), 0.0);
    }

    #[test]
    fn merge_with_non_overlapping_and_overlapping_reason_keys() {
        let mut a = TxStats::new();
        a.record_abort(AbortReason::ReadValidation);
        a.record_abort(AbortReason::Explicit);
        let mut b = TxStats::new();
        b.record_abort(AbortReason::ReadValidation); // overlapping key
        b.record_abort(AbortReason::WriteConflict); // non-overlapping key
        b.record_abort(AbortReason::RemoteAbort); // non-overlapping key
        a.merge(&b);
        assert_eq!(a.aborts, 5);
        assert_eq!(a.aborts_by_reason.get("read-validation"), Some(&2));
        assert_eq!(a.aborts_by_reason.get("explicit"), Some(&1));
        assert_eq!(a.aborts_by_reason.get("write-conflict"), Some(&1));
        assert_eq!(a.aborts_by_reason.get("remote-abort"), Some(&1));
        // aborts stays the sum over the reason breakdown.
        let by_reason: u64 = a.aborts_by_reason.values().sum();
        assert_eq!(a.aborts, by_reason);
        // The remote abort was mirrored into the contention counters.
        assert_eq!(a.contention.remote_aborts_received, 1);
    }

    #[test]
    fn merge_saturates_on_adversarial_inputs() {
        let mut a = TxStats::new();
        a.commits = u64::MAX;
        a.aborts = u64::MAX - 1;
        a.aborts_by_reason.insert("write-conflict", u64::MAX);
        a.contention.cm_wait_nanos = u64::MAX;
        a.contention.remote_aborts_inflicted = u64::MAX;
        a.retries.record(1);
        let mut b = TxStats::new();
        b.commits = 5;
        b.aborts = 5;
        b.aborts_by_reason.insert("write-conflict", 5);
        b.contention.cm_wait_nanos = 5;
        b.contention.backoff_spins = 5;
        b.contention.remote_aborts_inflicted = 5;
        let mut big = RetryHistogram::default();
        for _ in 0..3 {
            big.record(2);
        }
        b.retries = big;
        a.merge(&b);
        assert_eq!(a.commits, u64::MAX, "commits must saturate, not wrap");
        assert_eq!(a.aborts, u64::MAX);
        assert_eq!(a.aborts_by_reason.get("write-conflict"), Some(&u64::MAX));
        assert_eq!(a.contention.cm_wait_nanos, u64::MAX);
        assert_eq!(a.contention.backoff_spins, 5);
        assert_eq!(a.contention.remote_aborts_inflicted, u64::MAX);
        assert_eq!(a.retries.total(), 4);
    }

    #[test]
    fn retry_histogram_buckets_and_total() {
        let mut h = RetryHistogram::default();
        for attempts in [1, 1, 2, 3, 4, 5, 8, 9, 16, 17, 1000] {
            h.record(attempts);
        }
        assert_eq!(h.buckets(), &[2, 1, 2, 2, 2, 2]);
        assert_eq!(h.total(), 11);
        let display = h.to_string();
        assert!(display.contains("3-4:2"), "{display}");
        assert!(display.contains("17+:2"), "{display}");
        // A zero attempt count (defensive) lands in the first bucket.
        h.record(0);
        assert_eq!(h.buckets()[0], 3);
    }

    #[test]
    fn retry_histogram_display_skips_empty_buckets() {
        let mut h = RetryHistogram::default();
        assert_eq!(h.to_string(), "-");
        h.record(1);
        h.record(1);
        h.record(1);
        h.record(3);
        assert_eq!(h.to_string(), "1:3 3-4:1");
    }

    #[test]
    fn aggregate_share_metrics() {
        let mut a = TxStats::new();
        a.contention.cm_wait_nanos = 500_000_000; // 0.5 s
        a.contention.backoff_nanos = 250_000_000; // 0.25 s
        let b = TxStats::new();
        let agg = StatsAggregate::collect([&a, &b], Duration::from_secs(1));
        // Two threads ran for one second: 2 s of thread-time.
        assert!((agg.wait_share() - 0.25).abs() < 1e-9);
        assert!((agg.backoff_share() - 0.125).abs() < 1e-9);
        let empty = StatsAggregate::collect([&a], Duration::ZERO);
        assert_eq!(empty.wait_share(), 0.0);
        assert_eq!(empty.backoff_share(), 0.0);
    }

    #[test]
    fn absorb_telemetry_folds_and_resets_the_live_counters() {
        use crate::cm::Resolution;
        use crate::telemetry::{ConflictSite, ContentionTelemetry};
        let telemetry = ContentionTelemetry::default();
        telemetry.record_resolution(ConflictSite::Write, Resolution::AbortSelf);
        telemetry.record_backoff(3, Duration::from_nanos(30));
        let mut stats = TxStats::new();
        stats.absorb_telemetry(&telemetry);
        assert_eq!(
            stats
                .contention
                .resolved(ConflictSite::Write, Resolution::AbortSelf),
            1
        );
        assert_eq!(stats.contention.backoff_spins, 3);
        // Draining twice does not double-count.
        stats.absorb_telemetry(&telemetry);
        assert_eq!(stats.contention.backoff_spins, 3);
    }

    #[test]
    fn display_impls_are_nonempty() {
        let mut s = TxStats::new();
        s.record_commit(false);
        assert!(!s.to_string().is_empty());
        let agg = StatsAggregate::collect([&s], Duration::from_millis(10));
        assert!(!agg.to_string().is_empty());
    }
}
