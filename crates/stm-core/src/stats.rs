//! Per-thread and aggregated transaction statistics.
//!
//! Every [`crate::tm::ThreadContext`] keeps a [`TxStats`] record; the
//! benchmark harness aggregates them into a [`StatsAggregate`] to report
//! throughput, abort ratios and abort-reason breakdowns, which is what the
//! paper's figures are built from.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::error::AbortReason;

/// Statistics of a single thread's transactional activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Number of committed transactions.
    pub commits: u64,
    /// Number of committed read-only transactions (subset of `commits`).
    pub read_only_commits: u64,
    /// Number of aborted transaction attempts.
    pub aborts: u64,
    /// Aborts broken down by reason.
    pub aborts_by_reason: BTreeMap<&'static str, u64>,
    /// Number of transactional read operations (across all attempts).
    pub reads: u64,
    /// Number of transactional write operations (across all attempts).
    pub writes: u64,
    /// Number of read-set validations performed.
    pub validations: u64,
    /// Number of read-set extension attempts that succeeded.
    pub extensions: u64,
}

impl TxStats {
    /// Creates an all-zero record.
    pub fn new() -> Self {
        TxStats::default()
    }

    /// Records a committed transaction.
    pub fn record_commit(&mut self, read_only: bool) {
        self.commits += 1;
        if read_only {
            self.read_only_commits += 1;
        }
    }

    /// Records an aborted attempt with its reason.
    pub fn record_abort(&mut self, reason: AbortReason) {
        self.aborts += 1;
        *self.aborts_by_reason.entry(reason.label()).or_insert(0) += 1;
    }

    /// Total attempts (commits + aborts).
    pub fn attempts(&self) -> u64 {
        self.commits + self.aborts
    }

    /// Fraction of attempts that aborted, in `[0, 1]`; zero when no attempt
    /// was made.
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &TxStats) {
        self.commits += other.commits;
        self.read_only_commits += other.read_only_commits;
        self.aborts += other.aborts;
        self.reads += other.reads;
        self.writes += other.writes;
        self.validations += other.validations;
        self.extensions += other.extensions;
        for (reason, count) in &other.aborts_by_reason {
            *self.aborts_by_reason.entry(reason).or_insert(0) += count;
        }
    }
}

impl fmt::Display for TxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} (ro={}) aborts={} abort-ratio={:.3} reads={} writes={}",
            self.commits,
            self.read_only_commits,
            self.aborts,
            self.abort_ratio(),
            self.reads,
            self.writes
        )
    }
}

/// Aggregated statistics across the threads of one benchmark run.
#[derive(Clone, Debug, Default)]
pub struct StatsAggregate {
    /// Sum of per-thread statistics.
    pub totals: TxStats,
    /// Number of threads that contributed.
    pub threads: usize,
    /// Wall-clock duration of the measured interval.
    pub elapsed: Duration,
}

impl StatsAggregate {
    /// Builds an aggregate from per-thread records and the measured
    /// wall-clock duration.
    pub fn collect<'a, I>(stats: I, elapsed: Duration) -> Self
    where
        I: IntoIterator<Item = &'a TxStats>,
    {
        let mut totals = TxStats::new();
        let mut threads = 0;
        for s in stats {
            totals.merge(s);
            threads += 1;
        }
        StatsAggregate {
            totals,
            threads,
            elapsed,
        }
    }

    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.totals.commits as f64 / secs
        }
    }

    /// Abort ratio across all threads.
    pub fn abort_ratio(&self) -> f64 {
        self.totals.abort_ratio()
    }
}

impl fmt::Display for StatsAggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads, {:.1} tx/s, {} ({:.2?})",
            self.threads,
            self.throughput(),
            self.totals,
            self.elapsed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_abort_counters() {
        let mut s = TxStats::new();
        s.record_commit(true);
        s.record_commit(false);
        s.record_abort(AbortReason::WriteConflict);
        assert_eq!(s.commits, 2);
        assert_eq!(s.read_only_commits, 1);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.attempts(), 3);
        assert!((s.abort_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.aborts_by_reason.get("write-conflict"), Some(&1));
    }

    #[test]
    fn abort_ratio_of_empty_stats_is_zero() {
        assert_eq!(TxStats::new().abort_ratio(), 0.0);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = TxStats::new();
        a.record_commit(false);
        a.reads = 10;
        a.record_abort(AbortReason::ReadValidation);
        let mut b = TxStats::new();
        b.record_commit(true);
        b.reads = 5;
        b.writes = 3;
        b.record_abort(AbortReason::ReadValidation);
        b.record_abort(AbortReason::WriteConflict);
        a.merge(&b);
        assert_eq!(a.commits, 2);
        assert_eq!(a.reads, 15);
        assert_eq!(a.writes, 3);
        assert_eq!(a.aborts, 3);
        assert_eq!(a.aborts_by_reason.get("read-validation"), Some(&2));
    }

    #[test]
    fn aggregate_throughput() {
        let mut a = TxStats::new();
        a.commits = 500;
        let mut b = TxStats::new();
        b.commits = 500;
        let agg = StatsAggregate::collect([&a, &b], Duration::from_secs(2));
        assert_eq!(agg.threads, 2);
        assert!((agg.throughput() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_with_zero_duration_reports_zero_throughput() {
        let a = TxStats::new();
        let agg = StatsAggregate::collect([&a], Duration::ZERO);
        assert_eq!(agg.throughput(), 0.0);
    }

    #[test]
    fn display_impls_are_nonempty() {
        let mut s = TxStats::new();
        s.record_commit(false);
        assert!(!s.to_string().is_empty());
        let agg = StatsAggregate::collect([&s], Duration::from_millis(10));
        assert!(!agg.to_string().is_empty());
    }
}
