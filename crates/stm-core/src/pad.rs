//! Cache-line padding for hot shared state.
//!
//! All of the scaling-relevant shared words in this reproduction — the
//! global commit clock, the per-thread [`crate::clock::TxShared`] records,
//! and the lock-table entries — are small (8–32 bytes). Packed naturally,
//! unrelated hot words land on the same 64-byte cache line and every write
//! by one thread invalidates the line in every other core's cache even
//! though the *data* does not conflict (false sharing). [`CachePadded`]
//! rounds a value up to its own cache line so that coherence traffic is
//! only paid for true sharing.
//!
//! The wrapper is deliberately minimal: `#[repr(align(64))]` plus
//! `Deref`/`DerefMut`, so `CachePadded<AtomicU64>` is a drop-in replacement
//! for `AtomicU64` at every call site.

use std::ops::{Deref, DerefMut};

/// Size (and alignment) of the padding target in bytes.
///
/// 64 bytes is the L1/L2 line size on contemporary x86-64 and most AArch64
/// parts. Some CPUs prefetch line *pairs* (128 bytes); we follow the
/// paper's platform (x86, 64-byte lines) and keep the memory overhead of
/// padded lock tables at 4× rather than 8×.
pub const CACHE_LINE_BYTES: usize = 64;

/// Pads and aligns a value to [`CACHE_LINE_BYTES`] so it occupies its own
/// cache line(s).
///
/// Values larger than one line are aligned to a line boundary and padded to
/// a multiple of the line size (guaranteed by `repr(align)` rounding the
/// struct size up to its alignment).
#[derive(Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.value.fmt(f)
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        CachePadded::new(self.value.clone())
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{AtomicU64, Ordering};
    use std::mem::{align_of, size_of};

    #[test]
    fn small_values_occupy_exactly_one_line() {
        assert_eq!(align_of::<CachePadded<AtomicU64>>(), CACHE_LINE_BYTES);
        assert_eq!(size_of::<CachePadded<AtomicU64>>(), CACHE_LINE_BYTES);
        assert_eq!(size_of::<CachePadded<u8>>(), CACHE_LINE_BYTES);
    }

    #[test]
    fn large_values_round_up_to_whole_lines() {
        assert_eq!(
            size_of::<CachePadded<[u64; 9]>>(),
            2 * CACHE_LINE_BYTES,
            "a 72-byte payload must take two full lines"
        );
        assert_eq!(align_of::<CachePadded<[u64; 9]>>(), CACHE_LINE_BYTES);
    }

    #[test]
    fn padded_slices_place_elements_on_distinct_lines() {
        let pair = [CachePadded::new(0u64), CachePadded::new(0u64)];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert_eq!(a % CACHE_LINE_BYTES, 0);
        assert_eq!(b - a, size_of::<CachePadded<u64>>());
        assert!(b / CACHE_LINE_BYTES > a / CACHE_LINE_BYTES);
    }

    #[test]
    fn deref_is_transparent() {
        let padded = CachePadded::new(AtomicU64::new(3));
        // sync: Relaxed — single-threaded test.
        padded.store(5, Ordering::Relaxed);
        assert_eq!(padded.load(Ordering::Relaxed), 5);
        assert_eq!(padded.into_inner().into_inner(), 5);

        let mut owned = CachePadded::new(7u32);
        *owned += 1;
        assert_eq!(*owned, 8);
        assert_eq!(CachePadded::from(1u8).into_inner(), 1);
    }
}
