//! # stm-core
//!
//! Shared substrate for the word-based software transactional memories in
//! this workspace (the SwissTM reproduction plus its TL2, TinySTM and RSTM
//! baselines).
//!
//! The crate provides everything an STM algorithm needs *except* the
//! algorithm itself:
//!
//! * a [`heap::TmHeap`] — a shared slab of 64-bit words addressed by
//!   [`Addr`], with a transactional allocator on top,
//! * [`locktable::LockTable`] — the `address -> ownership record` mapping
//!   (the paper's Figure 1) with a configurable stripe granularity,
//! * [`clock::GlobalClock`] and [`clock::ThreadRegistry`] — the global
//!   commit counter and per-thread shared descriptors used by contention
//!   managers,
//! * [`cm`] — the contention-manager library (Timid, Backoff, Greedy,
//!   Serializer, Polka and the paper's two-phase manager),
//! * [`logs`] — read-/write-log containers,
//! * [`stats`] — per-thread and aggregated execution statistics,
//! * [`sync`] — the atomics gateway every STM crate imports instead of
//!   `std::sync::atomic`; under `--cfg stm_model` it swaps in the
//!   instrumented atomics of the in-workspace `stm-model` checker,
//! * [`telemetry`] — allocation-free contention telemetry (CM resolutions
//!   per conflict site, wait/back-off time, inflicted remote aborts,
//!   retry-depth histograms) fed by the managers and the STM conflict
//!   paths,
//! * [`testkit`] — test support ([`testkit::RecordingCm`]) for
//!   deterministic contention rigs,
//! * [`tm`] — the [`tm::TmAlgorithm`] trait every STM implements and the
//!   [`tm::ThreadContext`] retry driver (`atomically`).
//!
//! # Example
//!
//! ```
//! use stm_core::prelude::*;
//!
//! // `NaiveGlobalLockTm` is a tiny single-global-lock STM shipped with this
//! // crate for testing the driver; real algorithms live in the `swisstm`,
//! // `tl2`, `tinystm` and `rstm` crates.
//! let stm = std::sync::Arc::new(stm_core::naive::NaiveGlobalLockTm::new(HeapConfig::small()));
//! let addr = stm.heap().alloc_zeroed(1).unwrap();
//! let mut ctx = ThreadContext::register(stm);
//! let value = ctx.atomically(|tx| {
//!     tx.write(addr, 41)?;
//!     let v = tx.read(addr)?;
//!     tx.write(addr, v + 1)?;
//!     tx.read(addr)
//! }).unwrap();
//! assert_eq!(value, 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod clock;
pub mod cm;
pub mod config;
pub mod error;
pub mod hash;
pub mod heap;
pub mod locktable;
pub mod logs;
pub mod naive;
pub mod pad;
pub mod stats;
pub mod sync;
pub mod telemetry;
pub mod testkit;
pub mod tm;
pub mod word;

/// Convenience re-exports of the types used by nearly every consumer.
pub mod prelude {
    pub use crate::clock::{
        CommitStamp, GlobalClock, ThreadRegistry, ThreadSlot, TxClock, TxShared,
    };
    pub use crate::cm::{ContentionManager, Resolution};
    pub use crate::config::{ClockMode, HeapConfig, LockTableConfig, StmConfig, TableLayout};
    pub use crate::error::{Abort, AbortReason, StmError};
    pub use crate::heap::TmHeap;
    pub use crate::pad::CachePadded;
    pub use crate::stats::{StatsAggregate, TxStats};
    pub use crate::tm::{ThreadContext, TmAlgorithm, Tx};
    pub use crate::word::{Addr, Word};
}

pub use crate::clock::{CommitStamp, GlobalClock, ThreadRegistry, ThreadSlot, TxClock, TxShared};
pub use crate::cm::{ContentionManager, Resolution};
pub use crate::config::{ClockMode, HeapConfig, LockTableConfig, TableLayout};
pub use crate::error::{Abort, AbortReason, StmError};
pub use crate::heap::TmHeap;
pub use crate::pad::CachePadded;
pub use crate::stats::{RetryHistogram, StatsAggregate, TxStats};
pub use crate::telemetry::{ConflictSite, ContentionCounters};
pub use crate::tm::{ThreadContext, TmAlgorithm, Tx};
pub use crate::word::{Addr, Word};
