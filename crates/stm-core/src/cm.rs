//! Contention managers.
//!
//! A contention manager decides what happens when a transaction (the
//! *attacker*) conflicts with another transaction (the *victim*, usually the
//! current owner of a write lock). The paper evaluates several policies
//! (Section 2.1 and Section 5) and contributes the **two-phase** manager
//! used by SwissTM (Algorithm 2). All of them are provided here so that the
//! Figure 9/10/12 and Table 1 experiments can mix and match managers and
//! STM algorithms:
//!
//! * [`Timid`] — always abort the attacker (default of TL2 and TinySTM),
//!   optionally with randomized linear back-off on rollback.
//! * [`Greedy`] — every transaction draws a unique timestamp at its first
//!   start; the older transaction always wins. Starvation-free.
//! * [`Serializer`] — like Greedy but draws a *new* timestamp on every
//!   restart, so it does not prevent starvation.
//! * [`Polka`] — priority = number of locations accessed; the attacker
//!   waits with exponential back-off up to a bounded number of attempts,
//!   then aborts the victim.
//! * [`TwoPhase`] — the paper's manager: transactions are timid until they
//!   have performed `Wn` writes, then they join the Greedy order; rollback
//!   uses randomized linear back-off.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::backoff;
use crate::clock::{GlobalClock, TxShared, CM_TS_INFINITY};

/// Decision returned by [`ContentionManager::resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The attacker must abort itself (and later retry).
    AbortSelf,
    /// The victim should be aborted; the attacker may then retry the
    /// conflicting operation.
    AbortOther,
    /// The attacker should wait (briefly) and retry the conflicting
    /// operation without aborting anyone.
    Wait,
}

/// A pluggable contention-management policy.
///
/// The hooks mirror the call sites of the paper's Algorithm 1: transaction
/// start, successful write, write/write conflict, rollback and commit.
/// Implementations must be cheap and lock-free: they run on the STM fast
/// path.
pub trait ContentionManager: Send + Sync + 'static {
    /// Called when a transaction attempt starts. `is_restart` is `true` when
    /// the attempt re-executes a previously aborted transaction.
    fn on_start(&self, me: &TxShared, is_restart: bool) {
        let _ = (me, is_restart);
    }

    /// Called after a successful transactional write; `writes_so_far` counts
    /// the distinct writes of the current attempt.
    fn on_write(&self, me: &TxShared, writes_so_far: usize) {
        let _ = (me, writes_so_far);
    }

    /// Called after a transactional read; `reads_so_far` counts the reads of
    /// the current attempt. Only priority-accumulating managers care.
    fn on_read(&self, me: &TxShared, reads_so_far: usize) {
        let _ = (me, reads_so_far);
    }

    /// Resolves a write/write conflict between the attacker `me` and the
    /// current `owner` of the contended location.
    fn resolve(&self, me: &TxShared, owner: &TxShared) -> Resolution;

    /// Called when the transaction rolls back; usually implements the
    /// post-abort back-off policy.
    fn on_rollback(&self, me: &TxShared) {
        let _ = me;
    }

    /// Called when the transaction commits.
    fn on_commit(&self, me: &TxShared) {
        let _ = me;
    }

    /// Human-readable policy name (used in experiment tables).
    fn name(&self) -> &'static str;
}

impl fmt::Debug for dyn ContentionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentionManager({})", self.name())
    }
}

/// Shared handle to a contention manager.
pub type CmHandle = Arc<dyn ContentionManager>;

/// Randomized linear back-off after a rollback, recorded in the thread's
/// contention telemetry (spin count and wall-clock time). Only runs on the
/// abort path, so the `Instant` samples never touch the fast path.
fn timed_rollback_backoff(me: &TxShared) {
    let start = Instant::now();
    let spins = backoff::wait_random_linear(me.successive_aborts());
    me.telemetry().record_backoff(spins, start.elapsed());
}

// ---------------------------------------------------------------------------
// Timid
// ---------------------------------------------------------------------------

/// Always abort the attacker. Optionally backs off after rollback.
#[derive(Debug)]
pub struct Timid {
    backoff_on_rollback: bool,
}

impl Timid {
    /// Timid manager without any back-off (TL2/TinySTM default behaviour).
    pub fn new() -> Self {
        Timid {
            backoff_on_rollback: false,
        }
    }

    /// Timid manager with randomized linear back-off after rollback.
    pub fn with_backoff() -> Self {
        Timid {
            backoff_on_rollback: true,
        }
    }
}

impl Default for Timid {
    fn default() -> Self {
        Timid::new()
    }
}

impl ContentionManager for Timid {
    fn resolve(&self, _me: &TxShared, _owner: &TxShared) -> Resolution {
        Resolution::AbortSelf
    }

    fn on_rollback(&self, me: &TxShared) {
        if self.backoff_on_rollback {
            timed_rollback_backoff(me);
        }
    }

    fn name(&self) -> &'static str {
        if self.backoff_on_rollback {
            "timid+backoff"
        } else {
            "timid"
        }
    }
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

/// The Greedy manager of Guerraoui, Herlihy and Pochon: each transaction
/// draws a unique, monotonically increasing timestamp at its *first* start
/// and keeps it across restarts; the transaction with the lower timestamp
/// always wins. Starvation-free.
#[derive(Debug)]
pub struct Greedy {
    clock: GlobalClock,
}

impl Greedy {
    /// Creates a Greedy manager with its own timestamp clock.
    pub fn new() -> Self {
        Greedy {
            clock: GlobalClock::new(),
        }
    }
}

impl Default for Greedy {
    fn default() -> Self {
        Greedy::new()
    }
}

impl ContentionManager for Greedy {
    fn on_start(&self, me: &TxShared, is_restart: bool) {
        if !is_restart {
            me.set_cm_ts(self.clock.increment_and_get());
        }
    }

    fn resolve(&self, me: &TxShared, owner: &TxShared) -> Resolution {
        if owner.cm_ts() < me.cm_ts() {
            Resolution::AbortSelf
        } else {
            Resolution::AbortOther
        }
    }

    fn on_commit(&self, me: &TxShared) {
        me.set_cm_ts(CM_TS_INFINITY);
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

/// Like [`Greedy`], but a transaction draws a *fresh* timestamp on every
/// restart, so long transactions can starve (this is the manager the paper
/// uses for RSTM in STMBench7).
#[derive(Debug)]
pub struct Serializer {
    clock: GlobalClock,
}

impl Serializer {
    /// Creates a Serializer manager with its own timestamp clock.
    pub fn new() -> Self {
        Serializer {
            clock: GlobalClock::new(),
        }
    }
}

impl Default for Serializer {
    fn default() -> Self {
        Serializer::new()
    }
}

impl ContentionManager for Serializer {
    fn on_start(&self, me: &TxShared, _is_restart: bool) {
        // New timestamp on every attempt, including restarts.
        me.set_cm_ts(self.clock.increment_and_get());
    }

    fn resolve(&self, me: &TxShared, owner: &TxShared) -> Resolution {
        if owner.cm_ts() < me.cm_ts() {
            Resolution::AbortSelf
        } else {
            Resolution::AbortOther
        }
    }

    fn on_commit(&self, me: &TxShared) {
        me.set_cm_ts(CM_TS_INFINITY);
    }

    fn name(&self) -> &'static str {
        "serializer"
    }
}

// ---------------------------------------------------------------------------
// Polka
// ---------------------------------------------------------------------------

/// The Polka manager of Scherer and Scott: the attacker's priority is the
/// number of locations it has accessed; a lower-priority attacker waits
/// with exponential back-off, bumping its priority by one per wait, and
/// aborts the victim (never itself) once its boosted priority reaches the
/// victim's or its wait budget is exhausted.
///
/// The wait budget is accounted *per transaction attempt*: once an attempt
/// has spent `attempts` waits (across all of its conflicts), every further
/// conflict resolves to `AbortOther` immediately. The earlier revision of
/// this manager resolved an exhausted budget with `AbortSelf`, which
/// contradicts the original Polka's "back off N times, then abort the
/// enemy" rule and made the budget edge cases untestable (`attempts = 0`
/// degenerated to timid instead of to pure priority arbitration).
#[derive(Debug)]
pub struct Polka {
    /// Maximum number of back-off rounds per attempt before forcibly
    /// aborting the victim.
    max_attempts: u32,
}

impl Polka {
    /// Default number of back-off rounds used by the original Polka paper.
    pub const DEFAULT_ATTEMPTS: u32 = 22;

    /// Creates a Polka manager with the default wait budget.
    pub fn new() -> Self {
        Polka {
            max_attempts: Self::DEFAULT_ATTEMPTS,
        }
    }

    /// Creates a Polka manager with an explicit wait budget. `attempts = 0`
    /// never waits: every conflict resolves to `AbortOther` immediately
    /// (the priority comparison only decides whether a wait would have been
    /// attempted first).
    pub fn with_attempts(attempts: u32) -> Self {
        Polka {
            max_attempts: attempts,
        }
    }
}

impl Default for Polka {
    fn default() -> Self {
        Polka::new()
    }
}

impl ContentionManager for Polka {
    fn on_start(&self, me: &TxShared, is_restart: bool) {
        if !is_restart {
            me.set_priority(0);
        }
        // Priorities persist across restarts (Karma heritage): aborted work
        // still counts. The wait budget, however, is per attempt.
        me.reset_cm_waits();
    }

    fn on_read(&self, me: &TxShared, _reads_so_far: usize) {
        me.bump_priority();
    }

    fn on_write(&self, me: &TxShared, _writes_so_far: usize) {
        me.bump_priority();
    }

    fn resolve(&self, me: &TxShared, owner: &TxShared) -> Resolution {
        // The driver calls `resolve` repeatedly while the conflict persists.
        // Each round the attacker waits (exponential back-off) and boosts
        // its priority by one, so against a static owner the number of waits
        // is the initial priority deficit, capped by the per-attempt budget;
        // in both cases the conflict ends with the *enemy* aborted, exactly
        // as the original Polka specifies.
        let my_priority = me.priority();
        let owner_priority = owner.priority();
        if my_priority >= owner_priority {
            return Resolution::AbortOther;
        }
        if me.cm_wait_count() >= self.max_attempts as u64 {
            return Resolution::AbortOther;
        }
        me.bump_cm_waits();
        me.bump_priority();
        // The exponent is capped at MAX_EXPONENT inside the back-off
        // anyway; clamping before the narrowing cast keeps a huge deficit
        // (> u32::MAX, reachable now that the budget — not the deficit —
        // bounds the waits) from truncating to a near-zero exponent.
        let deficit = (owner_priority - my_priority).min(u64::from(backoff::MAX_EXPONENT));
        let start = Instant::now();
        let spins = backoff::wait_random_exponential(deficit as u32);
        me.telemetry().record_backoff(spins, start.elapsed());
        Resolution::Wait
    }

    fn on_commit(&self, me: &TxShared) {
        me.set_priority(0);
    }

    fn name(&self) -> &'static str {
        "polka"
    }
}

// ---------------------------------------------------------------------------
// TwoPhase (the paper's contribution, Algorithm 2)
// ---------------------------------------------------------------------------

/// The paper's two-phase contention manager.
///
/// Phase one ("timid"): a transaction that has performed fewer than `Wn`
/// writes has `cm-ts = ∞` and aborts itself on any write/write conflict.
/// Phase two ("greedy"): upon its `Wn`-th write the transaction increments
/// the shared `greedy-ts` clock and adopts the value; conflicts between two
/// phase-two transactions are resolved in favour of the *older* timestamp
/// (the one that has been running — and working — longer). Rollback applies
/// randomized linear back-off proportional to the number of successive
/// aborts.
#[derive(Debug)]
pub struct TwoPhase {
    greedy_clock: GlobalClock,
    wn: usize,
    backoff_on_rollback: bool,
}

impl TwoPhase {
    /// The paper's write-count threshold (`Wn = 10`).
    pub const DEFAULT_WN: usize = 10;

    /// Creates the manager with the paper's parameters.
    pub fn new() -> Self {
        TwoPhase {
            greedy_clock: GlobalClock::new(),
            wn: Self::DEFAULT_WN,
            backoff_on_rollback: true,
        }
    }

    /// Creates the manager with a custom `Wn` threshold (used by the extra
    /// `Wn` ablation bench). `wn = 0` degenerates to a fully greedy manager:
    /// the transaction enters the second phase on its very first write.
    pub fn with_wn(wn: usize) -> Self {
        TwoPhase {
            greedy_clock: GlobalClock::new(),
            wn,
            backoff_on_rollback: true,
        }
    }

    /// Disables the post-rollback back-off (the "no backoff" series of
    /// Figure 11).
    pub fn without_backoff(mut self) -> Self {
        self.backoff_on_rollback = false;
        self
    }

    /// The configured `Wn` threshold.
    pub fn wn(&self) -> usize {
        self.wn
    }
}

impl Default for TwoPhase {
    fn default() -> Self {
        TwoPhase::new()
    }
}

impl ContentionManager for TwoPhase {
    fn on_start(&self, me: &TxShared, is_restart: bool) {
        // cm-start: only a *fresh* transaction resets its timestamp; a
        // restarted transaction keeps the timestamp it may have acquired, so
        // that its accumulated work keeps being prioritised.
        if !is_restart {
            me.set_cm_ts(CM_TS_INFINITY);
        }
    }

    fn on_write(&self, me: &TxShared, writes_so_far: usize) {
        // cm-on-write: upon the Wn-th write, enter the second phase. `>=`
        // rather than `==` so that `Wn = 0` means "greedy from the first
        // write": `writes_so_far` starts at 1, so an equality test would
        // never fire for a zero threshold.
        if me.cm_ts() == CM_TS_INFINITY && writes_so_far >= self.wn {
            me.set_cm_ts(self.greedy_clock.increment_and_get());
        }
    }

    fn resolve(&self, me: &TxShared, owner: &TxShared) -> Resolution {
        // cm-should-abort.
        if me.cm_ts() == CM_TS_INFINITY {
            return Resolution::AbortSelf;
        }
        if owner.cm_ts() < me.cm_ts() {
            Resolution::AbortSelf
        } else {
            Resolution::AbortOther
        }
    }

    fn on_rollback(&self, me: &TxShared) {
        if self.backoff_on_rollback {
            timed_rollback_backoff(me);
        }
    }

    fn on_commit(&self, me: &TxShared) {
        me.set_cm_ts(CM_TS_INFINITY);
    }

    fn name(&self) -> &'static str {
        if self.backoff_on_rollback {
            "two-phase"
        } else {
            "two-phase(no-backoff)"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ThreadRegistry;

    fn two_txs() -> (
        ThreadRegistry,
        crate::clock::ThreadSlot,
        crate::clock::ThreadSlot,
    ) {
        let reg = ThreadRegistry::new();
        let a = reg.register().unwrap();
        let b = reg.register().unwrap();
        (reg, a, b)
    }

    #[test]
    fn timid_always_aborts_self() {
        let (reg, a, b) = two_txs();
        let cm = Timid::new();
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortSelf
        );
        assert_eq!(cm.name(), "timid");
        assert_eq!(Timid::with_backoff().name(), "timid+backoff");
    }

    #[test]
    fn greedy_older_transaction_wins() {
        let (reg, a, b) = two_txs();
        let cm = Greedy::new();
        cm.on_start(reg.shared(a), false); // ts 1
        cm.on_start(reg.shared(b), false); // ts 2
                                           // b attacks a: a is older, so b must abort itself.
        assert_eq!(
            cm.resolve(reg.shared(b), reg.shared(a)),
            Resolution::AbortSelf
        );
        // a attacks b: a is older, so it may abort b.
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
    }

    #[test]
    fn greedy_timestamp_survives_restart() {
        let (reg, a, _) = two_txs();
        let cm = Greedy::new();
        cm.on_start(reg.shared(a), false);
        let ts = reg.shared(a).cm_ts();
        cm.on_start(reg.shared(a), true);
        assert_eq!(reg.shared(a).cm_ts(), ts);
        cm.on_commit(reg.shared(a));
        assert_eq!(reg.shared(a).cm_ts(), CM_TS_INFINITY);
    }

    #[test]
    fn serializer_redraws_timestamp_on_restart() {
        let (reg, a, _) = two_txs();
        let cm = Serializer::new();
        cm.on_start(reg.shared(a), false);
        let ts = reg.shared(a).cm_ts();
        cm.on_start(reg.shared(a), true);
        assert!(reg.shared(a).cm_ts() > ts);
    }

    #[test]
    fn two_phase_first_phase_is_timid() {
        let (reg, a, b) = two_txs();
        let cm = TwoPhase::new();
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        // Neither has performed Wn writes: attacker aborts itself.
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn two_phase_wn_zero_is_greedy_from_the_first_write() {
        let (reg, a, b) = two_txs();
        let cm = TwoPhase::with_wn(0);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        // The very first write promotes to the second (greedy) phase:
        // writes_so_far starts at 1, so a zero threshold must not be able to
        // slip past an equality comparison.
        cm.on_write(reg.shared(a), 1);
        assert_ne!(
            reg.shared(a).cm_ts(),
            CM_TS_INFINITY,
            "wn = 0 must promote on the first write"
        );
        // The timestamp is drawn exactly once: later writes keep it.
        let ts = reg.shared(a).cm_ts();
        cm.on_write(reg.shared(a), 2);
        assert_eq!(reg.shared(a).cm_ts(), ts);
        // Promoted-vs-timid resolution favours the promoted transaction.
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
        cm.on_commit(reg.shared(a));
        assert_eq!(reg.shared(a).cm_ts(), CM_TS_INFINITY);
    }

    #[test]
    fn two_phase_promotes_after_wn_writes() {
        let (reg, a, b) = two_txs();
        let cm = TwoPhase::with_wn(3);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        for w in 1..=3 {
            cm.on_write(reg.shared(a), w);
        }
        assert_ne!(reg.shared(a).cm_ts(), CM_TS_INFINITY);
        // a is in phase two, b is in phase one: a wins against b.
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
        // b (phase one) still aborts itself.
        assert_eq!(
            cm.resolve(reg.shared(b), reg.shared(a)),
            Resolution::AbortSelf
        );
    }

    #[test]
    fn two_phase_short_transactions_never_touch_greedy_clock() {
        let (reg, a, _) = two_txs();
        let cm = TwoPhase::new();
        cm.on_start(reg.shared(a), false);
        for w in 1..TwoPhase::DEFAULT_WN {
            cm.on_write(reg.shared(a), w);
        }
        assert_eq!(reg.shared(a).cm_ts(), CM_TS_INFINITY);
    }

    #[test]
    fn two_phase_older_phase_two_transaction_wins() {
        let (reg, a, b) = two_txs();
        let cm = TwoPhase::with_wn(1);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        cm.on_write(reg.shared(a), 1); // ts 1
        cm.on_write(reg.shared(b), 1); // ts 2
        assert_eq!(
            cm.resolve(reg.shared(b), reg.shared(a)),
            Resolution::AbortSelf
        );
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
    }

    #[test]
    fn two_phase_commit_resets_timestamp() {
        let (reg, a, _) = two_txs();
        let cm = TwoPhase::with_wn(1);
        cm.on_start(reg.shared(a), false);
        cm.on_write(reg.shared(a), 1);
        cm.on_commit(reg.shared(a));
        assert_eq!(reg.shared(a).cm_ts(), CM_TS_INFINITY);
    }

    #[test]
    fn polka_higher_priority_attacker_aborts_victim() {
        let (reg, a, b) = two_txs();
        let cm = Polka::new();
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        reg.shared(a).set_priority(10);
        reg.shared(b).set_priority(2);
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
    }

    #[test]
    fn polka_lower_priority_attacker_waits_and_boosts() {
        let (reg, a, b) = two_txs();
        let cm = Polka::with_attempts(4);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        reg.shared(a).set_priority(1);
        reg.shared(b).set_priority(3);
        let r = cm.resolve(reg.shared(a), reg.shared(b));
        assert_eq!(r, Resolution::Wait);
        assert_eq!(reg.shared(a).priority(), 2);
    }

    /// The attempt bound, pinned exactly: with a deficit of `k ≤ attempts`
    /// the attacker waits exactly `k` times (catching up one priority per
    /// wait) and the `k+1`-th resolve aborts the *victim* — never the
    /// attacker.
    #[test]
    fn polka_waits_exactly_deficit_times_then_aborts_the_victim() {
        let (reg, a, b) = two_txs();
        let cm = Polka::with_attempts(10);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        reg.shared(b).set_priority(3);
        for round in 0..3 {
            assert_eq!(
                cm.resolve(reg.shared(a), reg.shared(b)),
                Resolution::Wait,
                "round {round} must wait"
            );
        }
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
    }

    /// The budget caps the waits even when the deficit is larger: exactly
    /// `attempts` waits precede the `AbortOther`.
    #[test]
    fn polka_exhausted_budget_aborts_the_victim_after_exactly_max_waits() {
        let (reg, a, b) = two_txs();
        let cm = Polka::with_attempts(2);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        reg.shared(b).set_priority(100);
        assert_eq!(cm.resolve(reg.shared(a), reg.shared(b)), Resolution::Wait);
        assert_eq!(cm.resolve(reg.shared(a), reg.shared(b)), Resolution::Wait);
        // Budget (2) spent: the victim is aborted, the attacker never is.
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
    }

    /// Edge case mirroring `TwoPhase::with_wn(0)`: a zero wait budget must
    /// degenerate to pure priority arbitration with no waiting at all, not
    /// to a timid manager that aborts itself.
    #[test]
    fn polka_with_attempts_zero_never_waits() {
        let (reg, a, b) = two_txs();
        let cm = Polka::with_attempts(0);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        reg.shared(b).set_priority(50);
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther,
            "attempts = 0 must not be able to slip into the wait branch"
        );
        assert_eq!(reg.shared(a).priority(), 0, "no wait, no priority boost");
    }

    /// A deficit beyond `u32::MAX` must not truncate into a tiny back-off
    /// exponent: the wait is the capped maximum, and the resolve still
    /// terminates promptly.
    #[test]
    fn polka_huge_deficit_waits_with_the_capped_exponent() {
        let (reg, a, b) = two_txs();
        let cm = Polka::with_attempts(1);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        reg.shared(b).set_priority(u64::MAX - 1);
        assert_eq!(cm.resolve(reg.shared(a), reg.shared(b)), Resolution::Wait);
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
    }

    /// The wait budget is per attempt: a restart resets it.
    #[test]
    fn polka_wait_budget_resets_on_restart() {
        let (reg, a, b) = two_txs();
        let cm = Polka::with_attempts(1);
        cm.on_start(reg.shared(a), false);
        cm.on_start(reg.shared(b), false);
        reg.shared(b).set_priority(100);
        assert_eq!(cm.resolve(reg.shared(a), reg.shared(b)), Resolution::Wait);
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::AbortOther
        );
        cm.on_start(reg.shared(a), true);
        assert_eq!(
            cm.resolve(reg.shared(a), reg.shared(b)),
            Resolution::Wait,
            "a fresh attempt gets a fresh wait budget"
        );
    }

    #[test]
    fn polka_tracks_accesses_as_priority() {
        let (reg, a, _) = two_txs();
        let cm = Polka::new();
        cm.on_start(reg.shared(a), false);
        cm.on_read(reg.shared(a), 1);
        cm.on_read(reg.shared(a), 2);
        cm.on_write(reg.shared(a), 1);
        assert_eq!(reg.shared(a).priority(), 3);
        cm.on_commit(reg.shared(a));
        assert_eq!(reg.shared(a).priority(), 0);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Timid::new().name(),
            Greedy::new().name(),
            Serializer::new().name(),
            Polka::new().name(),
            TwoPhase::new().name(),
            TwoPhase::new().without_backoff().name(),
        ];
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
