//! The shared transactional heap and its allocator.
//!
//! The heap is a fixed-size slab of `AtomicU64` words. It plays the role of
//! the raw process address space in the paper's C++ implementation: all
//! transactional data structures of the workloads live here, and the STM
//! lock tables map heap addresses (word indices) to ownership records.
//!
//! Reads and writes through [`TmHeap::load`] / [`TmHeap::store`] are plain
//! atomic accesses with relaxed-to-acquire/release semantics; *consistency*
//! is the job of the STM algorithm built on top, exactly as in the paper.
//!
//! The allocator is a simple thread-safe bump allocator with size-class
//! free-lists. Transactional allocation semantics (roll back allocations of
//! aborted transactions, defer frees to commit time) are provided by
//! [`crate::logs::AllocLog`] and applied by the transaction driver.

use crate::sync::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::config::HeapConfig;
use crate::error::StmError;
use crate::word::{Addr, Word};

/// Number of size classes tracked by the free-list allocator. Size class
/// `i` holds blocks of exactly `i` words; larger blocks are never recycled.
const FREE_LIST_CLASSES: usize = 64;

#[derive(Debug, Default)]
struct AllocatorState {
    /// Next never-allocated word.
    bump: usize,
    /// Free lists indexed by block size in words.
    free: Vec<Vec<usize>>,
    /// Number of words currently handed out.
    live_words: usize,
}

/// The shared transactional heap.
#[derive(Debug)]
pub struct TmHeap {
    words: Box<[AtomicU64]>,
    alloc: Mutex<AllocatorState>,
}

impl TmHeap {
    /// Creates a heap with the given configuration. Word 0 is reserved so
    /// that [`Addr::NULL`] never refers to live data.
    pub fn new(config: HeapConfig) -> Self {
        assert!(config.words >= 2, "heap must have at least two words");
        let words = (0..config.words)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        TmHeap {
            words,
            alloc: Mutex::new(AllocatorState {
                bump: 1, // skip Addr::NULL
                free: vec![Vec::new(); FREE_LIST_CLASSES],
                live_words: 0,
            }),
        }
    }

    /// Total number of words in the heap.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Number of words currently allocated.
    pub fn live_words(&self) -> usize {
        self.alloc
            .lock()
            .expect("heap allocator poisoned")
            .live_words
    }

    /// Directly loads the value stored at `addr` (non-transactional).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn load(&self, addr: Addr) -> Word {
        // sync: Acquire — a reader that validated against a stripe version
        // must see the word contents written before that version was
        // published (pairs with store_word's Release write-back).
        self.words[addr.index()].load(Ordering::Acquire)
    }

    /// Directly stores `value` at `addr` (non-transactional).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn store(&self, addr: Addr, value: Word) {
        // sync: Release — write-back publishes the word before the committer
        // publishes the stripe version that makes it readable.
        self.words[addr.index()].store(value, Ordering::Release);
    }

    /// Allocates `words` consecutive words, zeroing them.
    ///
    /// This is the *non-transactional* allocation entry point used for
    /// building initial data structures; inside transactions use
    /// [`crate::tm::Tx::alloc`] which records the allocation for rollback.
    ///
    /// # Errors
    ///
    /// Returns [`StmError::OutOfMemory`] when the heap cannot satisfy the
    /// request.
    pub fn alloc_zeroed(&self, words: usize) -> Result<Addr, StmError> {
        let addr = self.alloc_raw(words)?;
        for i in 0..words {
            self.store(addr.offset(i), 0);
        }
        Ok(addr)
    }

    /// Allocates `words` consecutive words without zeroing recycled blocks.
    ///
    /// # Errors
    ///
    /// Returns [`StmError::OutOfMemory`] when the heap cannot satisfy the
    /// request.
    pub fn alloc_raw(&self, words: usize) -> Result<Addr, StmError> {
        assert!(words > 0, "cannot allocate zero words");
        let mut state = self.alloc.lock().expect("heap allocator poisoned");
        if words < FREE_LIST_CLASSES {
            if let Some(idx) = state.free[words].pop() {
                state.live_words += words;
                return Ok(Addr::new(idx));
            }
        }
        let start = state.bump;
        let end = start.checked_add(words).ok_or(StmError::OutOfMemory {
            requested: words,
            available: 0,
        })?;
        if end > self.words.len() {
            return Err(StmError::OutOfMemory {
                requested: words,
                available: self.words.len().saturating_sub(start),
            });
        }
        state.bump = end;
        state.live_words += words;
        Ok(Addr::new(start))
    }

    /// Returns a block previously obtained from [`TmHeap::alloc_raw`] /
    /// [`TmHeap::alloc_zeroed`] to the allocator.
    ///
    /// The block size must match the size it was allocated with; blocks of
    /// 64 words or more are not recycled (they are simply leaked inside the
    /// slab), which mirrors the paper's benchmarks where large blocks are
    /// allocated once at set-up time.
    pub fn free(&self, addr: Addr, words: usize) {
        assert!(!addr.is_null(), "cannot free the null address");
        let mut state = self.alloc.lock().expect("heap allocator poisoned");
        state.live_words = state.live_words.saturating_sub(words);
        if words < FREE_LIST_CLASSES {
            state.free[words].push(addr.index());
        }
    }

    /// Words still available for fresh (non-recycled) allocation.
    pub fn remaining(&self) -> usize {
        let state = self.alloc.lock().expect("heap allocator poisoned");
        self.words.len() - state.bump
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_skips_null_word() {
        let heap = TmHeap::new(HeapConfig::small());
        let a = heap.alloc_zeroed(4).unwrap();
        assert!(!a.is_null());
        assert!(a.index() >= 1);
    }

    #[test]
    fn load_store_round_trip() {
        let heap = TmHeap::new(HeapConfig::small());
        let a = heap.alloc_zeroed(2).unwrap();
        heap.store(a, 17);
        heap.store(a.offset(1), 99);
        assert_eq!(heap.load(a), 17);
        assert_eq!(heap.load(a.offset(1)), 99);
    }

    #[test]
    fn free_list_recycles_blocks() {
        let heap = TmHeap::new(HeapConfig::small());
        let a = heap.alloc_zeroed(8).unwrap();
        heap.free(a, 8);
        let b = heap.alloc_raw(8).unwrap();
        assert_eq!(a, b, "freed block should be recycled for same size class");
    }

    #[test]
    fn out_of_memory_is_reported() {
        let heap = TmHeap::new(HeapConfig::with_words(16));
        assert!(heap.alloc_zeroed(64).is_err());
        let err = heap.alloc_zeroed(1000).unwrap_err();
        assert!(matches!(err, StmError::OutOfMemory { .. }));
    }

    #[test]
    fn live_words_tracks_alloc_and_free() {
        let heap = TmHeap::new(HeapConfig::small());
        assert_eq!(heap.live_words(), 0);
        let a = heap.alloc_zeroed(4).unwrap();
        let b = heap.alloc_zeroed(6).unwrap();
        assert_eq!(heap.live_words(), 10);
        heap.free(a, 4);
        assert_eq!(heap.live_words(), 6);
        heap.free(b, 6);
        assert_eq!(heap.live_words(), 0);
    }

    #[test]
    fn alloc_zeroed_clears_recycled_memory() {
        let heap = TmHeap::new(HeapConfig::small());
        let a = heap.alloc_zeroed(2).unwrap();
        heap.store(a, 0xdead);
        heap.free(a, 2);
        let b = heap.alloc_zeroed(2).unwrap();
        assert_eq!(heap.load(b), 0);
    }

    #[test]
    #[should_panic(expected = "cannot free the null address")]
    fn freeing_null_panics() {
        let heap = TmHeap::new(HeapConfig::small());
        heap.free(Addr::NULL, 1);
    }
}
