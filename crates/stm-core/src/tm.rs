//! The algorithm-facing STM interface and the transaction retry driver.
//!
//! Every STM in the workspace (SwissTM, TL2, TinySTM, RSTM) implements
//! [`TmAlgorithm`]. Application code never calls the algorithm directly;
//! it registers a [`ThreadContext`] and runs closures through
//! [`ThreadContext::atomically`], which handles begin/commit/rollback,
//! contention-manager hooks, transactional allocation bookkeeping, retry
//! and statistics.
//!
//! The split mirrors the paper's structure: Algorithm 1 is the per-word
//! algorithm (here: a `TmAlgorithm` impl), Algorithm 2 the contention
//! manager (here: [`crate::cm::ContentionManager`]), and the benchmarks sit
//! on top of a thin word-based API (here: [`Tx`]).

use std::sync::Arc;

use crate::clock::{ThreadRegistry, ThreadSlot, TxShared, TxStatus};
use crate::cm::ContentionManager;
use crate::error::{Abort, AbortReason, StmError, TxResult};
use crate::heap::TmHeap;
use crate::logs::AllocLog;
use crate::stats::TxStats;
use crate::word::{Addr, Word};

/// State shared by every algorithm's transaction descriptor.
///
/// Algorithms embed a `DescriptorCore` in their descriptor type and expose
/// it through [`TxDescriptor::core`]; the retry driver uses it for
/// allocation bookkeeping, statistics and contention-manager hooks.
#[derive(Debug)]
pub struct DescriptorCore {
    /// The thread slot owning this descriptor.
    pub slot: ThreadSlot,
    /// The thread's shared record (visible to other threads).
    pub shared: Arc<TxShared>,
    /// Allocator activity of the current attempt.
    pub alloc_log: AllocLog,
    /// Transactional reads performed by the current attempt.
    pub attempt_reads: u64,
    /// Transactional writes performed by the current attempt.
    pub attempt_writes: u64,
}

impl DescriptorCore {
    /// Creates a core for `slot` with its shared record.
    pub fn new(slot: ThreadSlot, shared: Arc<TxShared>) -> Self {
        DescriptorCore {
            slot,
            shared,
            alloc_log: AllocLog::new(),
            attempt_reads: 0,
            attempt_writes: 0,
        }
    }

    /// Resets the per-attempt counters (called from `begin`).
    pub fn reset_attempt(&mut self) {
        self.attempt_reads = 0;
        self.attempt_writes = 0;
    }
}

/// Trait implemented by every algorithm's transaction descriptor.
pub trait TxDescriptor: Send {
    /// Shared descriptor core.
    fn core(&self) -> &DescriptorCore;
    /// Mutable access to the shared descriptor core.
    fn core_mut(&mut self) -> &mut DescriptorCore;
    /// `true` if the current attempt has not written anything.
    fn is_read_only(&self) -> bool;
}

/// A word-based software transactional memory algorithm.
///
/// # Contract
///
/// * `read`, `write` and `commit` return `Err(Abort)` when the attempt must
///   be retried. An operation that returns `Err` must leave the descriptor
///   in a state where [`TmAlgorithm::rollback`] can be called safely.
/// * `rollback` must be idempotent: the driver calls it on every abort
///   path, including after a failed `commit` that already cleaned up.
/// * `commit` returning `Ok(())` means all writes of the attempt are
///   visible atomically to other transactions (opacity is expected, as in
///   the paper).
pub trait TmAlgorithm: Send + Sync + 'static {
    /// Per-thread transaction descriptor, reused across transactions.
    type Descriptor: TxDescriptor;

    /// Human-readable algorithm name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// The shared transactional heap this instance operates on.
    fn heap(&self) -> &TmHeap;

    /// The registry handing out thread slots for this instance.
    fn registry(&self) -> &ThreadRegistry;

    /// The contention manager used by this instance.
    fn contention_manager(&self) -> &dyn ContentionManager;

    /// Creates a descriptor for a registered thread slot.
    fn create_descriptor(&self, slot: ThreadSlot) -> Self::Descriptor;

    /// Starts a new transaction attempt.
    fn begin(&self, desc: &mut Self::Descriptor, is_restart: bool);

    /// Transactional read of the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns `Err(Abort)` when the attempt must be rolled back (e.g. the
    /// read-set could not be validated).
    fn read(&self, desc: &mut Self::Descriptor, addr: Addr) -> TxResult<Word>;

    /// Transactional write of `value` to `addr`.
    ///
    /// # Errors
    ///
    /// Returns `Err(Abort)` when the attempt must be rolled back (e.g. a
    /// write/write conflict was resolved against this transaction).
    fn write(&self, desc: &mut Self::Descriptor, addr: Addr, value: Word) -> TxResult<()>;

    /// Attempts to commit the current attempt.
    ///
    /// # Errors
    ///
    /// Returns `Err(Abort)` when commit-time validation fails; the
    /// implementation must have released all its locks before returning.
    fn commit(&self, desc: &mut Self::Descriptor) -> TxResult<()>;

    /// Rolls back the current attempt, releasing any acquired locks.
    /// Must be idempotent.
    fn rollback(&self, desc: &mut Self::Descriptor);
}

/// Handle passed to transaction bodies.
///
/// All transactional operations of application code go through `Tx`; it
/// simply forwards to the algorithm, adding convenience helpers for
/// pointer-like fields and transactional allocation.
pub struct Tx<'a, A: TmAlgorithm> {
    alg: &'a A,
    desc: &'a mut A::Descriptor,
}

impl<'a, A: TmAlgorithm> Tx<'a, A> {
    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's abort decision; transaction bodies should
    /// forward it with `?`.
    #[inline]
    pub fn read(&mut self, addr: Addr) -> TxResult<Word> {
        self.alg.read(self.desc, addr)
    }

    /// Writes `value` to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's abort decision.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: Word) -> TxResult<()> {
        self.alg.write(self.desc, addr, value)
    }

    /// Reads the field at `base + offset`.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's abort decision.
    #[inline]
    pub fn read_field(&mut self, base: Addr, offset: usize) -> TxResult<Word> {
        self.read(base.offset(offset))
    }

    /// Writes the field at `base + offset`.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's abort decision.
    #[inline]
    pub fn write_field(&mut self, base: Addr, offset: usize, value: Word) -> TxResult<()> {
        self.write(base.offset(offset), value)
    }

    /// Reads a heap "pointer" stored at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's abort decision.
    #[inline]
    pub fn read_addr(&mut self, addr: Addr) -> TxResult<Addr> {
        Ok(Addr::from_word(self.read(addr)?))
    }

    /// Stores a heap "pointer" at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the algorithm's abort decision.
    #[inline]
    pub fn write_addr(&mut self, addr: Addr, value: Addr) -> TxResult<()> {
        self.write(addr, value.to_word())
    }

    /// Allocates `words` zeroed words from the transactional heap. The
    /// allocation is rolled back if the transaction aborts.
    ///
    /// # Errors
    ///
    /// Returns [`Abort::OOM`] when the heap is exhausted.
    pub fn alloc(&mut self, words: usize) -> TxResult<Addr> {
        match self.alg.heap().alloc_zeroed(words) {
            Ok(addr) => {
                self.desc.core_mut().alloc_log.record_alloc(addr, words);
                Ok(addr)
            }
            Err(_) => Err(Abort::OOM),
        }
    }

    /// Frees a heap block when (and only when) the transaction commits.
    pub fn free(&mut self, addr: Addr, words: usize) {
        self.desc.core_mut().alloc_log.record_free(addr, words);
    }

    /// Explicitly aborts and retries the transaction.
    ///
    /// # Errors
    ///
    /// Always returns `Err(Abort::EXPLICIT)`; the idiom is
    /// `return tx.retry();`.
    pub fn retry<T>(&mut self) -> TxResult<T> {
        Err(Abort::EXPLICIT)
    }

    /// The thread slot running this transaction.
    pub fn slot(&self) -> ThreadSlot {
        self.desc.core().slot
    }

    /// `true` if the attempt has not performed any write yet.
    pub fn is_read_only(&self) -> bool {
        self.desc.is_read_only()
    }

    /// The algorithm executing this transaction (for advanced callers that
    /// need configuration data such as the lock-table granularity).
    pub fn algorithm(&self) -> &A {
        self.alg
    }
}

/// Per-thread entry point: owns the thread's descriptor and statistics and
/// drives the retry loop.
pub struct ThreadContext<A: TmAlgorithm> {
    alg: Arc<A>,
    slot: ThreadSlot,
    desc: A::Descriptor,
    stats: TxStats,
    retry_budget: Option<u64>,
}

impl<A: TmAlgorithm> ThreadContext<A> {
    /// Registers the calling thread with the STM instance and returns its
    /// context.
    ///
    /// # Panics
    ///
    /// Panics if more than [`crate::clock::MAX_THREADS`] threads register.
    pub fn register(alg: Arc<A>) -> Self {
        let slot = alg
            .registry()
            .register()
            .expect("exceeded the maximum number of STM threads");
        let desc = alg.create_descriptor(slot);
        ThreadContext {
            alg,
            slot,
            desc,
            stats: TxStats::new(),
            retry_budget: None,
        }
    }

    /// Limits the number of attempts per transaction; afterwards
    /// [`ThreadContext::atomically`] returns
    /// [`StmError::RetryBudgetExhausted`]. Mainly useful in tests.
    pub fn with_retry_budget(mut self, attempts: u64) -> Self {
        self.retry_budget = Some(attempts);
        self
    }

    /// The thread slot of this context.
    pub fn slot(&self) -> ThreadSlot {
        self.slot
    }

    /// The STM algorithm driven by this context.
    pub fn algorithm(&self) -> &A {
        &self.alg
    }

    /// Statistics accumulated so far.
    ///
    /// The contention telemetry written through the shared record (CM
    /// resolutions, wait/back-off time) is folded in lazily; call
    /// [`ThreadContext::sync_telemetry`] first (or use
    /// [`ThreadContext::take_stats`], which does) when those fields matter.
    pub fn stats(&self) -> &TxStats {
        &self.stats
    }

    /// Drains the contention telemetry accumulated on the thread's shared
    /// record into the statistics. Counters recorded by contention-manager
    /// hooks and STM conflict paths live on [`TxShared`] (they only have a
    /// shared reference); folding them in here keeps the per-transaction
    /// epilogues free of telemetry loads.
    pub fn sync_telemetry(&mut self) {
        self.stats
            .absorb_telemetry(self.desc.core().shared.telemetry());
    }

    /// Returns the accumulated statistics (telemetry folded in), resetting
    /// the counters.
    pub fn take_stats(&mut self) -> TxStats {
        self.sync_telemetry();
        std::mem::take(&mut self.stats)
    }

    /// Runs `body` as a transaction, retrying until it commits.
    ///
    /// The closure may be executed several times; it must be free of
    /// side effects other than transactional reads/writes and
    /// allocations through [`Tx`].
    ///
    /// # Errors
    ///
    /// Returns [`StmError::RetryBudgetExhausted`] if a retry budget was set
    /// and exceeded; otherwise retries until commit.
    pub fn atomically<T, F>(&mut self, mut body: F) -> Result<T, StmError>
    where
        F: FnMut(&mut Tx<'_, A>) -> TxResult<T>,
    {
        let mut is_restart = false;
        let mut attempts: u64 = 0;
        loop {
            attempts += 1;
            let shared = Arc::clone(&self.desc.core().shared);
            shared.clear_abort_request();
            shared.set_status(TxStatus::Active);
            self.alg.begin(&mut self.desc, is_restart);

            let outcome = {
                let mut tx = Tx {
                    alg: &*self.alg,
                    desc: &mut self.desc,
                };
                body(&mut tx)
            };

            match outcome {
                Ok(value) => {
                    let read_only = self.desc.is_read_only();
                    match self.alg.commit(&mut self.desc) {
                        Ok(()) => {
                            self.finish_commit(&shared, read_only, attempts);
                            return Ok(value);
                        }
                        Err(abort) => {
                            // The contract promises `rollback` on *every*
                            // abort path, including a failed commit: commit
                            // released the algorithm's locks, but descriptor
                            // state (e.g. a doomed flag) is only reset here.
                            // `rollback` is idempotent, so this is safe even
                            // when commit already cleaned everything up.
                            self.alg.rollback(&mut self.desc);
                            self.finish_abort(&shared, abort.reason);
                        }
                    }
                }
                Err(abort) => {
                    self.alg.rollback(&mut self.desc);
                    self.finish_abort(&shared, abort.reason);
                }
            }

            if let Some(budget) = self.retry_budget {
                if attempts >= budget {
                    return Err(StmError::RetryBudgetExhausted { attempts });
                }
            }
            is_restart = true;
        }
    }

    /// Runs a read-only convenience transaction returning a single word.
    ///
    /// # Errors
    ///
    /// Same as [`ThreadContext::atomically`].
    pub fn read_word(&mut self, addr: Addr) -> Result<Word, StmError> {
        self.atomically(|tx| tx.read(addr))
    }

    /// Runs a convenience transaction writing a single word.
    ///
    /// # Errors
    ///
    /// Same as [`ThreadContext::atomically`].
    pub fn write_word(&mut self, addr: Addr, value: Word) -> Result<(), StmError> {
        self.atomically(|tx| tx.write(addr, value))
    }

    fn finish_commit(&mut self, shared: &TxShared, read_only: bool, attempts: u64) {
        let core = self.desc.core_mut();
        let reads = core.attempt_reads;
        let writes = core.attempt_writes;
        // Frees become effective only now that the transaction committed.
        // Take the log instead of cloning it so the commit epilogue stays
        // allocation-free; the emptied log (with its capacity) is put back.
        let mut alloc_log = std::mem::take(&mut core.alloc_log);
        for &(addr, words) in alloc_log.freed() {
            self.alg.heap().free(addr, words);
        }
        alloc_log.clear();
        self.desc.core_mut().alloc_log = alloc_log;
        self.stats.reads += reads;
        self.stats.writes += writes;
        self.stats.record_commit(read_only);
        self.stats.retries.record(attempts);
        shared.reset_aborts();
        self.alg.contention_manager().on_commit(shared);
        shared.set_status(TxStatus::Idle);
    }

    fn finish_abort(&mut self, shared: &TxShared, reason: AbortReason) {
        let core = self.desc.core_mut();
        let reads = core.attempt_reads;
        let writes = core.attempt_writes;
        // Allocations of the failed attempt are rolled back; same
        // allocation-free take-and-restore as `finish_commit`.
        let mut alloc_log = std::mem::take(&mut core.alloc_log);
        for &(addr, words) in alloc_log.allocated() {
            self.alg.heap().free(addr, words);
        }
        alloc_log.clear();
        self.desc.core_mut().alloc_log = alloc_log;
        self.stats.reads += reads;
        self.stats.writes += writes;
        self.stats.record_abort(reason);
        shared.record_abort();
        // Under the model checker, an abort caused by a lock that a rival
        // still holds turns the retry loop into a busy-wait: re-running the
        // attempt before the owner moves hits the same lock and spawns an
        // unbounded retry schedule. Yielding through the instrumented spin
        // hint parks this thread until another thread stores — sound,
        // because a held lock implies a live owner (every commit/rollback
        // path releases before the thread finishes), so a wake-up store is
        // always coming. Validation failures are not yielded: their retry
        // can succeed with no further external store (bounded by the finite
        // number of rival commits), so parking could deadlock the model.
        #[cfg(stm_model)]
        if matches!(reason, AbortReason::WriteConflict | AbortReason::ReadLocked) {
            crate::sync::spin_loop();
        }
        shared.set_status(TxStatus::Aborted);
        self.alg.contention_manager().on_rollback(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeapConfig;
    use crate::naive::NaiveGlobalLockTm;

    fn new_stm() -> Arc<NaiveGlobalLockTm> {
        Arc::new(NaiveGlobalLockTm::new(HeapConfig::small()))
    }

    #[test]
    fn atomically_commits_a_simple_transaction() {
        let stm = new_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        ctx.atomically(|tx| tx.write(addr, 5)).unwrap();
        assert_eq!(ctx.read_word(addr).unwrap(), 5);
        assert_eq!(ctx.stats().commits, 2);
    }

    #[test]
    fn explicit_retry_consumes_budget() {
        let stm = new_stm();
        let mut ctx = ThreadContext::register(stm).with_retry_budget(3);
        let result: Result<(), StmError> = ctx.atomically(|tx| tx.retry());
        assert!(matches!(
            result,
            Err(StmError::RetryBudgetExhausted { attempts: 3 })
        ));
        assert_eq!(ctx.stats().aborts, 3);
        assert_eq!(ctx.stats().commits, 0);
    }

    #[test]
    fn aborted_allocations_are_returned_to_the_heap() {
        let stm = new_stm();
        let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
        let live_before = stm.heap().live_words();
        let _ = ctx.atomically(|tx| {
            tx.alloc(8)?;
            tx.retry::<()>()
        });
        assert_eq!(stm.heap().live_words(), live_before);
    }

    #[test]
    fn commit_applies_deferred_frees() {
        let stm = new_stm();
        let block = stm.heap().alloc_zeroed(8).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        let live_before = stm.heap().live_words();
        ctx.atomically(|tx| {
            tx.free(block, 8);
            Ok(())
        })
        .unwrap();
        assert_eq!(stm.heap().live_words(), live_before - 8);
    }

    #[test]
    fn read_only_commits_are_tracked() {
        let stm = new_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| tx.read(addr)).unwrap();
        ctx.atomically(|tx| tx.write(addr, 1)).unwrap();
        assert_eq!(ctx.stats().read_only_commits, 1);
        assert_eq!(ctx.stats().commits, 2);
    }

    #[test]
    fn pointer_helpers_round_trip() {
        let stm = new_stm();
        let addr = stm.heap().alloc_zeroed(4).unwrap();
        let target = Addr::new(1234);
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| {
            tx.write_addr(addr, target)?;
            tx.write_field(addr, 1, 77)?;
            Ok(())
        })
        .unwrap();
        let (ptr, field) = ctx
            .atomically(|tx| Ok((tx.read_addr(addr)?, tx.read_field(addr, 1)?)))
            .unwrap();
        assert_eq!(ptr, target);
        assert_eq!(field, 77);
    }

    /// A minimal algorithm whose commit fails a configurable number of
    /// times. Commit failure leaves `needs_rollback` set on the descriptor;
    /// only `rollback` clears it, and `begin` asserts it is clear — so the
    /// test fails loudly if the driver ever skips `rollback` on the
    /// failed-commit path (the contract documented on [`TmAlgorithm`]).
    struct FlakyTm {
        heap: TmHeap,
        registry: ThreadRegistry,
        cm: crate::cm::Timid,
        commit_failures: crate::sync::AtomicU64,
        rollbacks: crate::sync::AtomicU64,
    }

    struct FlakyDescriptor {
        core: DescriptorCore,
        needs_rollback: bool,
    }

    impl TxDescriptor for FlakyDescriptor {
        fn core(&self) -> &DescriptorCore {
            &self.core
        }

        fn core_mut(&mut self) -> &mut DescriptorCore {
            &mut self.core
        }

        fn is_read_only(&self) -> bool {
            false
        }
    }

    impl TmAlgorithm for FlakyTm {
        type Descriptor = FlakyDescriptor;

        fn name(&self) -> &'static str {
            "flaky"
        }

        fn heap(&self) -> &TmHeap {
            &self.heap
        }

        fn registry(&self) -> &ThreadRegistry {
            &self.registry
        }

        fn contention_manager(&self) -> &dyn ContentionManager {
            &self.cm
        }

        fn create_descriptor(&self, slot: ThreadSlot) -> FlakyDescriptor {
            FlakyDescriptor {
                core: DescriptorCore::new(slot, Arc::clone(self.registry.shared(slot))),
                needs_rollback: false,
            }
        }

        fn begin(&self, desc: &mut FlakyDescriptor, _is_restart: bool) {
            assert!(
                !desc.needs_rollback,
                "begin reached without rollback after a failed commit"
            );
            desc.core.reset_attempt();
        }

        fn read(&self, desc: &mut FlakyDescriptor, addr: Addr) -> TxResult<Word> {
            desc.core.attempt_reads += 1;
            Ok(self.heap.load(addr))
        }

        fn write(&self, desc: &mut FlakyDescriptor, addr: Addr, value: Word) -> TxResult<()> {
            desc.core.attempt_writes += 1;
            self.heap.store(addr, value);
            Ok(())
        }

        fn commit(&self, desc: &mut FlakyDescriptor) -> TxResult<()> {
            use crate::sync::Ordering;
            // sync: Relaxed — single-threaded test harness.
            let remaining = self.commit_failures.load(Ordering::Relaxed);
            if remaining > 0 {
                // sync: Relaxed — single-threaded test harness.
                self.commit_failures.store(remaining - 1, Ordering::Relaxed);
                desc.needs_rollback = true;
                return Err(Abort::READ_VALIDATION);
            }
            Ok(())
        }

        fn rollback(&self, desc: &mut FlakyDescriptor) {
            desc.needs_rollback = false;
            self.rollbacks
                // sync: Relaxed — single-threaded test harness.
                .fetch_add(1, crate::sync::Ordering::Relaxed);
        }
    }

    #[test]
    fn rollback_runs_after_a_failed_commit() {
        let stm = Arc::new(FlakyTm {
            heap: TmHeap::new(HeapConfig::small()),
            registry: ThreadRegistry::new(),
            cm: crate::cm::Timid::new(),
            commit_failures: crate::sync::AtomicU64::new(2),
            rollbacks: crate::sync::AtomicU64::new(0),
        });
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        // Two commit failures, then success; `begin` panics if any failed
        // commit was not followed by `rollback`.
        ctx.atomically(|tx| tx.write(addr, 9)).unwrap();
        assert_eq!(
            // sync: Relaxed — single-threaded test harness.
            stm.rollbacks.load(crate::sync::Ordering::Relaxed),
            2,
            "driver must roll back once per failed commit"
        );
        assert_eq!(ctx.stats().aborts, 2);
        assert_eq!(ctx.stats().commits, 1);
    }

    #[test]
    fn take_stats_resets_counters() {
        let stm = new_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(stm);
        ctx.atomically(|tx| tx.write(addr, 1)).unwrap();
        let taken = ctx.take_stats();
        assert_eq!(taken.commits, 1);
        assert_eq!(ctx.stats().commits, 0);
    }
}
