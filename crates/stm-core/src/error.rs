//! Error and abort types shared by all STM implementations.

use std::error::Error;
use std::fmt;

/// Why a transaction was rolled back.
///
/// The reason is carried by [`Abort`] and recorded in the per-thread
/// statistics so that experiments can break aborts down by cause (the
/// paper's discussion of read/write vs write/write conflicts relies on
/// this distinction).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Read-set validation failed (a read/write conflict materialised).
    ReadValidation,
    /// A write/write conflict was resolved against this transaction.
    WriteConflict,
    /// A read observed a location locked by a committing writer and the
    /// contention policy chose to abort the reader.
    ReadLocked,
    /// Another transaction requested this transaction's abort (Greedy-style
    /// victim abort).
    RemoteAbort,
    /// The user program requested an explicit retry/abort.
    Explicit,
    /// The transactional allocator ran out of heap space.
    OutOfMemory,
}

impl AbortReason {
    /// Short machine-friendly label used in statistics tables.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::ReadValidation => "read-validation",
            AbortReason::WriteConflict => "write-conflict",
            AbortReason::ReadLocked => "read-locked",
            AbortReason::RemoteAbort => "remote-abort",
            AbortReason::Explicit => "explicit",
            AbortReason::OutOfMemory => "out-of-memory",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Control-flow token signalling that the current transaction attempt must
/// be rolled back and retried.
///
/// `Abort` is not a fatal error: the [`crate::tm::ThreadContext::atomically`]
/// driver catches it, rolls the attempt back, consults the contention
/// manager's back-off policy and retries. User code inside a transaction
/// simply propagates it with `?`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    /// The reason for the rollback.
    pub reason: AbortReason,
}

impl Abort {
    /// Creates an abort with the given reason.
    pub const fn new(reason: AbortReason) -> Self {
        Abort { reason }
    }

    /// Abort caused by failed read-set validation.
    pub const READ_VALIDATION: Abort = Abort::new(AbortReason::ReadValidation);
    /// Abort caused by a write/write conflict.
    pub const WRITE_CONFLICT: Abort = Abort::new(AbortReason::WriteConflict);
    /// Abort caused by reading a locked location.
    pub const READ_LOCKED: Abort = Abort::new(AbortReason::ReadLocked);
    /// Abort requested by another transaction.
    pub const REMOTE: Abort = Abort::new(AbortReason::RemoteAbort);
    /// Abort requested by the user program.
    pub const EXPLICIT: Abort = Abort::new(AbortReason::Explicit);
    /// Abort caused by allocator exhaustion.
    pub const OOM: Abort = Abort::new(AbortReason::OutOfMemory);
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted ({})", self.reason)
    }
}

impl Error for Abort {}

/// Result type used by transactional operations.
pub type TxResult<T> = Result<T, Abort>;

/// Errors surfaced outside of the transactional retry loop.
#[derive(Debug)]
pub enum StmError {
    /// The transactional heap has no room left for an allocation request.
    OutOfMemory {
        /// Number of words that were requested.
        requested: usize,
        /// Number of words still available.
        available: usize,
    },
    /// More threads registered than the configured maximum.
    TooManyThreads {
        /// The configured maximum number of thread slots.
        max: usize,
    },
    /// A transaction exceeded the configured retry budget.
    RetryBudgetExhausted {
        /// Number of attempts performed before giving up.
        attempts: u64,
    },
}

impl fmt::Display for StmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "transactional heap exhausted: requested {requested} words, {available} available"
            ),
            StmError::TooManyThreads { max } => {
                write!(f, "too many threads registered (maximum {max})")
            }
            StmError::RetryBudgetExhausted { attempts } => {
                write!(
                    f,
                    "transaction retry budget exhausted after {attempts} attempts"
                )
            }
        }
    }
}

impl Error for StmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_display_mentions_reason() {
        let msg = Abort::WRITE_CONFLICT.to_string();
        assert!(msg.contains("write-conflict"), "{msg}");
    }

    #[test]
    fn reasons_have_distinct_labels() {
        let all = [
            AbortReason::ReadValidation,
            AbortReason::WriteConflict,
            AbortReason::ReadLocked,
            AbortReason::RemoteAbort,
            AbortReason::Explicit,
            AbortReason::OutOfMemory,
        ];
        let mut labels: Vec<_> = all.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn stm_error_messages_are_informative() {
        let e = StmError::OutOfMemory {
            requested: 10,
            available: 2,
        };
        assert!(e.to_string().contains("10"));
        let e = StmError::TooManyThreads { max: 64 };
        assert!(e.to_string().contains("64"));
        let e = StmError::RetryBudgetExhausted { attempts: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn abort_is_error_trait_object_compatible() {
        fn takes_error(_: &dyn Error) {}
        takes_error(&Abort::EXPLICIT);
        takes_error(&StmError::TooManyThreads { max: 1 });
    }
}
