//! Configuration types for the transactional heap, lock tables, and the
//! commit clock.

use std::str::FromStr;

/// How the global commit clock hands out timestamps
/// ([`crate::clock::TxClock`]).
///
/// `Strict` is the paper's `increment&get`: every update commit CASes the
/// shared counter, which serialises all committers on one cache line.
/// `Deferred` is a TL2/GV5-style "sloppy" clock: committers *read* the
/// clock and stamp `read + 1` without advancing it; the counter only moves
/// when a reader observes a version ahead of its snapshot. The trade-off
/// (documented in detail on [`crate::clock::TxClock`]) is that timestamps
/// are no longer unique, so commit-time validation can never be skipped —
/// the clock abstraction encodes this in [`crate::clock::CommitStamp`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ClockMode {
    /// One CAS per update commit; unique timestamps (the paper's scheme).
    #[default]
    Strict,
    /// GV5-style deferred clock: no CAS on the commit fast path; duplicate
    /// timestamps allowed, commit validation always runs.
    Deferred,
}

impl ClockMode {
    /// All modes, for conformance sweeps.
    pub const ALL: [ClockMode; 2] = [ClockMode::Strict, ClockMode::Deferred];

    /// Short machine-friendly label used in tables and CLI flags.
    pub const fn label(self) -> &'static str {
        match self {
            ClockMode::Strict => "strict",
            ClockMode::Deferred => "deferred",
        }
    }
}

impl FromStr for ClockMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(ClockMode::Strict),
            "deferred" | "sloppy" => Ok(ClockMode::Deferred),
            other => Err(format!(
                "unknown clock mode '{other}' (expected strict|deferred)"
            )),
        }
    }
}

/// Memory layout of the lock table ([`crate::locktable::LockTable`]).
///
/// `Flat` is the paper's layout: entries packed back to back, so with
/// 8-byte entries eight adjacent stripes share one 64-byte cache line and
/// writers of *neighbouring* stripes ping-pong that line. `Padded` gives
/// every entry its own line (at 4–8× the table's memory). `Mixed` keeps the
/// packed layout but scrambles which entry a stripe maps to, so stripes
/// that are adjacent in the heap land on distant cache lines; `PaddedMixed`
/// combines both.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TableLayout {
    /// Packed entries, identity stripe→entry mapping (the paper's layout).
    #[default]
    Flat,
    /// Packed entries, index-mixed stripe→entry mapping.
    Mixed,
    /// One cache line per entry, identity mapping.
    Padded,
    /// One cache line per entry *and* index mixing.
    PaddedMixed,
}

impl TableLayout {
    /// All layouts, for conformance sweeps.
    pub const ALL: [TableLayout; 4] = [
        TableLayout::Flat,
        TableLayout::Mixed,
        TableLayout::Padded,
        TableLayout::PaddedMixed,
    ];

    /// Whether entries are cache-line padded.
    pub const fn padded(self) -> bool {
        matches!(self, TableLayout::Padded | TableLayout::PaddedMixed)
    }

    /// Whether the stripe index is mixed before indexing the table.
    pub const fn mixed(self) -> bool {
        matches!(self, TableLayout::Mixed | TableLayout::PaddedMixed)
    }

    /// Short machine-friendly label used in tables and CLI flags.
    pub const fn label(self) -> &'static str {
        match self {
            TableLayout::Flat => "flat",
            TableLayout::Mixed => "mixed",
            TableLayout::Padded => "padded",
            TableLayout::PaddedMixed => "padded-mixed",
        }
    }
}

impl FromStr for TableLayout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flat" => Ok(TableLayout::Flat),
            "mixed" => Ok(TableLayout::Mixed),
            "padded" => Ok(TableLayout::Padded),
            "padded-mixed" => Ok(TableLayout::PaddedMixed),
            other => Err(format!(
                "unknown table layout '{other}' (expected flat|mixed|padded|padded-mixed)"
            )),
        }
    }
}

/// Configuration of the shared transactional heap.
///
/// The heap is a fixed-size slab allocated up front; the paper's C++
/// implementation works directly on process memory, here the heap plays the
/// role of that address space (DESIGN.md §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapConfig {
    /// Total number of 64-bit words in the heap (word 0 is reserved for
    /// [`crate::word::Addr::NULL`]).
    pub words: usize,
}

impl HeapConfig {
    /// A small heap (64 Ki words = 512 KiB) suitable for unit tests.
    pub fn small() -> Self {
        HeapConfig { words: 1 << 16 }
    }

    /// A medium heap (4 Mi words = 32 MiB) suitable for microbenchmarks.
    pub fn medium() -> Self {
        HeapConfig { words: 1 << 22 }
    }

    /// A large heap (16 Mi words = 128 MiB) used by STMBench7 and STAMP
    /// style workloads.
    pub fn large() -> Self {
        HeapConfig { words: 1 << 24 }
    }

    /// A heap with an explicit word count.
    pub fn with_words(words: usize) -> Self {
        HeapConfig { words }
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig::medium()
    }
}

/// Configuration of a lock table (the paper's Figure 1 mapping).
///
/// Each stripe of `2^grain_shift` consecutive heap words maps to one lock
/// table entry; the table has `2^log2_entries` entries and the mapping is
/// `(addr >> grain_shift) & (2^log2_entries - 1)`.
///
/// The paper (Section 3.3 and Figure 13) works with 32-bit words and finds
/// a 16-byte stripe (4 words, shift-by-4 on byte addresses) optimal. Our
/// heap words are 64-bit, so the equivalent default is `grain_shift = 1`
/// (2 × 8-byte words = 16 bytes per stripe).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockTableConfig {
    /// log2 of the number of lock-table entries.
    pub log2_entries: u32,
    /// log2 of the number of heap words covered by one entry.
    pub grain_shift: u32,
    /// Memory layout of the table (padding and index mixing).
    pub layout: TableLayout,
}

impl LockTableConfig {
    /// The paper's default: 2^22 entries, 16-byte stripes, flat layout.
    pub fn paper_default() -> Self {
        LockTableConfig {
            log2_entries: 22,
            grain_shift: 1,
            layout: TableLayout::Flat,
        }
    }

    /// A small table for unit tests (2^12 entries) keeping the default
    /// stripe size.
    pub fn small() -> Self {
        LockTableConfig {
            log2_entries: 12,
            grain_shift: 1,
            layout: TableLayout::Flat,
        }
    }

    /// Overrides the stripe granularity (log2 words per stripe). Used by the
    /// Figure 13 / Table 2 granularity sweeps.
    pub fn with_grain_shift(mut self, grain_shift: u32) -> Self {
        self.grain_shift = grain_shift;
        self
    }

    /// Overrides the number of entries.
    pub fn with_log2_entries(mut self, log2_entries: u32) -> Self {
        self.log2_entries = log2_entries;
        self
    }

    /// Overrides the memory layout.
    pub fn with_layout(mut self, layout: TableLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Number of entries in the table.
    pub fn entries(&self) -> usize {
        1usize << self.log2_entries
    }

    /// Number of heap words covered by one entry.
    pub fn words_per_stripe(&self) -> usize {
        1usize << self.grain_shift
    }

    /// Stripe size in bytes (for reporting against the paper's byte-based
    /// granularity axis).
    pub fn stripe_bytes(&self) -> usize {
        self.words_per_stripe() * std::mem::size_of::<u64>()
    }
}

impl Default for LockTableConfig {
    fn default() -> Self {
        LockTableConfig::paper_default()
    }
}

/// Combined configuration used by STM constructors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StmConfig {
    /// Heap configuration.
    pub heap: HeapConfig,
    /// Lock-table configuration.
    pub lock_table: LockTableConfig,
    /// Commit-clock mode.
    pub clock: ClockMode,
}

impl StmConfig {
    /// Configuration for unit tests: small heap, small lock table.
    pub fn small() -> Self {
        StmConfig {
            heap: HeapConfig::small(),
            lock_table: LockTableConfig::small(),
            clock: ClockMode::Strict,
        }
    }

    /// Configuration used by benchmark harnesses: large heap, paper-default
    /// lock table.
    pub fn benchmark() -> Self {
        StmConfig {
            heap: HeapConfig::large(),
            lock_table: LockTableConfig::paper_default(),
            clock: ClockMode::Strict,
        }
    }

    /// Sets the heap configuration.
    pub fn with_heap(mut self, heap: HeapConfig) -> Self {
        self.heap = heap;
        self
    }

    /// Sets the lock-table configuration.
    pub fn with_lock_table(mut self, lock_table: LockTableConfig) -> Self {
        self.lock_table = lock_table;
        self
    }

    /// Sets the commit-clock mode.
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the lock-table layout, keeping the other table parameters.
    pub fn with_table_layout(mut self, layout: TableLayout) -> Self {
        self.lock_table.layout = layout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lock_table_matches_paper() {
        let c = LockTableConfig::paper_default();
        assert_eq!(c.entries(), 1 << 22);
        assert_eq!(c.stripe_bytes(), 16);
    }

    #[test]
    fn grain_shift_override() {
        let c = LockTableConfig::small().with_grain_shift(3);
        assert_eq!(c.words_per_stripe(), 8);
        assert_eq!(c.stripe_bytes(), 64);
    }

    #[test]
    fn heap_presets_are_ordered() {
        assert!(HeapConfig::small().words < HeapConfig::medium().words);
        assert!(HeapConfig::medium().words < HeapConfig::large().words);
    }

    #[test]
    fn stm_config_builders() {
        let c = StmConfig::small()
            .with_heap(HeapConfig::with_words(1234))
            .with_lock_table(LockTableConfig::small().with_log2_entries(8))
            .with_clock(ClockMode::Deferred)
            .with_table_layout(TableLayout::PaddedMixed);
        assert_eq!(c.heap.words, 1234);
        assert_eq!(c.lock_table.entries(), 256);
        assert_eq!(c.clock, ClockMode::Deferred);
        assert_eq!(c.lock_table.layout, TableLayout::PaddedMixed);
    }

    #[test]
    fn defaults_match_the_paper() {
        assert_eq!(StmConfig::default().clock, ClockMode::Strict);
        assert_eq!(StmConfig::default().lock_table.layout, TableLayout::Flat);
        assert_eq!(StmConfig::benchmark().clock, ClockMode::Strict);
    }

    #[test]
    fn clock_mode_labels_round_trip() {
        for mode in ClockMode::ALL {
            assert_eq!(mode.label().parse::<ClockMode>().unwrap(), mode);
        }
        assert_eq!("sloppy".parse::<ClockMode>().unwrap(), ClockMode::Deferred);
        assert!("gv9".parse::<ClockMode>().is_err());
    }

    #[test]
    fn table_layout_labels_round_trip() {
        for layout in TableLayout::ALL {
            assert_eq!(layout.label().parse::<TableLayout>().unwrap(), layout);
        }
        assert!(TableLayout::PaddedMixed.padded());
        assert!(TableLayout::PaddedMixed.mixed());
        assert!(!TableLayout::Flat.padded() && !TableLayout::Flat.mixed());
        assert!(TableLayout::Mixed.mixed() && !TableLayout::Mixed.padded());
        assert!(TableLayout::Padded.padded() && !TableLayout::Padded.mixed());
        assert!("sparse".parse::<TableLayout>().is_err());
    }
}
