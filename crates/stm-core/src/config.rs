//! Configuration types for the transactional heap and lock tables.

/// Configuration of the shared transactional heap.
///
/// The heap is a fixed-size slab allocated up front; the paper's C++
/// implementation works directly on process memory, here the heap plays the
/// role of that address space (DESIGN.md §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapConfig {
    /// Total number of 64-bit words in the heap (word 0 is reserved for
    /// [`crate::word::Addr::NULL`]).
    pub words: usize,
}

impl HeapConfig {
    /// A small heap (64 Ki words = 512 KiB) suitable for unit tests.
    pub fn small() -> Self {
        HeapConfig { words: 1 << 16 }
    }

    /// A medium heap (4 Mi words = 32 MiB) suitable for microbenchmarks.
    pub fn medium() -> Self {
        HeapConfig { words: 1 << 22 }
    }

    /// A large heap (16 Mi words = 128 MiB) used by STMBench7 and STAMP
    /// style workloads.
    pub fn large() -> Self {
        HeapConfig { words: 1 << 24 }
    }

    /// A heap with an explicit word count.
    pub fn with_words(words: usize) -> Self {
        HeapConfig { words }
    }
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig::medium()
    }
}

/// Configuration of a lock table (the paper's Figure 1 mapping).
///
/// Each stripe of `2^grain_shift` consecutive heap words maps to one lock
/// table entry; the table has `2^log2_entries` entries and the mapping is
/// `(addr >> grain_shift) & (2^log2_entries - 1)`.
///
/// The paper (Section 3.3 and Figure 13) works with 32-bit words and finds
/// a 16-byte stripe (4 words, shift-by-4 on byte addresses) optimal. Our
/// heap words are 64-bit, so the equivalent default is `grain_shift = 1`
/// (2 × 8-byte words = 16 bytes per stripe).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockTableConfig {
    /// log2 of the number of lock-table entries.
    pub log2_entries: u32,
    /// log2 of the number of heap words covered by one entry.
    pub grain_shift: u32,
}

impl LockTableConfig {
    /// The paper's default: 2^22 entries, 16-byte stripes.
    pub fn paper_default() -> Self {
        LockTableConfig {
            log2_entries: 22,
            grain_shift: 1,
        }
    }

    /// A small table for unit tests (2^12 entries) keeping the default
    /// stripe size.
    pub fn small() -> Self {
        LockTableConfig {
            log2_entries: 12,
            grain_shift: 1,
        }
    }

    /// Overrides the stripe granularity (log2 words per stripe). Used by the
    /// Figure 13 / Table 2 granularity sweeps.
    pub fn with_grain_shift(mut self, grain_shift: u32) -> Self {
        self.grain_shift = grain_shift;
        self
    }

    /// Overrides the number of entries.
    pub fn with_log2_entries(mut self, log2_entries: u32) -> Self {
        self.log2_entries = log2_entries;
        self
    }

    /// Number of entries in the table.
    pub fn entries(&self) -> usize {
        1usize << self.log2_entries
    }

    /// Number of heap words covered by one entry.
    pub fn words_per_stripe(&self) -> usize {
        1usize << self.grain_shift
    }

    /// Stripe size in bytes (for reporting against the paper's byte-based
    /// granularity axis).
    pub fn stripe_bytes(&self) -> usize {
        self.words_per_stripe() * std::mem::size_of::<u64>()
    }
}

impl Default for LockTableConfig {
    fn default() -> Self {
        LockTableConfig::paper_default()
    }
}

/// Combined configuration used by STM constructors.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StmConfig {
    /// Heap configuration.
    pub heap: HeapConfig,
    /// Lock-table configuration.
    pub lock_table: LockTableConfig,
}

impl StmConfig {
    /// Configuration for unit tests: small heap, small lock table.
    pub fn small() -> Self {
        StmConfig {
            heap: HeapConfig::small(),
            lock_table: LockTableConfig::small(),
        }
    }

    /// Configuration used by benchmark harnesses: large heap, paper-default
    /// lock table.
    pub fn benchmark() -> Self {
        StmConfig {
            heap: HeapConfig::large(),
            lock_table: LockTableConfig::paper_default(),
        }
    }

    /// Sets the heap configuration.
    pub fn with_heap(mut self, heap: HeapConfig) -> Self {
        self.heap = heap;
        self
    }

    /// Sets the lock-table configuration.
    pub fn with_lock_table(mut self, lock_table: LockTableConfig) -> Self {
        self.lock_table = lock_table;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lock_table_matches_paper() {
        let c = LockTableConfig::paper_default();
        assert_eq!(c.entries(), 1 << 22);
        assert_eq!(c.stripe_bytes(), 16);
    }

    #[test]
    fn grain_shift_override() {
        let c = LockTableConfig::small().with_grain_shift(3);
        assert_eq!(c.words_per_stripe(), 8);
        assert_eq!(c.stripe_bytes(), 64);
    }

    #[test]
    fn heap_presets_are_ordered() {
        assert!(HeapConfig::small().words < HeapConfig::medium().words);
        assert!(HeapConfig::medium().words < HeapConfig::large().words);
    }

    #[test]
    fn stm_config_builders() {
        let c = StmConfig::small()
            .with_heap(HeapConfig::with_words(1234))
            .with_lock_table(LockTableConfig::small().with_log2_entries(8));
        assert_eq!(c.heap.words, 1234);
        assert_eq!(c.lock_table.entries(), 256);
    }
}
