//! One Criterion group per figure/table of the paper.
//!
//! Each benchmark measures the wall-clock time of one experiment data point
//! (a workload on an STM configuration) through the same runner the `repro`
//! binary uses. The goal is not absolute numbers but tracking the *relative*
//! behaviour of the STMs over time; EXPERIMENTS.md interprets a full run.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rstm::RstmVariant;
use stm_bench::bench_options;
use stm_harness::runner::{run_point, Benchmark, CmChoice, RunOptions, StmVariant};
use stm_workloads::lee::LeeConfig;
use stm_workloads::rbtree::RbTreeConfig;
use stm_workloads::stamp::StampApp;
use stm_workloads::stmbench7::WorkloadMix;

const BENCH_THREADS: usize = 2;

fn options() -> RunOptions {
    bench_options(BENCH_THREADS)
}

/// Figure 2: STMBench7 throughput for the four STMs (read-dominated mix).
fn fig2_stmbench7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_stmbench7_read_dominated");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for variant in StmVariant::paper_defaults() {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    run_point(
                        variant,
                        &Benchmark::Bench7(WorkloadMix::read_dominated()),
                        BENCH_THREADS,
                        &options(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// Figure 3: STAMP — SwissTM vs TL2 and TinySTM on a representative subset.
fn fig3_stamp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_stamp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let apps = [
        StampApp::KmeansHigh,
        StampApp::Intruder,
        StampApp::VacationHigh,
        StampApp::Yada,
    ];
    let variants = [
        StmVariant::Swiss(CmChoice::Default),
        StmVariant::Tl2(CmChoice::Default),
        StmVariant::Tiny(CmChoice::Default),
    ];
    for app in apps {
        for variant in variants {
            let id = BenchmarkId::new(app.label(), variant.label());
            group.bench_function(id, |b| {
                b.iter(|| run_point(variant, &Benchmark::Stamp(app), BENCH_THREADS, &options()));
            });
        }
    }
    group.finish();
}

/// Figure 4: Lee-TM execution time (tiny board, so one iteration stays
/// in the millisecond range; the real boards belong to the repro sweeps).
fn fig4_lee(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_lee_small");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let variants = [
        StmVariant::Swiss(CmChoice::Default),
        StmVariant::Tiny(CmChoice::Default),
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Default),
    ];
    for variant in variants {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    // The tiny board keeps one iteration in the
                    // single-digit-millisecond range `bench_options`
                    // promises; the quick memory board (160 routes) is
                    // 20x that and belongs to the repro sweeps.
                    run_point(
                        variant,
                        &Benchmark::Lee(LeeConfig::tiny()),
                        BENCH_THREADS,
                        &options(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// Figure 5: red-black tree microbenchmark throughput.
fn fig5_rbtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_rbtree");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for variant in StmVariant::paper_defaults() {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    run_point(
                        variant,
                        &Benchmark::RbTree(RbTreeConfig::small()),
                        BENCH_THREADS,
                        &options(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// Figures 7/8: conflict-detection ablation — eager (TinySTM) vs lazy (TL2)
/// vs mixed (SwissTM) on the irregular Lee-TM workload.
fn fig7_8_conflict_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_8_irregular_lee");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for ratio in [0u64, 20] {
        for variant in [
            StmVariant::Swiss(CmChoice::Default),
            StmVariant::Tiny(CmChoice::Default),
        ] {
            let id = BenchmarkId::new(variant.label(), format!("R={ratio}%"));
            group.bench_function(id, |b| {
                b.iter(|| {
                    run_point(
                        variant,
                        &Benchmark::Lee(LeeConfig::tiny().with_irregular_updates(ratio)),
                        BENCH_THREADS,
                        &options(),
                    )
                });
            });
        }
    }
    group.finish();
}

/// Figures 9/10/12, Table 1: contention-manager ablation on SwissTM and
/// RSTM.
fn fig9_12_contention_managers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_12_contention_managers");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let variants = [
        StmVariant::Swiss(CmChoice::TwoPhase),
        StmVariant::Swiss(CmChoice::Timid),
        StmVariant::Swiss(CmChoice::Greedy),
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Polka),
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Greedy),
    ];
    for variant in variants {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    run_point(
                        variant,
                        &Benchmark::Bench7(WorkloadMix::read_write()),
                        BENCH_THREADS,
                        &options(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// Figure 11: back-off vs no back-off on the intruder hot spot.
fn fig11_backoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_backoff_intruder");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for variant in [
        StmVariant::Swiss(CmChoice::TwoPhase),
        StmVariant::Swiss(CmChoice::TwoPhaseNoBackoff),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.label()),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    run_point(
                        variant,
                        &Benchmark::Stamp(StampApp::Intruder),
                        BENCH_THREADS,
                        &options(),
                    )
                });
            },
        );
    }
    group.finish();
}

/// Figure 13 / Table 2: lock-granularity ablation on the red-black tree.
fn fig13_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_lock_granularity");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    for grain_shift in [0u32, 1, 3, 5] {
        let id = BenchmarkId::from_parameter(format!("{}B", 8u32 << grain_shift));
        group.bench_function(id, |b| {
            let options = options().with_grain_shift(grain_shift);
            b.iter(|| {
                run_point(
                    StmVariant::Swiss(CmChoice::Default),
                    &Benchmark::RbTree(RbTreeConfig::small()),
                    BENCH_THREADS,
                    &options,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    paper_figures,
    fig2_stmbench7,
    fig3_stamp,
    fig4_lee,
    fig5_rbtree,
    fig7_8_conflict_detection,
    fig9_12_contention_managers,
    fig11_backoff,
    fig13_granularity
);
criterion_main!(paper_figures);
