//! Microbenchmarks of the raw STM primitives (single-threaded).
//!
//! These track the per-operation overheads of the four algorithms: the
//! effect the paper discusses for the single-thread red-black tree numbers
//! (SwissTM pays for its two locks per stripe, RSTM for its object
//! metadata).

use std::sync::Arc;

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rstm::{Rstm, RstmVariant};
use stm_core::config::{ClockMode, StmConfig, TableLayout};
use stm_core::tm::{ThreadContext, TmAlgorithm};
use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

fn config() -> StmConfig {
    StmConfig::small()
}

/// The sharded configuration: deferred commit clock + cache-line-padded,
/// index-mixed lock table. Benchmarked alongside the default so the
/// uncontended single-thread path of the relaxed/padded combination is
/// tracked against the strict/flat baseline (it must stay within noise —
/// the sharding only pays off under cross-thread contention).
fn sharded_config() -> StmConfig {
    StmConfig::small()
        .with_clock(ClockMode::Deferred)
        .with_table_layout(TableLayout::PaddedMixed)
}

/// Entries per transaction in the large read/write-set cases: big enough
/// that any per-operation scan of the descriptor's own logs (the seed's
/// `Vec::contains`-style acquired-stripe and visible-reader tracking)
/// dominates the run time quadratically.
const LARGE_SET: usize = 4096;

fn bench_algorithm<A: TmAlgorithm>(c: &mut Criterion, group_name: &str, stm: Arc<A>) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(600));
    let block = stm.heap().alloc_zeroed(64).expect("heap exhausted");
    let mut ctx = ThreadContext::register(Arc::clone(&stm));

    group.bench_function(BenchmarkId::from_parameter("read_8_words"), |b| {
        b.iter(|| {
            ctx.atomically(|tx| {
                let mut sum = 0;
                for i in 0..8 {
                    sum += tx.read(block.offset(i))?;
                }
                Ok(sum)
            })
            .unwrap()
        });
    });

    group.bench_function(BenchmarkId::from_parameter("write_8_words"), |b| {
        b.iter(|| {
            ctx.atomically(|tx| {
                for i in 0..8 {
                    tx.write(block.offset(i), i as u64)?;
                }
                Ok(())
            })
            .unwrap()
        });
    });

    group.bench_function(BenchmarkId::from_parameter("read_modify_write"), |b| {
        b.iter(|| {
            ctx.atomically(|tx| {
                let v = tx.read(block)?;
                tx.write(block, v + 1)
            })
            .unwrap()
        });
    });

    group.finish();
}

/// Single transactions with ≥4k-entry read/write sets. These isolate the
/// cost of the descriptor-side log bookkeeping: with O(1) stripe tracking
/// every case is linear in the set size; with the seed's linear scans the
/// write-heavy cases (and visible reads) degrade quadratically.
fn bench_large_sets<A: TmAlgorithm>(c: &mut Criterion, group_name: &str, stm: Arc<A>) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_millis(700));
    let block = stm.heap().alloc_zeroed(LARGE_SET).expect("heap exhausted");
    let mut ctx = ThreadContext::register(Arc::clone(&stm));

    group.bench_function(BenchmarkId::from_parameter("read_4096_words"), |b| {
        b.iter(|| {
            ctx.atomically(|tx| {
                let mut sum = 0;
                for i in 0..LARGE_SET {
                    sum += tx.read(block.offset(i))?;
                }
                Ok(sum)
            })
            .unwrap()
        });
    });

    group.bench_function(BenchmarkId::from_parameter("write_4096_words"), |b| {
        b.iter(|| {
            ctx.atomically(|tx| {
                for i in 0..LARGE_SET {
                    tx.write(block.offset(i), i as u64)?;
                }
                Ok(())
            })
            .unwrap()
        });
    });

    group.bench_function(
        BenchmarkId::from_parameter("read_after_write_4096_words"),
        |b| {
            b.iter(|| {
                ctx.atomically(|tx| {
                    for i in 0..LARGE_SET {
                        tx.write(block.offset(i), i as u64)?;
                    }
                    let mut sum = 0;
                    for i in 0..LARGE_SET {
                        sum += tx.read(block.offset(i))?;
                    }
                    Ok(sum)
                })
                .unwrap()
            });
        },
    );

    group.finish();
}

fn primitives(c: &mut Criterion) {
    bench_algorithm(
        c,
        "primitives_swisstm",
        Arc::new(SwissTm::with_config(config())),
    );
    bench_algorithm(c, "primitives_tl2", Arc::new(Tl2::with_config(config())));
    bench_algorithm(
        c,
        "primitives_tinystm",
        Arc::new(TinyStm::with_config(config())),
    );
    bench_algorithm(c, "primitives_rstm", Arc::new(Rstm::with_config(config())));
}

/// The same primitive cases under the sharded configuration (deferred
/// clock, padded-mixed lock table): single-threaded, so any delta vs the
/// `primitives_*` groups is pure uncontended-path overhead.
fn primitives_sharded(c: &mut Criterion) {
    bench_algorithm(
        c,
        "primitives_swisstm_sharded",
        Arc::new(SwissTm::with_config(sharded_config())),
    );
    bench_algorithm(
        c,
        "primitives_tl2_sharded",
        Arc::new(Tl2::with_config(sharded_config())),
    );
    bench_algorithm(
        c,
        "primitives_tinystm_sharded",
        Arc::new(TinyStm::with_config(sharded_config())),
    );
    bench_algorithm(
        c,
        "primitives_rstm_sharded",
        Arc::new(Rstm::with_config(sharded_config())),
    );
}

fn large_sets(c: &mut Criterion) {
    bench_large_sets(
        c,
        "large_sets_swisstm",
        Arc::new(SwissTm::with_config(config())),
    );
    bench_large_sets(c, "large_sets_tl2", Arc::new(Tl2::with_config(config())));
    bench_large_sets(
        c,
        "large_sets_tinystm",
        Arc::new(TinyStm::with_config(config())),
    );
    bench_large_sets(c, "large_sets_rstm", Arc::new(Rstm::with_config(config())));
    // The visible-readers variant additionally exercises the per-read
    // registration set (the seed's `visible_reads.contains` linear scan).
    bench_large_sets(
        c,
        "large_sets_rstm_visible",
        Arc::new(
            Rstm::builder()
                .config(config())
                .variant(RstmVariant::eager_visible())
                .build(),
        ),
    );
}

criterion_group!(stm_primitives, primitives, primitives_sharded, large_sets);
criterion_main!(stm_primitives);
