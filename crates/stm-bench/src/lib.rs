//! # stm-bench
//!
//! Criterion benchmarks for the SwissTM reproduction.
//!
//! Two bench targets exist:
//!
//! * `paper_figures` — one benchmark group per figure/table of the paper,
//!   each measuring the corresponding workload/STM combination through the
//!   same [`stm_harness::runner`] code the `repro` binary uses (with small
//!   data points, so `cargo bench` completes in minutes).
//! * `stm_primitives` — microbenchmarks of the raw STM operations (read,
//!   write, commit) across the four algorithms, useful for tracking
//!   single-thread overheads (the effect visible in the paper's Figure 5 at
//!   one thread).
//!
//! This crate's library part only re-exports the helpers shared by the two
//! bench targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use stm_harness::runner::RunOptions;
use stm_workloads::profile::SizeProfile;

/// Run options used by the Criterion benches: single-digit-millisecond data
/// points so the full suite stays fast.
pub fn bench_options(threads: usize) -> RunOptions {
    RunOptions {
        max_threads: threads,
        point_duration: Duration::from_millis(25),
        heap_words: 1 << 21,
        lock_table_log2: 14,
        grain_shift: 1,
        clock: stm_core::config::ClockMode::Strict,
        table_layout: stm_core::config::TableLayout::Flat,
        pin: stm_workloads::placement::PlacementPolicy::None,
        profile: SizeProfile::Quick,
        seed: 0xbe7c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_options_are_small() {
        let options = bench_options(2);
        assert_eq!(options.max_threads, 2);
        assert!(options.point_duration < Duration::from_millis(100));
    }
}
