//! Model-checked scenarios for the four STMs.
//!
//! This crate is a test host: the scenarios live in `tests/` and are
//! compiled only under `RUSTFLAGS="--cfg stm_model"`, which flips the
//! `stm_core::sync` shim from `std::sync::atomic` to the instrumented
//! atomics in `stm-model`. In a normal build (the tier-1 path) the test
//! files compile to nothing, so `cargo test -q` stays fast and the
//! production crates stay uninstrumented.
//!
//! Run the model suite with:
//!
//! ```text
//! RUSTFLAGS="--cfg stm_model" cargo test -p stm-model-tests --release
//! ```
