//! Shared scaffolding for the model scenarios.
//!
//! Every scenario builds a *tiny* STM instance — a handful of heap words and
//! a 4-entry lock table — so that the conflicting addresses actually collide
//! in the lock table and the atomic-operation count per execution stays
//! small enough for exhaustive exploration.
//!
//! All builders pin the contention manager to [`Timid`]: it resolves every
//! conflict by aborting the attacker immediately, which keeps the retry
//! structure simple (abort → model yield → retry once the owner stores).
//! CMs that *wait* (Greedy, TwoPhase) spin through `stm_core::sync::
//! spin_loop()` and are exercised by the contention rig, not the model.

// Each scenario binary includes this module and uses only its own subset of
// the builders.
#![allow(dead_code)]

use std::sync::Arc;

use rstm::{Rstm, RstmVariant};
use stm_core::cm::Timid;
use stm_core::error::TxResult;
use stm_core::prelude::*;
use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

/// Smallest useful STM configuration: 8 heap words, 4 lock-table entries.
pub fn tiny_config() -> StmConfig {
    StmConfig::small()
        .with_heap(HeapConfig::with_words(8))
        .with_lock_table(LockTableConfig::small().with_log2_entries(2))
}

pub fn swisstm(cfg: StmConfig) -> Arc<SwissTm> {
    Arc::new(
        SwissTm::builder()
            .config(cfg)
            .contention_manager(Arc::new(Timid::new()))
            .build(),
    )
}

pub fn tl2(cfg: StmConfig) -> Arc<Tl2> {
    Arc::new(
        Tl2::builder()
            .config(cfg)
            .contention_manager(Arc::new(Timid::new()))
            .build(),
    )
}

pub fn tinystm(cfg: StmConfig) -> Arc<TinyStm> {
    Arc::new(
        TinyStm::builder()
            .config(cfg)
            .contention_manager(Arc::new(Timid::new()))
            .build(),
    )
}

pub fn rstm(cfg: StmConfig, variant: RstmVariant) -> Arc<Rstm> {
    Arc::new(
        Rstm::builder()
            .config(cfg)
            .variant(variant)
            .contention_manager(Arc::new(Timid::new()))
            .build(),
    )
}

/// Runs one transaction on a freshly registered context, unwrapping the
/// result (the scenarios expect every transaction to eventually commit).
pub fn run_tx<A, R>(stm: Arc<A>, body: impl FnMut(&mut Tx<'_, A>) -> TxResult<R>) -> R
where
    A: TmAlgorithm,
{
    let mut ctx = ThreadContext::register(stm);
    ctx.atomically(body).expect("scenario transaction failed")
}
