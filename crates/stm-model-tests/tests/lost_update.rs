//! The PR 1 lost-update scenario, model-checked on all four STMs.
//!
//! Two threads each run one read-increment-write transaction on the same
//! word. Under *every* interleaving (and every stale-read choice the memory
//! model allows), both increments must survive: the final value is 2. A
//! write-after-read race that silently drops an update — the bug class the
//! original single-lock prototype had before per-word versioned locks — is
//! caught here as an assertion failure with a replayable schedule.
//!
//! Run with: `RUSTFLAGS="--cfg stm_model" cargo test -p stm-model-tests`
#![cfg(stm_model)]

mod common;

use std::sync::Arc;

use rstm::RstmVariant;
use stm_core::prelude::*;

use common::{rstm, run_tx, swisstm, tiny_config, tinystm, tl2};

fn check_lost_update<A>(make: impl Fn() -> Arc<A> + Copy) -> stm_model::Report
where
    A: TmAlgorithm + 'static,
{
    stm_model::model(move || {
        let stm = make();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let stm = Arc::clone(&stm);
                stm_model::thread::spawn(move || {
                    run_tx(stm, |tx| {
                        let v = tx.read(addr)?;
                        tx.write(addr, v + 1)
                    });
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(stm.heap().load(addr), 2, "an increment was lost");
    })
}

#[test]
fn swisstm_never_loses_an_update() {
    let report = check_lost_update(|| swisstm(tiny_config()));
    println!("swisstm lost-update: {} executions", report.executions);
}

#[test]
fn tl2_never_loses_an_update() {
    let report = check_lost_update(|| tl2(tiny_config()));
    println!("tl2 lost-update: {} executions", report.executions);
}

#[test]
fn tinystm_never_loses_an_update() {
    let report = check_lost_update(|| tinystm(tiny_config()));
    println!("tinystm lost-update: {} executions", report.executions);
}

#[test]
fn rstm_eager_never_loses_an_update() {
    let report = check_lost_update(|| rstm(tiny_config(), RstmVariant::eager_invisible()));
    println!("rstm eager lost-update: {} executions", report.executions);
}

#[test]
fn rstm_lazy_never_loses_an_update() {
    let report = check_lost_update(|| rstm(tiny_config(), RstmVariant::lazy_invisible()));
    println!("rstm lazy lost-update: {} executions", report.executions);
}
