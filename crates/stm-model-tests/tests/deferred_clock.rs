//! Commit-clock opacity under Strict *and* Deferred clock modes.
//!
//! This is the scenario the `// sync:` comments on the SeqCst fence pair in
//! `stm_core::clock` appeal to. A writer transaction updates two words
//! together; a concurrent reader transaction reads both. Opacity (snapshot
//! consistency) demands the reader sees either *neither* or *both* updates —
//! never a torn pair — in every interleaving and for every stale value the
//! memory model lets a load return.
//!
//! The deferred clock mode is the interesting half: it publishes the commit
//! stamp *after* write-back, relying on the fence pair (and validation) to
//! keep half-written snapshots invisible. A weakening of those fences shows
//! up here as `rx != ry` with a replayable schedule.
//!
//! Run with: `RUSTFLAGS="--cfg stm_model" cargo test -p stm-model-tests`
#![cfg(stm_model)]

mod common;

use std::sync::Arc;

use rstm::RstmVariant;
use stm_core::prelude::*;

use common::{rstm, run_tx, swisstm, tiny_config, tinystm, tl2};

fn check_snapshot_consistency<A>(make: impl Fn() -> Arc<A> + Copy) -> stm_model::Report
where
    A: TmAlgorithm + 'static,
{
    stm_model::model(move || {
        let stm = make();
        let x = stm.heap().alloc_zeroed(1).unwrap();
        let y = stm.heap().alloc_zeroed(1).unwrap();

        let writer = {
            let stm = Arc::clone(&stm);
            stm_model::thread::spawn(move || {
                run_tx(stm, |tx| {
                    tx.write(x, 1)?;
                    tx.write(y, 1)
                });
            })
        };
        let reader = {
            let stm = Arc::clone(&stm);
            stm_model::thread::spawn(move || {
                // Read in the *reverse* of write-back order so a torn
                // snapshot (y written back, stamp not yet visible — or the
                // converse) is the easiest thing to observe if the clock
                // edges are wrong.
                let (ry, rx) = run_tx(stm, |tx| {
                    let ry = tx.read(y)?;
                    let rx = tx.read(x)?;
                    Ok((ry, rx))
                });
                assert_eq!(rx, ry, "torn snapshot: x={rx} y={ry}");
            })
        };
        writer.join();
        reader.join();
        assert_eq!(stm.heap().load(x), 1);
        assert_eq!(stm.heap().load(y), 1);
    })
}

fn strict() -> StmConfig {
    tiny_config().with_clock(ClockMode::Strict)
}

fn deferred() -> StmConfig {
    tiny_config().with_clock(ClockMode::Deferred)
}

#[test]
fn swisstm_strict_clock_is_opaque() {
    let r = check_snapshot_consistency(|| swisstm(strict()));
    println!("swisstm strict: {} executions", r.executions);
}

#[test]
fn swisstm_deferred_clock_is_opaque() {
    let r = check_snapshot_consistency(|| swisstm(deferred()));
    println!("swisstm deferred: {} executions", r.executions);
}

#[test]
fn tl2_strict_clock_is_opaque() {
    let r = check_snapshot_consistency(|| tl2(strict()));
    println!("tl2 strict: {} executions", r.executions);
}

#[test]
fn tl2_deferred_clock_is_opaque() {
    let r = check_snapshot_consistency(|| tl2(deferred()));
    println!("tl2 deferred: {} executions", r.executions);
}

#[test]
fn tinystm_strict_clock_is_opaque() {
    let r = check_snapshot_consistency(|| tinystm(strict()));
    println!("tinystm strict: {} executions", r.executions);
}

#[test]
fn tinystm_deferred_clock_is_opaque() {
    let r = check_snapshot_consistency(|| tinystm(deferred()));
    println!("tinystm deferred: {} executions", r.executions);
}

#[test]
fn rstm_strict_clock_is_opaque() {
    let r = check_snapshot_consistency(|| rstm(strict(), RstmVariant::eager_invisible()));
    println!("rstm strict: {} executions", r.executions);
}

#[test]
fn rstm_deferred_clock_is_opaque() {
    let r = check_snapshot_consistency(|| rstm(deferred(), RstmVariant::eager_invisible()));
    println!("rstm deferred: {} executions", r.executions);
}
