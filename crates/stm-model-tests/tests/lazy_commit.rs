//! The lazy-commit lock/validate/write-back window (TL2 and lazy RSTM).
//!
//! Lazy STMs buffer writes and only at commit time (1) acquire the locks,
//! (2) validate the read set, (3) write back, (4) publish new versions and
//! release. Between (1) and (4) the heap holds a half-committed state that
//! must be invisible to every rival: a reader that samples a lock-word
//! mid-window has to either wait it out, abort, or prove the word unchanged.
//!
//! The scenario puts one committing writer (two words, so the window has a
//! middle) against a rival that both *reads transactionally* (must see a
//! consistent pair) and then *increments* one of the words (its commit-time
//! validation must catch the writer's intervening commit). Exhausting every
//! interleaving of the window against the rival is exactly what stress runs
//! cannot guarantee.
//!
//! Run with: `RUSTFLAGS="--cfg stm_model" cargo test -p stm-model-tests`
#![cfg(stm_model)]

mod common;

use std::sync::Arc;

use rstm::RstmVariant;
use stm_core::prelude::*;

use common::{rstm, run_tx, tiny_config, tl2};

/// Writer commits `x = y = 1` lazily; rival reads the pair (consistency
/// through the write-back window) then increments `x` (write-write conflict
/// against the window). Final state must reflect both commits.
fn check_lazy_commit_window<A>(make: impl Fn() -> Arc<A> + Copy) -> stm_model::Report
where
    A: TmAlgorithm + 'static,
{
    stm_model::model(move || {
        let stm = make();
        let x = stm.heap().alloc_zeroed(1).unwrap();
        let y = stm.heap().alloc_zeroed(1).unwrap();

        let writer = {
            let stm = Arc::clone(&stm);
            stm_model::thread::spawn(move || {
                run_tx(stm, |tx| {
                    tx.write(x, 1)?;
                    tx.write(y, 1)
                });
            })
        };
        let rival = {
            let stm = Arc::clone(&stm);
            stm_model::thread::spawn(move || {
                let (rx, ry) = run_tx(Arc::clone(&stm), |tx| {
                    let rx = tx.read(x)?;
                    let ry = tx.read(y)?;
                    Ok((rx, ry))
                });
                assert_eq!(rx, ry, "read through the write-back window: x={rx} y={ry}");
                run_tx(stm, |tx| {
                    let v = tx.read(x)?;
                    tx.write(x, v + 10)
                });
                rx
            })
        };
        writer.join();
        let rx = rival.join();
        // Serializability: the writer's blind `x = 1` may land before or
        // after the increment, so `x` ends at 11 (increment last) or 1
        // (writer last, increment saw the initial 0). A lost update or a
        // write-back leak produces anything else. And once the rival has
        // *seen* the writer's commit, the increment must build on it.
        let fx = stm.heap().load(x);
        assert!(fx == 11 || fx == 1, "impossible final x={fx}");
        if rx == 1 {
            assert_eq!(fx, 11, "increment lost after observing the writer's commit");
        }
        assert_eq!(stm.heap().load(y), 1);
    })
}

#[test]
fn tl2_commit_window_is_invisible() {
    let r = check_lazy_commit_window(|| tl2(tiny_config()));
    println!("tl2 lazy-commit: {} executions", r.executions);
}

#[test]
fn rstm_lazy_invisible_commit_window_is_invisible() {
    let r = check_lazy_commit_window(|| rstm(tiny_config(), RstmVariant::lazy_invisible()));
    println!(
        "rstm lazy/invisible lazy-commit: {} executions",
        r.executions
    );
}

#[test]
fn rstm_lazy_visible_commit_window_is_invisible() {
    let r = check_lazy_commit_window(|| rstm(tiny_config(), RstmVariant::lazy_visible()));
    println!("rstm lazy/visible lazy-commit: {} executions", r.executions);
}
