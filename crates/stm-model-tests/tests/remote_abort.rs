//! The split-`TxShared` remote-abort handshake, model-checked at the
//! `stm-core` level.
//!
//! PR 6 split `TxShared` into a remotely written signal line and an
//! owner-written state line. The correctness story has two halves, checked
//! exhaustively here:
//!
//! 1. **Delivered-once.** Two racing requesters calling
//!    [`TxShared::request_abort`] must agree on who delivered: the AcqRel
//!    swap makes exactly one of them see the clear→set transition, so
//!    inflicted-abort telemetry never double-counts.
//! 2. **The message-passing edge.** A victim that observes
//!    `abort_requested() == true` (Acquire) must also observe everything the
//!    requester published *before* the request (Release side of the swap) —
//!    here, the requester's own `Active` status, which is what a CM inspects
//!    to decide whom it lost to.
//!
//! Run with: `RUSTFLAGS="--cfg stm_model" cargo test -p stm-model-tests`
#![cfg(stm_model)]

use std::sync::Arc;

use stm_core::clock::TxStatus;
use stm_core::{ThreadRegistry, ThreadSlot};

#[test]
fn racing_abort_requests_deliver_exactly_once() {
    let report = stm_model::model(|| {
        let registry = Arc::new(ThreadRegistry::new());
        let victim = registry.register().unwrap();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let registry = Arc::clone(&registry);
                stm_model::thread::spawn(move || registry.shared(victim).request_abort())
            })
            .collect();
        let delivered: u32 = handles.into_iter().map(|h| h.join() as u32).sum();
        assert_eq!(
            delivered, 1,
            "remote abort delivered {delivered} times, not once"
        );
        assert!(registry.shared(victim).abort_requested());
    });
    println!("delivered-once: {} executions", report.executions);
}

#[test]
fn victim_observes_requester_state_through_the_abort_flag() {
    let report = stm_model::model(|| {
        let registry = Arc::new(ThreadRegistry::new());
        let victim = registry.register().unwrap();
        let requester = registry.register().unwrap();

        let req = {
            let registry = Arc::clone(&registry);
            stm_model::thread::spawn(move || {
                // Publish our own state first, then signal: the Release half
                // of request_abort's swap orders these for the victim.
                registry.shared(requester).set_status(TxStatus::Active);
                registry.shared(victim).request_abort();
            })
        };
        let vic = {
            let registry = Arc::clone(&registry);
            stm_model::thread::spawn(move || {
                while !registry.shared(victim).abort_requested() {
                    stm_model::spin_loop();
                }
                // The flag is set, so the requester's earlier status store
                // is visible — a stale `Idle` here would mean the CM can
                // blame a transaction that (from its view) never started.
                assert_eq!(
                    registry.shared(requester).status(),
                    TxStatus::Active,
                    "abort flag arrived before the requester's state"
                );
                // A new attempt clears the flag; re-observing `true` after
                // this point would be a stale delivery.
                registry.shared(victim).clear_abort_request();
                assert!(!registry.shared(victim).abort_requested());
            })
        };
        req.join();
        vic.join();
    });
    println!("victim-observes: {} executions", report.executions);
}

#[test]
fn registry_slots_are_unique_under_concurrent_registration() {
    let report = stm_model::model(|| {
        let registry = Arc::new(ThreadRegistry::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let registry = Arc::clone(&registry);
                stm_model::thread::spawn(move || registry.register().unwrap())
            })
            .collect();
        let slots: Vec<ThreadSlot> = handles.into_iter().map(|h| h.join()).collect();
        assert_ne!(slots[0], slots[1], "two threads were handed the same slot");
    });
    println!("unique-slots: {} executions", report.executions);
}
