//! Thread-local runtime context linking OS threads to model threads.
//!
//! [`crate::model`] installs a context for the main model thread (tid 0);
//! [`crate::thread::spawn`] installs one in each child. The instrumented
//! atomics look the context up on every operation; using a model atomic
//! outside `model()` is a programming error and panics with a clear
//! message.

use std::cell::RefCell;
use std::sync::Arc;

use crate::exec::Execution;

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Installs `ctx` for the current OS thread, returning any previous one.
pub(crate) fn set(ctx: Option<Ctx>) -> Option<Ctx> {
    CTX.with(|slot| std::mem::replace(&mut *slot.borrow_mut(), ctx))
}

/// The current model context.
///
/// # Panics
///
/// Panics when called outside a `stm_model::model(..)` closure.
pub(crate) fn current() -> Ctx {
    CTX.with(|slot| {
        slot.borrow().clone().expect(
            "stm-model: instrumented atomic used outside stm_model::model(); \
             model-instrumented code (built with --cfg stm_model) only runs \
             inside a model() closure on threads spawned via stm_model::thread::spawn",
        )
    })
}

/// Like [`current`], but `None` outside a model run (for `Debug` impls).
pub(crate) fn try_current() -> Option<Ctx> {
    CTX.with(|slot| slot.borrow().clone())
}
