//! `stm-model` — an in-workspace, loom-style bounded model checker for the
//! STM crates' atomics.
//!
//! The container that grows this repo cannot fetch crates.io, so instead of
//! depending on [`loom`](https://crates.io/crates/loom) we vendor a small
//! stand-in (the same approach as the workspace's `criterion` crate). The
//! API is deliberately loom-shaped:
//!
//! ```
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//! use stm_model::atomic::AtomicU64;
//!
//! let report = stm_model::model(|| {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let t = {
//!         let flag = Arc::clone(&flag);
//!         stm_model::thread::spawn(move || flag.store(1, Ordering::Release))
//!     };
//!     let _ = flag.load(Ordering::Acquire);
//!     t.join();
//! });
//! assert!(report.executions > 1);
//! ```
//!
//! [`model`] runs the closure under every schedule (and every allowed
//! stale-read choice) up to the preemption bound, restarting it once per
//! interleaving. A panic in any interleaving — an `assert!` in the
//! scenario, or a deadlock/livelock detected by the scheduler — is
//! resurfaced from `model` after the offending execution is torn down.
//!
//! The production STM crates are wired to this checker through the
//! `stm_core::sync` shim: built with `RUSTFLAGS="--cfg stm_model"`, every
//! atomic in `stm-core`, `swisstm`, `tl2`, `tinystm`, and `rstm` becomes an
//! instrumented [`atomic`] type, and the scenarios in `stm-model-tests`
//! exhaustively check the headline invariants (deferred-clock opacity,
//! lost-update, lazy-commit write-back, remote-abort handshake). See the
//! memory-model notes in [`exec`] for what "exhaustively" means precisely.

mod clockvec;
mod exec;
mod rt;
mod trace;

pub mod atomic;
pub mod thread;

pub use clockvec::MAX_MODEL_THREADS;

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use exec::{AbortSentinel, Execution};
use rt::Ctx;
use trace::Trace;

/// Exploration statistics returned by a completed (bug-free) run.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of executions (interleaving × read-choice combinations)
    /// explored.
    pub executions: u64,
    /// Deepest branch-point count seen in a single execution.
    pub max_depth: usize,
}

/// Model-checking configuration.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Maximum number of *preemptions* per execution: schedule points where
    /// the running thread could continue but another is chosen instead
    /// (blocking switches are free). `None` removes the bound. Most
    /// concurrency bugs need very few preemptions (the CHESS observation),
    /// so a small bound keeps exhaustive exploration tractable.
    pub preemption_bound: Option<usize>,
    /// Abort an execution that exceeds this many schedule points — a
    /// backstop against unbounded retry loops in the code under test.
    pub max_steps: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            max_steps: 20_000,
        }
    }
}

impl Builder {
    /// Runs `f` under every schedule allowed by the configuration.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing execution (assertion
    /// failure in the scenario, deadlock, livelock, or step-budget
    /// exhaustion), after printing how many executions were explored before
    /// the failure.
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        let mut trace = Trace::default();
        let mut executions = 0u64;
        let mut max_depth = 0usize;
        loop {
            executions += 1;
            let exec = Arc::new(Execution::new(
                std::mem::take(&mut trace),
                self.preemption_bound,
                self.max_steps,
            ));
            let prev = rt::set(Some(Ctx {
                exec: Arc::clone(&exec),
                tid: 0,
            }));
            let outcome = panic::catch_unwind(AssertUnwindSafe(&f));
            match outcome {
                Ok(()) => exec.thread_finished(0),
                Err(payload) if payload.is::<AbortSentinel>() => exec.thread_finished(0),
                Err(payload) => exec.thread_panicked(0, payload),
            }
            let (finished_trace, payload, depth) = exec.finish();
            rt::set(prev);
            trace = finished_trace;
            max_depth = max_depth.max(depth);
            if let Some(payload) = payload {
                eprintln!(
                    "stm-model: failing execution found after {executions} execution(s) \
                     ({depth} branch points)"
                );
                panic::resume_unwind(payload);
            }
            if !trace.backtrack() {
                break;
            }
        }
        Report {
            executions,
            max_depth,
        }
    }
}

/// Runs `f` under the default [`Builder`] (preemption bound 2).
pub fn model<F: Fn()>(f: F) -> Report {
    Builder::default().check(f)
}

/// Instrumented spin-loop hint: parks the calling model thread until some
/// other thread performs a store, pruning re-runs of read-only spin
/// iterations that cannot observe anything new. Turns spin livelocks into
/// detected deadlocks instead of hangs.
pub fn spin_loop() {
    let ctx = rt::current();
    ctx.exec.op_spin(ctx.tid);
}

#[cfg(test)]
mod litmus {
    //! Litmus tests for the checker itself: seeded known-racy scenarios the
    //! explorer must catch, known-correct ones it must prove, and an
    //! interleaving-count regression so the preemption bound stays honest.

    use std::collections::HashSet;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex};

    use crate::atomic::{fence, AtomicU64};
    use crate::{model, thread, Builder};

    /// Runs `f` under the model expecting some execution to panic; returns
    /// the panic message.
    fn expect_bug<F: Fn()>(f: F) -> String {
        let result = panic::catch_unwind(AssertUnwindSafe(|| model(f)));
        match result {
            Ok(report) => panic!(
                "expected the explorer to find a bug, but {} execution(s) all passed",
                report.executions
            ),
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string()),
        }
    }

    /// Store buffering: T0 `x=1; r0=y`, T1 `y=1; r1=x`. Collects every
    /// `(r0, r1)` outcome the builder's exploration can produce.
    fn store_buffering_outcomes(builder: Builder, seq_cst_fence: bool) -> HashSet<(u64, u64)> {
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let sink = Arc::clone(&seen);
        builder.check(move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let t = {
                let (x, y) = (Arc::clone(&x), Arc::clone(&y));
                thread::spawn(move || {
                    y.store(1, Ordering::Relaxed);
                    if seq_cst_fence {
                        fence(Ordering::SeqCst);
                    }
                    x.load(Ordering::Relaxed)
                })
            };
            x.store(1, Ordering::Relaxed);
            if seq_cst_fence {
                fence(Ordering::SeqCst);
            }
            let r0 = y.load(Ordering::Relaxed);
            let r1 = t.join();
            sink.lock().unwrap().insert((r0, r1));
        });
        Arc::try_unwrap(seen).unwrap().into_inner().unwrap()
    }

    #[test]
    fn store_buffering_relaxed_exhibits_both_stale() {
        let outcomes = store_buffering_outcomes(Builder::default(), false);
        assert!(
            outcomes.contains(&(0, 0)),
            "relaxed store buffering must be able to read both stale values, saw {outcomes:?}"
        );
    }

    #[test]
    fn store_buffering_with_seqcst_fences_forbids_both_stale() {
        let outcomes = store_buffering_outcomes(Builder::default(), true);
        assert!(
            !outcomes.contains(&(0, 0)),
            "SeqCst fences must forbid the both-stale outcome, saw {outcomes:?}"
        );
        assert!(outcomes.len() >= 2, "exploration too shallow: {outcomes:?}");
    }

    /// Message passing with a data payload guarded by a flag.
    fn message_passing(store_order: Ordering, load_order: Ordering) {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let t = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, store_order);
            })
        };
        while flag.load(load_order) == 0 {
            crate::spin_loop();
        }
        assert_eq!(
            data.load(Ordering::Relaxed),
            42,
            "observed the flag but not the payload"
        );
        t.join();
    }

    #[test]
    fn message_passing_release_acquire_is_proved_safe() {
        let report = model(|| message_passing(Ordering::Release, Ordering::Acquire));
        assert!(report.executions > 1);
    }

    #[test]
    fn message_passing_relaxed_race_is_caught() {
        let message = expect_bug(|| message_passing(Ordering::Relaxed, Ordering::Relaxed));
        assert!(
            message.contains("observed the flag but not the payload"),
            "explorer surfaced the wrong failure: {message}"
        );
    }

    #[test]
    fn rmw_increments_never_lose_updates() {
        model(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let t = {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            };
            counter.fetch_add(1, Ordering::Relaxed);
            t.join();
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        });
    }

    #[test]
    fn spin_livelock_is_reported_as_deadlock() {
        let message = expect_bug(|| {
            let flag = Arc::new(AtomicU64::new(0));
            // Nobody ever sets the flag: the spin must be detected rather
            // than hang the test suite.
            while flag.load(Ordering::Acquire) == 0 {
                crate::spin_loop();
            }
        });
        assert!(
            message.contains("deadlock"),
            "expected a deadlock/livelock report, got: {message}"
        );
    }

    #[test]
    fn preemption_bound_stays_honest() {
        // The same scenario explored under increasing bounds must explore a
        // strictly growing set of interleavings, and the unbounded count
        // pins the branch structure: a scheduler or memory-model change
        // that silently shrinks (or explodes) the search shows up here.
        let count = |bound: Option<usize>| {
            let builder = Builder {
                preemption_bound: bound,
                ..Builder::default()
            };
            store_buffering_outcomes(builder, false);
            builder
                .check(|| {
                    let x = Arc::new(AtomicU64::new(0));
                    let y = Arc::new(AtomicU64::new(0));
                    let t = {
                        let (x, y) = (Arc::clone(&x), Arc::clone(&y));
                        thread::spawn(move || {
                            y.store(1, Ordering::Relaxed);
                            x.load(Ordering::Relaxed)
                        })
                    };
                    x.store(1, Ordering::Relaxed);
                    let _ = y.load(Ordering::Relaxed);
                    t.join();
                })
                .executions
        };
        let zero = count(Some(0));
        let two = count(Some(2));
        let unbounded = count(None);
        assert!(
            zero < two && two <= unbounded,
            "bounds not honored: {zero} (b=0) vs {two} (b=2) vs {unbounded} (unbounded)"
        );
    }
}
