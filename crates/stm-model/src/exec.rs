//! One bounded-model-checking execution: the cooperative scheduler and the
//! axiomatic-ish memory model.
//!
//! # Scheduling
//!
//! Model threads are real OS threads, but at most one is ever *runnable* in
//! the model: every instrumented operation (atomic access, fence, spin,
//! join) is a scheduling point where the running thread consults the
//! [`Trace`] to decide who performs the next operation. All other threads
//! block on a condvar until scheduled. Switching away from a thread that
//! could have continued counts against the configurable *preemption bound*
//! (the CHESS heuristic: most concurrency bugs need very few preemptions),
//! which keeps the DFS tractable on realistic code.
//!
//! # Memory model
//!
//! A conservative approximation of the C11 model, close to what `loom`
//! implements:
//!
//! * per-location *modification order* = the order stores execute in,
//! * per-thread vector clocks for happens-before,
//! * a load may read any store in modification order that is not already
//!   superseded for the reader (coherence + happens-before); the choice is
//!   a branch point, which is what makes stale reads explorable,
//! * `Release` stores carry the writer's clock; `Acquire` loads join it;
//!   RMWs continue release sequences; `Release`/`Acquire` fences work on
//!   the accumulated pending clocks,
//! * `SeqCst` operations and fences additionally join through a global SC
//!   clock, which totally orders them in execution order.
//!
//! Known (documented) strengthenings versus C11: modification order never
//! contradicts execution order, a failed `compare_exchange` reads the
//! newest store, `compare_exchange_weak` never fails spuriously, and
//! `SeqCst` *operations* are ordered slightly more strongly than the
//! standard requires. A bug found here is a real bug; absence of bugs is a
//! proof only up to these strengthenings and the preemption bound.
//!
//! # Spin loops
//!
//! [`Execution::op_spin`] (reached through `stm_core::sync::spin_loop`)
//! parks the calling thread until some other thread performs a store or
//! RMW, and ratchets the spinner's coherence floor for the locations its
//! spin predicate reads (a liveness assumption: unbounded waiting
//! eventually observes the newest value). Re-running a read-only spin
//! iteration that can only re-observe the same values cannot reach a new
//! state, so this prunes the otherwise-infinite schedule tree; it also
//! gives livelock detection for free (all threads parked with no writer
//! left = bug).

use std::any::Any;
use std::collections::HashMap;
use std::panic;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::clockvec::{VClock, MAX_MODEL_THREADS};
use crate::trace::Trace;

/// Marker panic used to unwind model threads when the execution aborts
/// (another thread panicked, or the explorer found a deadlock).
pub(crate) struct AbortSentinel;

/// Writer id of the location's initial value (visible to every thread).
const INIT_WRITER: usize = usize::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Parked in a spin loop; runnable again once `store_epoch` advances
    /// past `epoch`.
    Spinning {
        epoch: u64,
    },
    /// Blocked joining `target`; runnable once it finishes.
    Joining {
        target: usize,
    },
    Finished,
}

/// One store event in a location's modification order.
#[derive(Clone, Copy, Debug)]
struct StoreEvent {
    value: u64,
    writer: usize,
    /// The writer's own clock component at the store, used for
    /// happens-before tests against reader clocks.
    writer_seq: u32,
    /// Clock released by this store: `Some` for `Release`-or-stronger
    /// stores, for relaxed stores issued after a `Release` fence (the fence
    /// clock), and for RMWs continuing a release sequence.
    release: Option<VClock>,
}

#[derive(Debug)]
struct Location {
    stores: Vec<StoreEvent>,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    clock: VClock,
    /// Release clocks picked up by relaxed loads, applied by a later
    /// `Acquire` fence.
    pending_acquire: VClock,
    /// Clock at the last `Release` fence, attached to subsequent relaxed
    /// stores.
    release_fence: Option<VClock>,
    /// Per-location coherence floor: the index in modification order below
    /// which this thread may no longer read.
    floors: HashMap<usize, usize>,
    /// Locations read since the last `spin_loop`, i.e. the current spin
    /// predicate's footprint (see [`Execution::op_spin`]).
    reads_since_spin: Vec<usize>,
    /// Set when another thread scheduled this one (handoff, block, finish):
    /// its next scheduling point executes without making a decision, because
    /// the scheduler's pick *was* the decision for that step. Keeping this
    /// in model state (rather than inferring it from where the thread
    /// happens to be parked) is what makes the decision sequence independent
    /// of OS timing: a handoff target that has not yet reached its first
    /// operation must behave exactly like one already waiting on the condvar.
    handed_off: bool,
    /// Clock at termination (for the join edge).
    final_clock: VClock,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        ThreadState {
            status: Status::Runnable,
            clock,
            pending_acquire: VClock::zero(),
            release_fence: None,
            floors: HashMap::new(),
            reads_since_spin: Vec::new(),
            handed_off: false,
            final_clock: VClock::zero(),
        }
    }
}

pub(crate) struct ExecState {
    trace: Trace,
    threads: Vec<ThreadState>,
    current: usize,
    preemptions: usize,
    preemption_bound: Option<usize>,
    locations: Vec<Location>,
    sc_clock: VClock,
    store_epoch: u64,
    steps: u64,
    max_steps: u64,
    aborting: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    finished: usize,
    done: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Per-operation stderr log, enabled by `STM_MODEL_LOG_OPS=1`
    /// (diagnosing nondeterministic-replay reports).
    log_ops: bool,
}

impl ExecState {
    /// Threads eligible to run the next operation.
    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| match t.status {
                Status::Runnable => Some(tid),
                Status::Spinning { epoch } if self.store_epoch > epoch => Some(tid),
                Status::Joining { target }
                    if matches!(self.threads[target].status, Status::Finished) =>
                {
                    Some(tid)
                }
                _ => None,
            })
            .collect()
    }

    /// Picks one of `choices` through the trace. Single-choice points are
    /// recorded too: they cannot fork the DFS, but replaying them pins the
    /// full decision sequence, so any nondeterminism in the code under test
    /// is caught at the first divergent operation instead of surfacing as a
    /// misaligned branch much later.
    fn pick(&mut self, choices: &[usize]) -> usize {
        choices[self.trace.choose(choices.len())]
    }

    /// Candidate store indices a load by `tid` may read, newest first.
    fn readable(&self, tid: usize, loc: usize) -> Vec<usize> {
        let thread = &self.threads[tid];
        let stores = &self.locations[loc].stores;
        let mut floor = thread.floors.get(&loc).copied().unwrap_or(0);
        // A store that happens-before the reader supersedes everything
        // older: raise the floor to the newest such store.
        for idx in ((floor + 1)..stores.len()).rev() {
            let store = &stores[idx];
            if store.writer == INIT_WRITER || thread.clock.covers(store.writer, store.writer_seq) {
                floor = idx;
                break;
            }
        }
        (floor..stores.len()).rev().collect()
    }

    /// Applies the effects of `tid` reading store `idx` of `loc`.
    fn apply_read(&mut self, tid: usize, loc: usize, idx: usize, acquire: bool) {
        let release = self.locations[loc].stores[idx].release;
        let thread = &mut self.threads[tid];
        let floor = thread.floors.entry(loc).or_insert(0);
        *floor = (*floor).max(idx);
        thread.reads_since_spin.push(loc);
        if let Some(release_clock) = release {
            if acquire {
                thread.clock.join(&release_clock);
            } else {
                thread.pending_acquire.join(&release_clock);
            }
        }
    }

    /// Appends a store by `tid` to `loc`'s modification order.
    fn append_store(&mut self, tid: usize, loc: usize, value: u64, release: Option<VClock>) {
        let writer_seq = self.threads[tid].clock.get(tid);
        self.locations[loc].stores.push(StoreEvent {
            value,
            writer: tid,
            writer_seq,
            release,
        });
        let new_idx = self.locations[loc].stores.len() - 1;
        self.threads[tid].floors.insert(loc, new_idx);
        self.store_epoch += 1;
    }

    fn sc_pre(&mut self, tid: usize) {
        let sc = self.sc_clock;
        self.threads[tid].clock.join(&sc);
    }

    fn sc_post(&mut self, tid: usize) {
        let clock = self.threads[tid].clock;
        self.sc_clock.join(&clock);
    }
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl Execution {
    pub(crate) fn new(trace: Trace, preemption_bound: Option<usize>, max_steps: u64) -> Self {
        let mut trace = trace;
        trace.start_execution();
        Execution {
            state: Mutex::new(ExecState {
                trace,
                threads: vec![ThreadState::new(VClock::zero())],
                current: 0,
                preemptions: 0,
                preemption_bound,
                locations: Vec::new(),
                sc_clock: VClock::zero(),
                store_epoch: 0,
                steps: 0,
                max_steps,
                aborting: false,
                panic_payload: None,
                finished: 0,
                done: false,
                os_handles: Vec::new(),
                log_ops: std::env::var_os("STM_MODEL_LOG_OPS").is_some(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn abort_check(state: &ExecState) {
        if state.aborting {
            panic::panic_any(AbortSentinel);
        }
    }

    /// Marks the execution aborted with `message` and unwinds the caller.
    fn abort(&self, mut state: MutexGuard<'_, ExecState>, message: String) -> ! {
        state.aborting = true;
        if state.panic_payload.is_none() {
            state.panic_payload = Some(Box::new(message));
        }
        self.cv.notify_all();
        drop(state);
        panic::panic_any(AbortSentinel);
    }

    fn wait_for_turn<'a>(
        &'a self,
        mut state: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        while state.current != tid && !state.aborting {
            state = self
                .cv
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        Self::abort_check(&state);
        state
    }

    /// Common prologue of every instrumented operation: get scheduled, make
    /// the scheduling decision for this step, account the step.
    ///
    /// The running thread at a fresh step decides (within the preemption
    /// budget) who runs this step, possibly handing off and waiting. A
    /// thread that was *scheduled by someone else's decision* — a handoff, a
    /// blocking switch, a finishing thread's successor pick — executes
    /// without a second decision (its `handed_off` flag is set), so every
    /// executed step corresponds to exactly one scheduling decision. The
    /// flag, not the thread's parked-ness, carries that fact: whether the
    /// target had already reached a wait or was still running toward its
    /// next operation is an OS race the decision sequence must not see.
    fn enter_step<'a>(&'a self, tid: usize) -> MutexGuard<'a, ExecState> {
        let mut state = self.lock();
        Self::abort_check(&state);
        if state.current == tid && !state.threads[tid].handed_off {
            let runnable = state.runnable();
            let exhausted = state
                .preemption_bound
                .is_some_and(|bound| state.preemptions >= bound);
            let pick = if exhausted {
                tid
            } else {
                let mut choices = Vec::with_capacity(runnable.len());
                choices.push(tid);
                choices.extend(runnable.iter().copied().filter(|&t| t != tid));
                state.pick(&choices)
            };
            if pick != tid {
                state.preemptions += 1;
                state.current = pick;
                state.threads[pick].handed_off = true;
                self.cv.notify_all();
                state = self.wait_for_turn(state, tid);
            }
        } else {
            state = self.wait_for_turn(state, tid);
        }
        state.threads[tid].handed_off = false;
        state.steps += 1;
        if state.steps > state.max_steps {
            let steps = state.steps;
            self.abort(
                state,
                format!(
                    "stm-model: execution exceeded {steps} steps; \
                     likely a livelock or an unbounded retry loop"
                ),
            );
        }
        state.threads[tid].clock.bump(tid);
        state
    }

    /// Prologue for blocking operations (spin, join): get scheduled, but do
    /// not make a step decision — the block itself will choose among the
    /// *other* runnable threads. A pending handoff is consumed here too: the
    /// scheduler's pick covered this (blocking) operation.
    fn enter_blocking<'a>(&'a self, tid: usize) -> MutexGuard<'a, ExecState> {
        let mut state = self.lock();
        Self::abort_check(&state);
        state = self.wait_for_turn(state, tid);
        state.threads[tid].handed_off = false;
        state
    }

    /// Parks `tid` with `status` and schedules another thread; returns once
    /// `tid` is scheduled again.
    fn block_on<'a>(
        &'a self,
        mut state: MutexGuard<'a, ExecState>,
        tid: usize,
        status: Status,
    ) -> MutexGuard<'a, ExecState> {
        state.threads[tid].status = status;
        let runnable = state.runnable();
        if runnable.is_empty() {
            let detail = state
                .threads
                .iter()
                .enumerate()
                .map(|(t, ts)| format!("T{t}:{:?}", ts.status))
                .collect::<Vec<_>>()
                .join(" ");
            self.abort(
                state,
                format!(
                    "stm-model: deadlock/livelock — no runnable thread left ({detail}); \
                     every live thread is spinning with no writer or waiting on a join"
                ),
            );
        }
        let pick = state.pick(&runnable);
        state.current = pick;
        state.threads[pick].handed_off = true;
        self.cv.notify_all();
        state = self.wait_for_turn(state, tid);
        state.threads[tid].status = Status::Runnable;
        state
    }

    // ---- instrumented operations ------------------------------------

    /// Registers a fresh atomic location holding `init`. Not a scheduling
    /// point: creating an atomic is not a memory-model event.
    pub(crate) fn alloc_location(&self, init: u64) -> usize {
        let mut state = self.lock();
        state.locations.push(Location {
            stores: vec![StoreEvent {
                value: init,
                writer: INIT_WRITER,
                writer_seq: 0,
                release: None,
            }],
        });
        state.locations.len() - 1
    }

    /// Reads the newest value of `loc` without a scheduling point or clock
    /// effects (for `Debug`/`into_inner`).
    pub(crate) fn peek(&self, loc: usize) -> u64 {
        let state = self.lock();
        state.locations[loc]
            .stores
            .last()
            .expect("location has an initial store")
            .value
    }

    pub(crate) fn op_load(&self, tid: usize, loc: usize, order: Ordering) -> u64 {
        let mut state = self.enter_step(tid);
        if order == Ordering::SeqCst {
            state.sc_pre(tid);
        }
        let candidates = state.readable(tid, loc);
        let chosen = state.pick(&candidates);
        state.apply_read(tid, loc, chosen, is_acquire(order));
        let value = state.locations[loc].stores[chosen].value;
        if state.log_ops {
            eprintln!(
                "@{} t{tid} load loc={loc} cand={} -> {value}",
                state.trace.cursor(),
                candidates.len()
            );
        }
        if order == Ordering::SeqCst {
            state.sc_post(tid);
        }
        value
    }

    pub(crate) fn op_store(&self, tid: usize, loc: usize, value: u64, order: Ordering) {
        let mut state = self.enter_step(tid);
        if order == Ordering::SeqCst {
            state.sc_pre(tid);
        }
        let release = if is_release(order) {
            Some(state.threads[tid].clock)
        } else {
            state.threads[tid].release_fence
        };
        state.append_store(tid, loc, value, release);
        if state.log_ops {
            eprintln!(
                "@{} t{tid} store loc={loc} <- {value}",
                state.trace.cursor()
            );
        }
        if order == Ordering::SeqCst {
            state.sc_post(tid);
        }
    }

    /// Atomic read-modify-write. Per C11 atomicity the read part observes
    /// the newest store in modification order (no branch).
    pub(crate) fn op_rmw(
        &self,
        tid: usize,
        loc: usize,
        order: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut state = self.enter_step(tid);
        if order == Ordering::SeqCst {
            state.sc_pre(tid);
        }
        let last = state.locations[loc].stores.len() - 1;
        state.apply_read(tid, loc, last, is_acquire(order));
        let old = state.locations[loc].stores[last].value;
        let prev_release = state.locations[loc].stores[last].release;
        let release = Self::rmw_release(&state, tid, order, prev_release);
        state.append_store(tid, loc, f(old), release);
        if state.log_ops {
            eprintln!("@{} t{tid} rmw loc={loc} old={old}", state.trace.cursor());
        }
        if order == Ordering::SeqCst {
            state.sc_post(tid);
        }
        old
    }

    /// Release clock carried by an RMW's store part: a release RMW releases
    /// its own clock, and any RMW continues the release sequence of the
    /// store it read from (C11 release-sequence rule).
    fn rmw_release(
        state: &ExecState,
        tid: usize,
        order: Ordering,
        prev_release: Option<VClock>,
    ) -> Option<VClock> {
        if is_release(order) {
            let mut clock = state.threads[tid].clock;
            if let Some(prev) = prev_release {
                clock.join(&prev);
            }
            Some(clock)
        } else {
            match (prev_release, state.threads[tid].release_fence) {
                (Some(mut a), Some(b)) => {
                    a.join(&b);
                    Some(a)
                }
                (Some(a), None) => Some(a),
                (None, fence) => fence,
            }
        }
    }

    /// Compare-exchange. A successful exchange is an RMW; a failed one is a
    /// load that (conservatively) observes the newest store. Spurious
    /// `compare_exchange_weak` failures are not modelled.
    pub(crate) fn op_cas(
        &self,
        tid: usize,
        loc: usize,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let mut state = self.enter_step(tid);
        if success == Ordering::SeqCst || failure == Ordering::SeqCst {
            state.sc_pre(tid);
        }
        let last = state.locations[loc].stores.len() - 1;
        let old = state.locations[loc].stores[last].value;
        if old == expected {
            state.apply_read(tid, loc, last, is_acquire(success));
            let prev_release = state.locations[loc].stores[last].release;
            let release = Self::rmw_release(&state, tid, success, prev_release);
            state.append_store(tid, loc, new, release);
            if state.log_ops {
                eprintln!(
                    "@{} t{tid} cas-ok loc={loc} {old}->{new}",
                    state.trace.cursor()
                );
            }
            if success == Ordering::SeqCst {
                state.sc_post(tid);
            }
            Ok(old)
        } else {
            state.apply_read(tid, loc, last, is_acquire(failure));
            if state.log_ops {
                eprintln!(
                    "@{} t{tid} cas-fail loc={loc} old={old}",
                    state.trace.cursor()
                );
            }
            if failure == Ordering::SeqCst {
                state.sc_post(tid);
            }
            Err(old)
        }
    }

    pub(crate) fn op_fence(&self, tid: usize, order: Ordering) {
        let mut state = self.enter_step(tid);
        match order {
            Ordering::Acquire => {
                let pending = state.threads[tid].pending_acquire;
                state.threads[tid].clock.join(&pending);
            }
            Ordering::Release => {
                state.threads[tid].release_fence = Some(state.threads[tid].clock);
            }
            Ordering::AcqRel => {
                let pending = state.threads[tid].pending_acquire;
                state.threads[tid].clock.join(&pending);
                state.threads[tid].release_fence = Some(state.threads[tid].clock);
            }
            Ordering::SeqCst => {
                let pending = state.threads[tid].pending_acquire;
                state.threads[tid].clock.join(&pending);
                state.sc_pre(tid);
                state.threads[tid].release_fence = Some(state.threads[tid].clock);
                state.sc_post(tid);
            }
            _ => {
                self.abort(
                    state,
                    format!("stm-model: unsupported fence ordering {order:?}"),
                );
            }
        }
    }

    /// A spin-loop hint: parks the thread until another thread stores.
    ///
    /// A spin represents unbounded waiting, so the caller's coherence floor
    /// for every location its spin predicate just read ratchets to the
    /// newest store: on real hardware a thread that waits long enough
    /// eventually observes the latest value, and without this liveness
    /// assumption a woken spinner could re-read the same stale store
    /// forever, which the scheduler would misreport as livelock. Locations
    /// *not* read by the spin predicate keep their full stale-read choice
    /// set, so races guarded by the spun-upon flag are still found.
    pub(crate) fn op_spin(&self, tid: usize) {
        let mut state = self.enter_blocking(tid);
        let predicate_locs = std::mem::take(&mut state.threads[tid].reads_since_spin);
        let mut newer_available = false;
        for loc in predicate_locs {
            let newest = state.locations[loc].stores.len() - 1;
            let floor = state.threads[tid].floors.entry(loc).or_insert(0);
            if newest > *floor {
                // The predicate read a stale store whose successor already
                // exists: re-running the loop can observe it now, so the
                // thread must not park (no future store may ever come).
                newer_available = true;
                *floor = newest;
            }
        }
        if state.log_ops {
            eprintln!(
                "@{} t{tid} spin newer={newer_available}",
                state.trace.cursor()
            );
        }
        if newer_available {
            return;
        }
        let epoch = state.store_epoch;
        let state = self.block_on(state, tid, Status::Spinning { epoch });
        drop(state);
    }

    /// Joins model thread `target`, establishing the join happens-before
    /// edge.
    pub(crate) fn op_join(&self, tid: usize, target: usize) {
        let mut state = self.enter_blocking(tid);
        if !matches!(state.threads[target].status, Status::Finished) {
            state = self.block_on(state, tid, Status::Joining { target });
        }
        let target_clock = state.threads[target].final_clock;
        state.threads[tid].clock.join(&target_clock);
    }

    // ---- thread lifecycle --------------------------------------------

    /// Registers a new model thread spawned by `parent`; the spawn edge
    /// seeds the child's clock.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut state = self.lock();
        Self::abort_check(&state);
        if state.threads.len() >= MAX_MODEL_THREADS {
            self.abort(
                state,
                format!("stm-model: scenario spawned more than {MAX_MODEL_THREADS} threads"),
            );
        }
        let clock = state.threads[parent].clock;
        state.threads.push(ThreadState::new(clock));
        state.threads.len() - 1
    }

    pub(crate) fn track_os_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock().os_handles.push(handle);
    }

    /// Records that model thread `tid` ran to completion (or unwound on
    /// abort) and schedules a successor if it was the running thread.
    pub(crate) fn thread_finished(&self, tid: usize) {
        let mut state = self.lock();
        state.threads[tid].status = Status::Finished;
        state.threads[tid].final_clock = state.threads[tid].clock;
        state.finished += 1;
        if state.finished == state.threads.len() {
            state.done = true;
        } else if state.current == tid && !state.aborting {
            let runnable = state.runnable();
            if runnable.is_empty() {
                state.aborting = true;
                if state.panic_payload.is_none() {
                    state.panic_payload = Some(Box::new(
                        "stm-model: deadlock — remaining threads are all blocked".to_string(),
                    ));
                }
            } else {
                let pick = state.pick(&runnable);
                state.current = pick;
                state.threads[pick].handed_off = true;
            }
        }
        self.cv.notify_all();
    }

    /// Records a real (non-sentinel) panic from model thread `tid` and
    /// aborts the execution.
    pub(crate) fn thread_panicked(&self, tid: usize, payload: Box<dyn Any + Send>) {
        {
            let mut state = self.lock();
            state.aborting = true;
            if state.panic_payload.is_none() {
                state.panic_payload = Some(payload);
            }
            self.cv.notify_all();
        }
        self.thread_finished(tid);
    }

    /// Blocks the explorer until every model thread has finished, then
    /// returns `(trace, panic_payload, branch_depth)` and joins the OS
    /// threads.
    pub(crate) fn finish(&self) -> (Trace, Option<Box<dyn Any + Send>>, usize) {
        let mut state = self.lock();
        while !state.done {
            state = self
                .cv
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        let handles = std::mem::take(&mut state.os_handles);
        let payload = state.panic_payload.take();
        let trace = std::mem::take(&mut state.trace);
        let depth = trace.depth();
        drop(state);
        for handle in handles {
            let _ = handle.join();
        }
        (trace, payload, depth)
    }
}
