//! Model-aware thread spawn/join.
//!
//! Scenario code uses `stm_model::thread::spawn` instead of
//! `std::thread::spawn`: the children are real OS threads, but the model
//! registers them (spawn happens-before edge), schedules them cooperatively,
//! and `join` both blocks through the scheduler and establishes the join
//! happens-before edge.

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;

use crate::exec::AbortSentinel;
use crate::rt::{self, Ctx};

/// Handle to a model thread, returned by [`spawn`].
pub struct JoinHandle<T> {
    tid: usize,
    result: mpsc::Receiver<T>,
}

impl<T> JoinHandle<T> {
    /// Joins the model thread (a blocking schedule point plus a
    /// happens-before edge from the child's last operation).
    ///
    /// # Panics
    ///
    /// Panics if the child panicked; the explorer surfaces the child's
    /// original panic once the execution unwinds.
    pub fn join(self) -> T {
        let ctx = rt::current();
        ctx.exec.op_join(ctx.tid, self.tid);
        self.result
            .try_recv()
            .expect("stm-model: joined thread panicked")
    }
}

/// Spawns a model thread running `f`.
///
/// # Panics
///
/// Panics when called outside a `model()` closure or when the scenario
/// exceeds [`crate::MAX_MODEL_THREADS`] threads.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let parent = rt::current();
    let tid = parent.exec.register_thread(parent.tid);
    let exec = parent.exec.clone();
    let (result_tx, result_rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        rt::set(Some(Ctx {
            exec: exec.clone(),
            tid,
        }));
        let outcome = panic::catch_unwind(AssertUnwindSafe(f));
        rt::set(None);
        match outcome {
            Ok(value) => {
                let _ = result_tx.send(value);
                exec.thread_finished(tid);
            }
            Err(payload) if payload.is::<AbortSentinel>() => {
                // Unwound by the scheduler because the execution aborted;
                // the original cause is already recorded.
                exec.thread_finished(tid);
            }
            Err(payload) => exec.thread_panicked(tid, payload),
        }
    });
    parent.exec.track_os_handle(handle);
    JoinHandle {
        tid,
        result: result_rx,
    }
}
