//! The DFS branch trace.
//!
//! Every nondeterministic decision in an execution — which thread runs the
//! next step, which store a load reads — is a *branch point*. The explorer
//! records the decision sequence of the current execution; to move to the
//! next execution it backtracks to the deepest branch with an untried
//! choice, increments it, and replays the (now shorter) prefix. When no
//! branch has an untried choice left, the bounded state space is exhausted.

/// One recorded decision.
#[derive(Clone, Copy, Debug)]
struct Branch {
    /// Index of the choice taken in this execution.
    taken: usize,
    /// Total number of choices that were available.
    total: usize,
}

/// The decision sequence of the execution currently being explored.
#[derive(Debug, Default)]
pub struct Trace {
    branches: Vec<Branch>,
    cursor: usize,
}

impl Trace {
    /// Resets the replay cursor for a fresh execution.
    pub fn start_execution(&mut self) {
        self.cursor = 0;
    }

    /// Makes (or replays) a decision among `total` choices and returns the
    /// index taken. While the cursor is inside the recorded prefix the
    /// previous decision is replayed; past it, choice `0` is taken and
    /// recorded.
    ///
    /// # Panics
    ///
    /// Panics if a replayed branch point offers a different number of
    /// choices than it did last execution: that means the program under test
    /// is nondeterministic beyond the model's control (e.g. control flow
    /// depending on wall-clock time), which would make exploration unsound.
    pub fn choose(&mut self, total: usize) -> usize {
        debug_assert!(total > 0, "branch point with no choices");
        if self.cursor < self.branches.len() {
            let branch = self.branches[self.cursor];
            assert_eq!(
                branch.total, total,
                "stm-model: nondeterministic replay at branch {} (had {} choices, now {}); \
                 the closure under test must be deterministic given the schedule",
                self.cursor, branch.total, total
            );
            self.cursor += 1;
            branch.taken
        } else {
            self.branches.push(Branch { taken: 0, total });
            self.cursor += 1;
            0
        }
    }

    /// Advances to the next unexplored execution. Returns `false` when the
    /// search space is exhausted.
    pub fn backtrack(&mut self) -> bool {
        while let Some(branch) = self.branches.pop() {
            if branch.taken + 1 < branch.total {
                self.branches.push(Branch {
                    taken: branch.taken + 1,
                    total: branch.total,
                });
                return true;
            }
        }
        false
    }

    /// Number of recorded branch points in the current execution.
    pub fn depth(&self) -> usize {
        self.branches.len()
    }

    /// Current replay/record position (diagnostics).
    pub fn cursor(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_the_full_product() {
        // Two branch points with 2 and 3 choices: 6 executions.
        let mut trace = Trace::default();
        let mut seen = Vec::new();
        loop {
            trace.start_execution();
            let a = trace.choose(2);
            let b = trace.choose(3);
            seen.push((a, b));
            if !trace.backtrack() {
                break;
            }
        }
        assert_eq!(seen.len(), 6);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn backtracking_handles_varying_depth() {
        // The second branch only exists when the first choice is 0.
        let mut trace = Trace::default();
        let mut executions = 0;
        loop {
            trace.start_execution();
            if trace.choose(2) == 0 {
                trace.choose(2);
            }
            executions += 1;
            if !trace.backtrack() {
                break;
            }
        }
        assert_eq!(executions, 3);
    }
}
