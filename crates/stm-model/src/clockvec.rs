//! Fixed-size vector clocks.
//!
//! The model checker tracks happens-before with one vector clock per model
//! thread. Clocks are small fixed arrays ([`MAX_MODEL_THREADS`] entries) so
//! they are `Copy` and can be snapshotted into every store event without
//! allocation.

/// Maximum number of model threads in one execution.
///
/// Model scenarios are 2–4 thread micro-schedules by design: the DFS over
/// interleavings is exponential in thread count, so the bound is a feature,
/// not a limitation. It also keeps [`VClock`] a `Copy` array.
pub const MAX_MODEL_THREADS: usize = 4;

/// A vector clock over the model threads of one execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VClock([u32; MAX_MODEL_THREADS]);

impl VClock {
    /// The all-zero clock.
    pub const fn zero() -> Self {
        VClock([0; MAX_MODEL_THREADS])
    }

    /// Component for thread `tid`.
    #[inline]
    pub fn get(&self, tid: usize) -> u32 {
        self.0[tid]
    }

    /// Increments the component for thread `tid`.
    #[inline]
    pub fn bump(&mut self, tid: usize) {
        self.0[tid] += 1;
    }

    /// Pointwise maximum with `other`.
    #[inline]
    pub fn join(&mut self, other: &VClock) {
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether this clock has seen at least operation `seq` of thread `tid`
    /// (i.e. that operation happens-before the clock's owner).
    #[inline]
    pub fn covers(&self, tid: usize, seq: u32) -> bool {
        self.0[tid] >= seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::zero();
        a.bump(0);
        a.bump(0);
        let mut b = VClock::zero();
        b.bump(1);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
        assert!(a.covers(0, 2));
        assert!(!a.covers(0, 3));
    }
}
