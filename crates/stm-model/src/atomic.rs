//! Instrumented drop-in replacements for `std::sync::atomic` types.
//!
//! Each atomic lazily registers a model *location* with the current
//! [`Execution`](crate::exec::Execution) on first use, then routes every
//! access through the scheduler so it becomes a schedule point and a
//! memory-model event. `Ordering` is the real `std::sync::atomic::Ordering`
//! — instrumented code uses the exact orderings production code uses.
//!
//! Model atomics must be created *inside* the `model()` closure (each
//! execution needs fresh locations); a `const fn new` is still provided so
//! the types are signature-compatible with std.

use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use crate::rt;

/// Instrumented [`std::sync::atomic::AtomicU64`].
pub struct AtomicU64 {
    loc: OnceLock<usize>,
    init: u64,
}

impl AtomicU64 {
    pub const fn new(value: u64) -> Self {
        AtomicU64 {
            loc: OnceLock::new(),
            init: value,
        }
    }

    fn loc(&self) -> usize {
        *self
            .loc
            .get_or_init(|| rt::current().exec.alloc_location(self.init))
    }

    pub fn load(&self, order: Ordering) -> u64 {
        let ctx = rt::current();
        ctx.exec.op_load(ctx.tid, self.loc(), order)
    }

    pub fn store(&self, value: u64, order: Ordering) {
        let ctx = rt::current();
        ctx.exec.op_store(ctx.tid, self.loc(), value, order);
    }

    pub fn swap(&self, value: u64, order: Ordering) -> u64 {
        let ctx = rt::current();
        ctx.exec.op_rmw(ctx.tid, self.loc(), order, |_| value)
    }

    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        let ctx = rt::current();
        ctx.exec
            .op_rmw(ctx.tid, self.loc(), order, |old| old.wrapping_add(value))
    }

    pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
        let ctx = rt::current();
        ctx.exec
            .op_rmw(ctx.tid, self.loc(), order, |old| old.wrapping_sub(value))
    }

    pub fn fetch_or(&self, value: u64, order: Ordering) -> u64 {
        let ctx = rt::current();
        ctx.exec
            .op_rmw(ctx.tid, self.loc(), order, |old| old | value)
    }

    pub fn fetch_and(&self, value: u64, order: Ordering) -> u64 {
        let ctx = rt::current();
        ctx.exec
            .op_rmw(ctx.tid, self.loc(), order, |old| old & value)
    }

    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let ctx = rt::current();
        ctx.exec
            .op_cas(ctx.tid, self.loc(), current, new, success, failure)
    }

    /// Identical to [`compare_exchange`](Self::compare_exchange): the model
    /// does not generate spurious failures, which only removes executions
    /// that a correct retry loop must tolerate anyway.
    pub fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        self.compare_exchange(current, new, success, failure)
    }

    pub fn into_inner(self) -> u64 {
        self.peek()
    }

    /// Newest value in modification order, without a schedule point.
    fn peek(&self) -> u64 {
        match (self.loc.get(), rt::try_current()) {
            (Some(&loc), Some(ctx)) => ctx.exec.peek(loc),
            _ => self.init,
        }
    }
}

impl Default for AtomicU64 {
    fn default() -> Self {
        AtomicU64::new(0)
    }
}

impl std::fmt::Debug for AtomicU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicU64").field(&self.peek()).finish()
    }
}

macro_rules! wrap_u64 {
    ($name:ident, $ty:ty, $std_name:literal) => {
        #[doc = concat!("Instrumented [`std::sync::atomic::", $std_name, "`], backed by [`AtomicU64`].")]
        #[derive(Debug, Default)]
        pub struct $name(AtomicU64);

        impl $name {
            pub const fn new(value: $ty) -> Self {
                $name(AtomicU64::new(value as u64))
            }

            pub fn load(&self, order: Ordering) -> $ty {
                self.0.load(order) as $ty
            }

            pub fn store(&self, value: $ty, order: Ordering) {
                self.0.store(value as u64, order);
            }

            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                self.0.swap(value as u64, order) as $ty
            }

            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                self.0.fetch_add(value as u64, order) as $ty
            }

            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                self.0.fetch_sub(value as u64, order) as $ty
            }

            pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                self.0.fetch_or(value as u64, order) as $ty
            }

            pub fn fetch_and(&self, value: $ty, order: Ordering) -> $ty {
                self.0.fetch_and(value as u64, order) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.0
                    .compare_exchange(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            pub fn into_inner(self) -> $ty {
                self.0.into_inner() as $ty
            }
        }
    };
}

wrap_u64!(AtomicUsize, usize, "AtomicUsize");

/// Instrumented [`std::sync::atomic::AtomicBool`], backed by [`AtomicU64`].
#[derive(Debug, Default)]
pub struct AtomicBool(AtomicU64);

impl AtomicBool {
    pub const fn new(value: bool) -> Self {
        AtomicBool(AtomicU64::new(value as u64))
    }

    pub fn load(&self, order: Ordering) -> bool {
        self.0.load(order) != 0
    }

    pub fn store(&self, value: bool, order: Ordering) {
        self.0.store(value as u64, order);
    }

    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.0.swap(value as u64, order) != 0
    }

    pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
        self.0.fetch_or(value as u64, order) != 0
    }

    pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
        self.0.fetch_and(value as u64, order) != 0
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.0
            .compare_exchange(current as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }

    pub fn compare_exchange_weak(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.compare_exchange(current, new, success, failure)
    }

    pub fn into_inner(self) -> bool {
        self.0.into_inner() != 0
    }
}

/// Instrumented [`std::sync::atomic::fence`].
pub fn fence(order: Ordering) {
    let ctx = rt::current();
    ctx.exec.op_fence(ctx.tid, order);
}
