//! Minimal, API-compatible stand-in for the `criterion` benchmark harness.
//!
//! This container cannot reach crates.io, so the workspace vendors the small
//! subset of criterion's API that the `stm-bench` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`criterion_group!`] and [`criterion_main!`].
//!
//! Semantics:
//!
//! * **Bench mode** (`cargo bench`): each benchmark is warmed up for
//!   `warm_up_time`, then timed for up to `sample_size` iterations or
//!   `measurement_time`, whichever is hit first, and a
//!   `name  time: [mean per-iter]` line is printed.
//! * **Test mode** (`cargo bench -- --test`, or the `--test` flag cargo
//!   passes when running bench targets under `cargo test`): each benchmark
//!   body runs exactly once and is reported as `ok` — a smoke run.
//!
//! Command-line filters (positional args) restrict which benchmark IDs run,
//! matching criterion's substring-filter behaviour.
//!
//! When the `STM_BENCH_TIMINGS` environment variable names a file, bench
//! mode additionally appends one tab-separated `id\tmean_nanos` line per
//! measured benchmark — the machine-readable feed `repro … --snapshot
//! --bench-timings` merges into `BENCH_*.json` perf snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting only of a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`]; mirrors criterion's `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// Throughput annotation (accepted for API compatibility; not reported).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher<'a> {
    mode: Mode,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    iterations: u64,
    total: Duration,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records its mean execution time. In
    /// test mode the routine runs exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Test {
            black_box(routine());
            *self.result = Some(Sample {
                iterations: 1,
                total: Duration::ZERO,
            });
            return;
        }
        let warm_up_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let mut iterations = 0u64;
        let started = Instant::now();
        let deadline = started + self.measurement_time;
        while iterations < self.sample_size as u64 && Instant::now() < deadline {
            black_box(routine());
            iterations += 1;
        }
        if iterations == 0 {
            black_box(routine());
            iterations = 1;
        }
        *self.result = Some(Sample {
            iterations,
            total: started.elapsed(),
        });
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Bench,
    Test,
}

/// The benchmark harness: parses the command line and owns global settings.
pub struct Criterion {
    mode: Mode,
    filters: Vec<String>,
    executed: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Bench,
            filters: Vec::new(),
            executed: 0,
        }
    }
}

impl Criterion {
    /// Builds a harness from `std::env::args`, understanding `--test` (smoke
    /// mode), ignoring harness flags cargo passes (`--bench`, `--nocapture`,
    /// `--quiet`, `--verbose`) and treating positional args as substring
    /// filters.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.mode = Mode::Test,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" | "--noplot" | "--exact" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" | "--profile-time" => {
                    // Flags with a value: consume and ignore it.
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                filter => c.filters.push(filter.to_string()),
            }
        }
        c
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.run(BenchmarkId::from_parameter(""), &mut f);
        group.finish();
        self
    }

    /// Prints the end-of-run summary (invoked by [`criterion_main!`]).
    pub fn final_summary(&self) {
        match self.mode {
            Mode::Test => println!(
                "\ntest result: ok. {} benchmarks smoke-tested",
                self.executed
            ),
            Mode::Bench => println!("\ncompleted {} benchmarks", self.executed),
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A group of related benchmarks sharing settings; mirrors criterion's
/// `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = dur;
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Sets the group's throughput annotation (accepted, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(id.into_benchmark_id(), &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the body.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher<'_>, &T),
    {
        self.run(id.into_benchmark_id(), &mut |b: &mut Bencher<'_>| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher<'_>)) {
        let full_id = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full_id) {
            return;
        }
        let mode = self.criterion.mode;
        if mode == Mode::Test {
            print!("Testing {full_id} ... ");
        } else {
            print!("Benchmarking {full_id} ... ");
        }
        let mut result = None;
        let mut bencher = Bencher {
            mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            result: &mut result,
        };
        f(&mut bencher);
        self.criterion.executed += 1;
        match (mode, result) {
            (Mode::Test, _) => println!("ok"),
            (Mode::Bench, Some(sample)) => {
                let mean = sample.total.as_secs_f64() / sample.iterations as f64;
                println!(
                    "time: [{} per iter over {} iters]",
                    format_time(mean),
                    sample.iterations
                );
                export_timing(&full_id, mean * 1e9);
            }
            (Mode::Bench, None) => println!("skipped (body never called Bencher::iter)"),
        }
    }
}

/// Appends `id\tmean_nanos` to the file named by `STM_BENCH_TIMINGS`, if
/// set. Export failures only warn: a bench run must never die because a
/// timings path is unwritable.
fn export_timing(full_id: &str, mean_nanos: f64) {
    let Ok(path) = std::env::var("STM_BENCH_TIMINGS") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{full_id}\t{mean_nanos}"));
    if let Err(error) = appended {
        eprintln!("warning: cannot append bench timing to '{path}': {error}");
    }
}

/// Formats a duration in seconds with an adaptive unit, criterion-style.
fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.3} ns", seconds * 1e9)
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("lee", "SwissTM").id, "lee/SwissTM");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion {
            mode: Mode::Test,
            filters: Vec::new(),
            executed: 0,
        };
        let mut calls = 0;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("once", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert_eq!(calls, 1);
        assert_eq!(c.executed, 1);
    }

    #[test]
    fn filters_select_by_substring() {
        let mut c = Criterion {
            mode: Mode::Test,
            filters: vec!["keep".into()],
            executed: 0,
        };
        let mut kept = 0;
        let mut dropped = 0;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("keep_me", |b| b.iter(|| kept += 1));
            group.bench_function("skip_me", |b| b.iter(|| dropped += 1));
            group.finish();
        }
        assert_eq!((kept, dropped), (1, 0));
    }

    #[test]
    fn bench_mode_times_iterations() {
        let mut c = Criterion {
            mode: Mode::Bench,
            filters: Vec::new(),
            executed: 0,
        };
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.warm_up_time(Duration::from_millis(1));
            group.measurement_time(Duration::from_millis(50));
            group.bench_with_input("count", &3u64, |b, &step| b.iter(|| calls += step));
            group.finish();
        }
        assert!(
            calls >= 5 * 3,
            "expected at least the sample-size iterations"
        );
    }

    #[test]
    fn bench_mode_exports_timings_when_env_var_set() {
        let path =
            std::env::temp_dir().join(format!("criterion-timings-test-{}.tsv", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("STM_BENCH_TIMINGS", &path);
        let mut c = Criterion {
            mode: Mode::Bench,
            filters: Vec::new(),
            executed: 0,
        };
        {
            let mut group = c.benchmark_group("export_group");
            group.sample_size(2);
            group.warm_up_time(Duration::from_millis(1));
            group.measurement_time(Duration::from_millis(20));
            group.bench_function("timed", |b| b.iter(|| black_box(1 + 1)));
            group.finish();
        }
        std::env::remove_var("STM_BENCH_TIMINGS");
        let contents = std::fs::read_to_string(&path).expect("timings file must exist");
        let _ = std::fs::remove_file(&path);
        let line = contents
            .lines()
            .find(|l| l.starts_with("export_group/timed\t"))
            .expect("expected an export_group/timed line");
        let mean: f64 = line.split('\t').nth(1).unwrap().parse().unwrap();
        assert!(mean.is_finite() && mean >= 0.0, "{line}");
    }
}
