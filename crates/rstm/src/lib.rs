//! # RSTM-style baseline
//!
//! A reproduction of the **RSTM (version 3)** design point used by the
//! paper: an object-based STM with per-object metadata, configurable
//! *eager vs lazy* acquisition, *visible vs invisible* reads, a global
//! commit-counter validation heuristic and pluggable contention managers
//! (Polka by default, Serializer/Greedy for the STMBench7 experiments).
//!
//! ## Relation to the original
//!
//! The original RSTM manages heap *objects* through an object header with
//! an owner pointer and a visible-reader list. Our workloads live in the
//! shared word heap (see DESIGN.md §2), so the "objects" here are lock-table
//! stripes: every stripe carries an [`ObjectHeader`] with
//!
//! * an **owner** word (the acquiring transaction's slot),
//! * a **visible-readers bitmap** (one bit per thread slot),
//! * a **versioned lock** used for commit-time write-back.
//!
//! This keeps RSTM's cost profile — several metadata words touched per
//! access, reader-bitmap read-modify-writes in visible mode, Polka
//! bookkeeping — which is what drives its relative performance in the
//! paper's Lee-TM and red-black-tree experiments.
//!
//! ## Variants
//!
//! [`RstmVariant`] selects the acquisition strategy and read visibility;
//! the four combinations correspond to the four RSTM algorithm variants the
//! paper mentions in §2.1 and exercises in Figure 7 and Table 1.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use stm_core::prelude::*;
//! use rstm::{Rstm, RstmVariant};
//!
//! let stm = Arc::new(
//!     Rstm::builder()
//!         .config(stm_core::config::StmConfig::small())
//!         .variant(RstmVariant::eager_invisible())
//!         .build(),
//! );
//! let cell = stm.heap().alloc_zeroed(1).unwrap();
//! let mut ctx = ThreadContext::register(stm);
//! ctx.atomically(|tx| tx.write(cell, 1)).unwrap();
//! assert_eq!(ctx.read_word(cell).unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use stm_core::sync::{AtomicU64, Ordering};

use stm_core::clock::{ThreadRegistry, ThreadSlot, TxClock, TxShared};
use stm_core::cm::{CmHandle, ContentionManager, Polka, Resolution};
use stm_core::config::StmConfig;
use stm_core::error::{Abort, TxResult};
use stm_core::heap::TmHeap;
use stm_core::locktable::LockTable;
use stm_core::logs::{ReadEntry, ReadLog, StripeSet, WriteLog};
use stm_core::telemetry::{self, ConflictSite, WaitTimer};
use stm_core::tm::{DescriptorCore, TmAlgorithm, TxDescriptor};
use stm_core::word::{Addr, Word};

/// Acquisition strategy: when does a writer take ownership of an object?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquisition {
    /// At the first write (encounter time).
    Eager,
    /// At commit time.
    Lazy,
}

/// Read visibility: do readers announce themselves in the object header?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadVisibility {
    /// Readers register in the per-object reader bitmap; writers abort them
    /// when acquiring the object.
    Visible,
    /// Readers leave no trace and validate their read set against object
    /// versions (with the global commit-counter heuristic).
    Invisible,
}

/// An RSTM algorithm variant: acquisition strategy × read visibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RstmVariant {
    /// Acquisition strategy.
    pub acquisition: Acquisition,
    /// Read visibility.
    pub visibility: ReadVisibility,
}

impl RstmVariant {
    /// Eager acquisition, invisible reads (the paper's default RSTM
    /// configuration).
    pub fn eager_invisible() -> Self {
        RstmVariant {
            acquisition: Acquisition::Eager,
            visibility: ReadVisibility::Invisible,
        }
    }

    /// Eager acquisition, visible reads.
    pub fn eager_visible() -> Self {
        RstmVariant {
            acquisition: Acquisition::Eager,
            visibility: ReadVisibility::Visible,
        }
    }

    /// Lazy acquisition, invisible reads.
    pub fn lazy_invisible() -> Self {
        RstmVariant {
            acquisition: Acquisition::Lazy,
            visibility: ReadVisibility::Invisible,
        }
    }

    /// Lazy acquisition, visible reads.
    pub fn lazy_visible() -> Self {
        RstmVariant {
            acquisition: Acquisition::Lazy,
            visibility: ReadVisibility::Visible,
        }
    }

    /// Short label used in experiment tables, e.g. `"eager/invisible"`.
    pub fn label(&self) -> &'static str {
        match (self.acquisition, self.visibility) {
            (Acquisition::Eager, ReadVisibility::Invisible) => "eager/invisible",
            (Acquisition::Eager, ReadVisibility::Visible) => "eager/visible",
            (Acquisition::Lazy, ReadVisibility::Invisible) => "lazy/invisible",
            (Acquisition::Lazy, ReadVisibility::Visible) => "lazy/visible",
        }
    }
}

impl Default for RstmVariant {
    fn default() -> Self {
        RstmVariant::eager_invisible()
    }
}

/// Per-object (per-stripe) metadata header.
#[derive(Debug, Default)]
pub struct ObjectHeader {
    /// Owning writer: 0 when unowned, otherwise thread slot + 1.
    owner: AtomicU64,
    /// Bitmap of visible readers (bit *i* = thread slot *i*).
    readers: AtomicU64,
    /// Versioned lock used for commit-time write-back: `version << 1` when
    /// free, `1` while a writer installs its updates.
    version: AtomicU64,
}

impl ObjectHeader {
    #[inline]
    fn owner_tag(slot: ThreadSlot) -> u64 {
        slot.index() as u64 + 1
    }

    /// Current owner, if any.
    #[inline]
    pub fn owner(&self) -> Option<ThreadSlot> {
        // sync: Acquire so whoever sees an owner tag also sees that
        // owner's descriptor state (pairs with try_acquire's Release).
        match self.owner.load(Ordering::Acquire) {
            0 => None,
            tag => Some(ThreadSlot::new((tag - 1) as usize)),
        }
    }

    /// Returns `true` if `slot` owns this object.
    #[inline]
    pub fn is_owned_by(&self, slot: ThreadSlot) -> bool {
        // sync: Acquire, same edge as owner().
        self.owner.load(Ordering::Acquire) == Self::owner_tag(slot)
    }

    /// Attempts to acquire ownership for `slot`.
    #[inline]
    pub fn try_acquire(&self, slot: ThreadSlot) -> bool {
        self.owner
            .compare_exchange(
                0,
                Self::owner_tag(slot),
                // sync: AcqRel on success — Acquire orders the new owner
                // after the previous release, Release publishes ownership
                // to conflicting transactions; Acquire on failure because
                // the loser reads the winner's tag to fight or wait.
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Releases ownership.
    #[inline]
    pub fn release(&self) {
        // sync: Release so the next acquirer sees the previous owner's
        // write-back (eager) or abandoned state (abort) before free.
        self.owner.store(0, Ordering::Release);
    }

    /// Registers `slot` as a visible reader.
    #[inline]
    pub fn add_reader(&self, slot: ThreadSlot) {
        // sync: AcqRel RMW — registration must be ordered against a
        // concurrent writer's readers() scan: either the writer sees this
        // reader's bit, or this reader's subsequent version check sees the
        // writer's acquisition.
        self.readers.fetch_or(1 << slot.index(), Ordering::AcqRel);
    }

    /// Unregisters `slot` as a visible reader.
    #[inline]
    pub fn remove_reader(&self, slot: ThreadSlot) {
        self.readers
            // sync: AcqRel RMW, mirror of add_reader().
            .fetch_and(!(1 << slot.index()), Ordering::AcqRel);
    }

    /// Snapshot of the visible-reader bitmap.
    #[inline]
    pub fn readers(&self) -> u64 {
        // sync: Acquire pairs with add_reader's RMW so a writer that saw
        // the bitmap empty is ordered after the readers' deregistrations.
        self.readers.load(Ordering::Acquire)
    }

    /// Raw sample of the versioned lock.
    #[inline]
    pub fn version_raw(&self) -> u64 {
        // sync: Acquire pairs with publish_version's Release — observing
        // version v implies observing the write-back v stamps.
        self.version.load(Ordering::Acquire)
    }

    /// Current version, or `None` while a writer installs updates.
    #[inline]
    pub fn version(&self) -> Option<u64> {
        let raw = self.version_raw();
        if raw & 1 == 1 {
            None
        } else {
            Some(raw >> 1)
        }
    }

    /// Marks the object as being written back.
    #[inline]
    pub fn lock_version(&self) {
        // sync: Release — only the object's owner stores here; readers
        // spinning on the locked marker re-sample with Acquire.
        self.version.store(1, Ordering::Release);
    }

    /// Publishes a new version (unlocking the write-back lock).
    #[inline]
    pub fn publish_version(&self, version: u64) {
        // sync: Release publishes the installed updates before the new
        // version becomes visible (pairs with version_raw's Acquire).
        self.version.store(version << 1, Ordering::Release);
    }
}

/// Transaction descriptor of [`Rstm`].
#[derive(Debug)]
pub struct RstmDescriptor {
    core: DescriptorCore,
    valid_ts: u64,
    read_log: ReadLog,
    write_log: WriteLog,
    /// Objects owned by this transaction, with the version observed when the
    /// object was acquired (O(1) membership and version lookup).
    acquired: StripeSet,
    /// Objects on which this transaction registered as a visible reader
    /// (O(1) membership test on the read hot path).
    visible_reads: StripeSet,
    /// Reusable scratch buffer for the lazy variant's commit-time
    /// acquisition order (sorted for deadlock avoidance).
    commit_order: Vec<usize>,
    doomed: bool,
}

impl TxDescriptor for RstmDescriptor {
    fn core(&self) -> &DescriptorCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut DescriptorCore {
        &mut self.core
    }

    fn is_read_only(&self) -> bool {
        self.write_log.is_empty()
    }
}

/// Builder for [`Rstm`] instances.
#[derive(Debug)]
pub struct RstmBuilder {
    config: StmConfig,
    variant: RstmVariant,
    cm: Option<CmHandle>,
}

impl RstmBuilder {
    /// Starts a builder with the paper's default RSTM configuration
    /// (eager acquisition, invisible reads, Polka).
    pub fn new() -> Self {
        RstmBuilder {
            config: StmConfig::benchmark(),
            variant: RstmVariant::eager_invisible(),
            cm: None,
        }
    }

    /// Sets the heap and lock-table configuration.
    pub fn config(mut self, config: StmConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the algorithm variant.
    pub fn variant(mut self, variant: RstmVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Replaces the contention manager (default: [`Polka`]).
    pub fn contention_manager(mut self, cm: CmHandle) -> Self {
        self.cm = Some(cm);
        self
    }

    /// Builds the STM instance.
    pub fn build(self) -> Rstm {
        Rstm {
            heap: TmHeap::new(self.config.heap),
            registry: ThreadRegistry::new(),
            objects: LockTable::new(self.config.lock_table),
            commit_counter: TxClock::new(self.config.clock),
            variant: self.variant,
            cm: self.cm.unwrap_or_else(|| Arc::new(Polka::new())),
        }
    }
}

impl Default for RstmBuilder {
    fn default() -> Self {
        RstmBuilder::new()
    }
}

/// The RSTM-style software transactional memory.
pub struct Rstm {
    heap: TmHeap,
    registry: ThreadRegistry,
    objects: LockTable<ObjectHeader>,
    commit_counter: TxClock,
    variant: RstmVariant,
    cm: CmHandle,
}

impl std::fmt::Debug for Rstm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rstm")
            .field("variant", &self.variant.label())
            .field("objects", &self.objects.len())
            .field("cm", &self.cm.name())
            .finish()
    }
}

impl Rstm {
    /// Creates an instance with the paper's default configuration.
    pub fn new() -> Self {
        RstmBuilder::new().build()
    }

    /// Creates an instance with an explicit heap/lock-table configuration.
    pub fn with_config(config: StmConfig) -> Self {
        RstmBuilder::new().config(config).build()
    }

    /// Returns a builder for customised instances.
    pub fn builder() -> RstmBuilder {
        RstmBuilder::new()
    }

    /// The variant (acquisition × visibility) of this instance.
    pub fn variant(&self) -> RstmVariant {
        self.variant
    }

    /// The configured commit-clock mode.
    pub fn clock_mode(&self) -> stm_core::config::ClockMode {
        self.commit_counter.mode()
    }

    /// The object-header table, exposed for diagnostics and for
    /// deterministic conflict rigs that stage stuck owners or visible
    /// readers (see `stm_core::testkit::RecordingCm`). Application code
    /// never needs it.
    pub fn objects(&self) -> &LockTable<ObjectHeader> {
        &self.objects
    }

    fn shared_of(&self, slot: ThreadSlot) -> &Arc<TxShared> {
        self.registry.shared(slot)
    }

    /// Validates a slice of read-log entries. The self-owned object check
    /// is O(1) via the acquired stripe set.
    fn entries_valid(&self, acquired: &StripeSet, entries: &[ReadEntry]) -> bool {
        for entry in entries {
            let object = self.objects.entry_at(entry.lock_index);
            if object.version() == Some(entry.version) {
                continue;
            }
            // A drifted (or write-back-locked) version is benign only for an
            // object we own whose version at acquisition time equals the one
            // the read observed — i.e. nothing committed it between our read
            // and our acquisition.
            if acquired.version_of(entry.lock_index) != Some(entry.version) {
                return false;
            }
        }
        true
    }

    /// Full read-set validation (used by the commit path).
    fn validate(&self, desc: &RstmDescriptor) -> bool {
        self.entries_valid(&desc.acquired, desc.read_log.entries())
    }

    /// Snapshot extension: [`ReadLog::extend_with`] orders the work — fresh
    /// suffix first, then the opacity-mandated re-confirmation of the
    /// validated prefix.
    fn extend(&self, desc: &mut RstmDescriptor) -> bool {
        let ts = self.commit_counter.read();
        let acquired = &desc.acquired;
        if !desc
            .read_log
            .extend_with(|entries| self.entries_valid(acquired, entries))
        {
            return false;
        }
        desc.valid_ts = ts;
        true
    }

    /// Resolves a conflict against the owner of `object`; returns `Ok(())`
    /// when the caller may retry the acquisition and `Err` when the caller
    /// must abort. `site` attributes the resolution in the contention
    /// telemetry (eager write, lazy commit-time acquisition, or an eager
    /// read/write conflict).
    fn fight_owner(
        &self,
        desc: &RstmDescriptor,
        owner: ThreadSlot,
        kind: Abort,
        site: ConflictSite,
    ) -> TxResult<()> {
        let owner_shared = self.shared_of(owner);
        match telemetry::resolve_recorded(&*self.cm, &desc.core.shared, owner_shared, site) {
            Resolution::AbortSelf => Err(kind),
            Resolution::AbortOther | Resolution::Wait => {
                stm_core::sync::spin_loop();
                Ok(())
            }
        }
    }

    /// Aborts (or waits for) the visible readers of an object the caller
    /// just acquired.
    fn resolve_visible_readers(
        &self,
        desc: &RstmDescriptor,
        object: &ObjectHeader,
    ) -> TxResult<()> {
        let readers = object.readers();
        if readers == 0 {
            return Ok(());
        }
        for slot_index in 0..stm_core::clock::MAX_THREADS {
            if slot_index == desc.core.slot.index() {
                continue;
            }
            if readers & (1 << slot_index) != 0 {
                let reader = self.shared_of(ThreadSlot::new(slot_index));
                let resolution = self.cm.resolve(&desc.core.shared, reader);
                // This site cannot wait: any decision other than AbortSelf
                // is carried out by telling the reader to abort, so the
                // telemetry records the *effective* resolution — a literal
                // `Wait` answer would otherwise show up as waits with zero
                // victim-aborts next to a non-zero inflicted count.
                let effective = match resolution {
                    Resolution::Wait => Resolution::AbortOther,
                    other => other,
                };
                desc.core
                    .shared
                    .telemetry()
                    .record_resolution(ConflictSite::VisibleReader, effective);
                match resolution {
                    Resolution::AbortSelf => return Err(Abort::WRITE_CONFLICT),
                    Resolution::AbortOther | Resolution::Wait => {
                        if reader.request_abort() {
                            desc.core.shared.telemetry().record_abort_inflicted();
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn acquire_object(
        &self,
        desc: &mut RstmDescriptor,
        lock_index: usize,
        site: ConflictSite,
    ) -> TxResult<()> {
        if desc.acquired.contains(lock_index) {
            return Ok(());
        }
        let object = self.objects.entry_at(lock_index);
        // Lazily started wait timer: conflict-free acquisitions never
        // sample a clock; contended ones attribute the loop's wall-clock
        // time to the CM wait total on every exit path.
        let mut wait_timer: Option<WaitTimer> = None;
        loop {
            if desc.core.shared.abort_requested() {
                return Err(Abort::REMOTE);
            }
            match object.owner() {
                None => {
                    if object.try_acquire(desc.core.slot) {
                        break;
                    }
                }
                Some(owner) if owner == desc.core.slot => break,
                Some(owner) => {
                    if wait_timer.is_none() {
                        wait_timer = Some(WaitTimer::start(&desc.core.shared));
                    }
                    self.fight_owner(desc, owner, Abort::WRITE_CONFLICT, site)?;
                }
            }
        }
        drop(wait_timer);
        // Record the version observed at acquisition so commit can detect
        // read/write races on the object itself.
        let version = object.version().unwrap_or(0);
        desc.acquired.insert(lock_index, version);
        self.cm.on_write(&desc.core.shared, desc.acquired.len());
        // Visible readers conflict with the new writer right away.
        self.resolve_visible_readers(desc, object)?;
        Ok(())
    }

    fn release_everything(&self, desc: &mut RstmDescriptor) {
        for stripe in desc.acquired.iter() {
            self.objects.entry_at(stripe.lock_index).release();
        }
        desc.acquired.clear();
        for stripe in desc.visible_reads.iter() {
            self.objects
                .entry_at(stripe.lock_index)
                .remove_reader(desc.core.slot);
        }
        desc.visible_reads.clear();
    }

    fn doom(&self, desc: &mut RstmDescriptor, abort: Abort) -> Abort {
        self.release_everything(desc);
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = true;
        abort
    }
}

impl Default for Rstm {
    fn default() -> Self {
        Rstm::new()
    }
}

impl TmAlgorithm for Rstm {
    type Descriptor = RstmDescriptor;

    fn name(&self) -> &'static str {
        "RSTM"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn contention_manager(&self) -> &dyn ContentionManager {
        &*self.cm
    }

    fn create_descriptor(&self, slot: ThreadSlot) -> RstmDescriptor {
        RstmDescriptor {
            core: DescriptorCore::new(slot, Arc::clone(self.shared_of(slot))),
            valid_ts: 0,
            read_log: ReadLog::new(),
            write_log: WriteLog::new(),
            acquired: StripeSet::new(),
            visible_reads: StripeSet::new(),
            commit_order: Vec::with_capacity(16),
            doomed: false,
        }
    }

    fn begin(&self, desc: &mut RstmDescriptor, is_restart: bool) {
        desc.core.reset_attempt();
        desc.read_log.clear();
        desc.write_log.clear();
        desc.acquired.clear();
        desc.visible_reads.clear();
        desc.doomed = false;
        desc.valid_ts = self.commit_counter.read();
        self.cm.on_start(&desc.core.shared, is_restart);
    }

    fn read(&self, desc: &mut RstmDescriptor, addr: Addr) -> TxResult<Word> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        desc.core.attempt_reads += 1;

        let lock_index = self.objects.index_of(addr);
        let object = self.objects.entry_at(lock_index);

        // Read-after-write.
        if object.is_owned_by(desc.core.slot) {
            if let Some(value) = desc.write_log.lookup(addr) {
                return Ok(value);
            }
            return Ok(self.heap.load(addr));
        }
        if let Some(value) = desc.write_log.lookup(addr) {
            // Lazy variant: the write is buffered but the object not yet
            // acquired.
            return Ok(value);
        }

        // With eager acquisition an object owned by an active writer is an
        // eagerly detected read/write conflict (RSTM "opens" the object and
        // consults the contention manager) — the behaviour the paper's
        // Figure 7/8 analysis attributes to eager designs.
        if self.variant.acquisition == Acquisition::Eager {
            let mut wait_timer: Option<WaitTimer> = None;
            while let Some(owner) = object.owner() {
                if owner == desc.core.slot {
                    break;
                }
                if wait_timer.is_none() {
                    wait_timer = Some(WaitTimer::start(&desc.core.shared));
                }
                if let Err(abort) =
                    self.fight_owner(desc, owner, Abort::READ_LOCKED, ConflictSite::Read)
                {
                    return Err(self.doom(desc, abort));
                }
                if desc.core.shared.abort_requested() {
                    return Err(self.doom(desc, Abort::REMOTE));
                }
            }
            drop(wait_timer);
        }

        if self.variant.visibility == ReadVisibility::Visible
            && !desc.visible_reads.contains(lock_index)
        {
            object.add_reader(desc.core.slot);
            desc.visible_reads.insert(lock_index, 0);
        }

        // Consistent version/value/version sample. The spin paths honour
        // remote abort requests: the object may be write-back-locked by a
        // committer that is waiting on the contention manager's decision
        // against us.
        let (value, version) = loop {
            let pre = object.version_raw();
            if pre & 1 == 1 {
                if desc.core.shared.abort_requested() {
                    return Err(self.doom(desc, Abort::REMOTE));
                }
                stm_core::sync::spin_loop();
                continue;
            }
            let value = self.heap.load(addr);
            let post = object.version_raw();
            if pre == post {
                break (value, pre >> 1);
            }
            if desc.core.shared.abort_requested() {
                return Err(self.doom(desc, Abort::REMOTE));
            }
            stm_core::sync::spin_loop();
        };

        desc.read_log.push(lock_index, version);
        self.cm.on_read(&desc.core.shared, desc.read_log.len());

        if version > desc.valid_ts {
            // Fold the fresh version into a deferred clock before extending,
            // so the new snapshot reaches at least this object's version.
            self.commit_counter.observe(version);
            if !self.extend(desc) {
                return Err(self.doom(desc, Abort::READ_VALIDATION));
            }
        }
        Ok(value)
    }

    fn write(&self, desc: &mut RstmDescriptor, addr: Addr, value: Word) -> TxResult<()> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        desc.core.attempt_writes += 1;

        let lock_index = self.objects.index_of(addr);

        if self.variant.acquisition == Acquisition::Eager {
            if let Err(abort) = self.acquire_object(desc, lock_index, ConflictSite::Write) {
                return Err(self.doom(desc, abort));
            }
            let version = desc.acquired.version_of(lock_index).unwrap_or(0);
            if version > desc.valid_ts {
                self.commit_counter.observe(version);
                if !self.extend(desc) {
                    return Err(self.doom(desc, Abort::READ_VALIDATION));
                }
            }
        }
        desc.write_log.record(addr, value, lock_index, 0);
        if self.variant.acquisition == Acquisition::Lazy {
            // Track the distinct write-set stripes so commit-time
            // acquisition needs no sort+dedup pass over the redo log.
            desc.write_log.record_stripe(lock_index, 0);
            self.cm.on_write(&desc.core.shared, desc.write_log.len());
        }
        Ok(())
    }

    fn commit(&self, desc: &mut RstmDescriptor) -> TxResult<()> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        if desc.write_log.is_empty() {
            // Read-only: clean up visible-reader registrations.
            for stripe in desc.visible_reads.iter() {
                self.objects
                    .entry_at(stripe.lock_index)
                    .remove_reader(desc.core.slot);
            }
            desc.visible_reads.clear();
            desc.read_log.clear();
            return Ok(());
        }

        // Lazy variant: acquire the whole write set now, in sorted order
        // for deadlock avoidance. The distinct stripes come from the write
        // log's stripe set; the sort reuses a per-descriptor scratch buffer.
        if self.variant.acquisition == Acquisition::Lazy {
            let mut order = std::mem::take(&mut desc.commit_order);
            desc.write_log.sorted_stripe_indices(&mut order);
            let mut acquired = Ok(());
            for &lock_index in &order {
                if let Err(abort) = self.acquire_object(desc, lock_index, ConflictSite::Commit) {
                    acquired = Err(abort);
                    break;
                }
            }
            desc.commit_order = order;
            if let Err(abort) = acquired {
                return Err(self.doom(desc, abort));
            }
        }

        // sync: the write-back locks must be taken *before* the clock is
        // stamped. The clock stamp is an AcqRel RMW, so a rival whose
        // begin-time snapshot (Acquire clock read) covers our stamp also
        // observes these locked version words — it can never sample a
        // consistent pre-commit version/value pair for an object we are
        // about to overwrite and then skip validation because its stamp
        // lands directly after ours. The owner word alone does not give
        // that guarantee here: the invisible read path samples only the
        // version word. (Locking after validation used to be safe under
        // SC; the model checker's lost-update scenario found the C11-level
        // window — see crates/stm-model-tests/tests/lost_update.rs.)
        for stripe in desc.acquired.iter() {
            self.objects.entry_at(stripe.lock_index).lock_version();
        }

        // Stamped after the whole write set is acquired and version-locked:
        // a deferred clock's committer-side fence sits between those
        // acquisitions and its clock read (see `TxClock`).
        let stamp = self.commit_counter.commit_stamp(desc.valid_ts);
        let ts = stamp.ts;
        if stamp.needs_validation() && !self.validate(desc) {
            // Unlock the write-back locks at their acquisition-time
            // versions before rolling back: `release_everything` only
            // frees the owner words, and a version word left locked would
            // park every future reader of the stripe forever.
            for stripe in desc.acquired.iter() {
                self.objects
                    .entry_at(stripe.lock_index)
                    .publish_version(stripe.version);
            }
            return Err(self.doom(desc, Abort::READ_VALIDATION));
        }

        // Install the updates under the already-held write-back locks.
        for entry in desc.write_log.iter() {
            self.heap.store(entry.addr, entry.value);
        }
        for stripe in desc.acquired.iter() {
            let object = self.objects.entry_at(stripe.lock_index);
            object.publish_version(ts);
            object.release();
        }
        desc.acquired.clear();
        for stripe in desc.visible_reads.iter() {
            self.objects
                .entry_at(stripe.lock_index)
                .remove_reader(desc.core.slot);
        }
        desc.visible_reads.clear();
        desc.read_log.clear();
        desc.write_log.clear();
        Ok(())
    }

    fn rollback(&self, desc: &mut RstmDescriptor) {
        self.release_everything(desc);
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::config::StmConfig;
    use stm_core::tm::ThreadContext;

    fn stm_with(variant: RstmVariant) -> Arc<Rstm> {
        Arc::new(
            Rstm::builder()
                .config(StmConfig::small())
                .variant(variant)
                .build(),
        )
    }

    fn all_variants() -> Vec<RstmVariant> {
        vec![
            RstmVariant::eager_invisible(),
            RstmVariant::eager_visible(),
            RstmVariant::lazy_invisible(),
            RstmVariant::lazy_visible(),
        ]
    }

    #[test]
    fn read_your_own_writes_in_all_variants() {
        for variant in all_variants() {
            let stm = stm_with(variant);
            let addr = stm.heap().alloc_zeroed(1).unwrap();
            let mut ctx = ThreadContext::register(stm);
            let v = ctx
                .atomically(|tx| {
                    tx.write(addr, 11)?;
                    tx.read(addr)
                })
                .unwrap();
            assert_eq!(v, 11, "variant {}", variant.label());
        }
    }

    #[test]
    fn counter_is_consistent_under_concurrency_in_all_variants() {
        for variant in all_variants() {
            let stm = stm_with(variant);
            let addr = stm.heap().alloc_zeroed(1).unwrap();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let stm = Arc::clone(&stm);
                    std::thread::spawn(move || {
                        let mut ctx = ThreadContext::register(stm);
                        for _ in 0..250 {
                            ctx.atomically(|tx| {
                                let v = tx.read(addr)?;
                                tx.write(addr, v + 1)
                            })
                            .unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(stm.heap().load(addr), 1000, "variant {}", variant.label());
        }
    }

    #[test]
    fn aborted_writes_leave_no_trace() {
        for variant in all_variants() {
            let stm = stm_with(variant);
            let addr = stm.heap().alloc_zeroed(1).unwrap();
            let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
            let _ = ctx.atomically(|tx| {
                tx.write(addr, 77)?;
                tx.retry::<()>()
            });
            assert_eq!(stm.heap().load(addr), 0, "variant {}", variant.label());
            // Object must be released so another transaction can write it.
            let mut ctx2 = ThreadContext::register(stm);
            ctx2.atomically(|tx| tx.write(addr, 5)).unwrap();
        }
    }

    #[test]
    fn visible_readers_are_cleared_on_commit() {
        let stm = stm_with(RstmVariant::eager_visible());
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        ctx.atomically(|tx| tx.read(addr)).unwrap();
        assert_eq!(stm.objects.entry(addr).readers(), 0);
    }

    #[test]
    fn object_header_reader_bitmap() {
        let header = ObjectHeader::default();
        header.add_reader(ThreadSlot::new(0));
        header.add_reader(ThreadSlot::new(5));
        assert_eq!(header.readers(), 0b100001);
        header.remove_reader(ThreadSlot::new(0));
        assert_eq!(header.readers(), 0b100000);
    }

    #[test]
    fn object_header_ownership() {
        let header = ObjectHeader::default();
        assert_eq!(header.owner(), None);
        assert!(header.try_acquire(ThreadSlot::new(2)));
        assert!(!header.try_acquire(ThreadSlot::new(3)));
        assert!(header.is_owned_by(ThreadSlot::new(2)));
        header.release();
        assert_eq!(header.owner(), None);
    }

    #[test]
    fn object_header_version_lock() {
        let header = ObjectHeader::default();
        assert_eq!(header.version(), Some(0));
        header.lock_version();
        assert_eq!(header.version(), None);
        header.publish_version(6);
        assert_eq!(header.version(), Some(6));
    }

    #[test]
    fn variant_labels_are_distinct() {
        let mut labels: Vec<_> = all_variants().iter().map(|v| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn default_cm_is_polka() {
        let stm = Rstm::with_config(StmConfig::small());
        assert_eq!(stm.contention_manager().name(), "polka");
        assert_eq!(stm.variant(), RstmVariant::eager_invisible());
    }

    #[test]
    fn reader_spinning_on_write_back_locked_object_honours_remote_abort() {
        // Regression test: a reader spinning on an object whose write-back
        // lock is held must notice a remote abort request instead of
        // spinning until the lock is released.
        let stm = stm_with(RstmVariant::eager_invisible());
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        // Simulate a committer stuck mid-write-back.
        stm.objects.entry(addr).lock_version();

        let reader_stm = Arc::clone(&stm);
        let reader = std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(reader_stm).with_retry_budget(3);
            ctx.atomically(|tx| tx.read(addr))
        });
        while !reader.is_finished() {
            for shared in stm.registry().iter_registered() {
                shared.request_abort();
            }
            std::thread::yield_now();
        }
        let result = reader.join().unwrap();
        assert!(matches!(
            result,
            Err(stm_core::error::StmError::RetryBudgetExhausted { attempts: 3 })
        ));
        stm.objects.entry(addr).publish_version(0);
    }

    #[test]
    fn money_transfer_preserves_the_total() {
        let stm = stm_with(RstmVariant::eager_invisible());
        let accounts = 8usize;
        let base = stm.heap().alloc_zeroed(accounts).unwrap();
        for i in 0..accounts {
            stm.heap().store(base.offset(i), 1000);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    let mut rng = stm_core::backoff::FastRng::new(t as u64 + 31);
                    for _ in 0..300 {
                        let from = rng.next_below(accounts as u64) as usize;
                        let to = rng.next_below(accounts as u64) as usize;
                        ctx.atomically(|tx| {
                            let f = tx.read(base.offset(from))?;
                            let t_bal = tx.read(base.offset(to))?;
                            if from != to && f >= 10 {
                                tx.write(base.offset(from), f - 10)?;
                                tx.write(base.offset(to), t_bal + 10)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..accounts).map(|i| stm.heap().load(base.offset(i))).sum();
        assert_eq!(total, 8000);
    }
}
