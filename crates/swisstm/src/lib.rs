//! # SwissTM
//!
//! A Rust reproduction of **SwissTM** — the lock- and word-based software
//! transactional memory of Dragojević, Guerraoui and Kapałka,
//! *Stretching Transactional Memory*, PLDI 2009.
//!
//! The algorithm's two distinctive features (paper §1, §3):
//!
//! 1. **Mixed invalidation conflict detection.** Write/write conflicts are
//!    detected *eagerly*: a writer acquires the write lock of a memory
//!    stripe at its first write, so two writers of the same stripe collide
//!    immediately and no work is wasted on a transaction doomed to abort.
//!    Read/write conflicts are detected *lazily*: reads are invisible and
//!    validated against a global commit counter (with timestamp extension),
//!    so readers can run concurrently with a writer of the same stripe and
//!    only revalidate when the writer actually commits.
//! 2. **Two-phase contention management.** Transactions are "timid" (abort
//!    themselves on conflict) until they have performed `Wn = 10` writes;
//!    beyond that they enter a Greedy phase with a unique timestamp in which
//!    older (longer-running) transactions win, guaranteeing progress of
//!    long transactions without imposing any bookkeeping on short ones.
//!    Aborted transactions back off for a random duration proportional to
//!    their number of successive aborts.
//!
//! Each stripe of the lock table carries **two** locks (paper §3.3): a
//! `w-lock` acquired eagerly by writers, and an `r-lock` that holds the
//! stripe's version number and is locked only for the short duration of a
//! writer's commit.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use stm_core::prelude::*;
//! use swisstm::SwissTm;
//!
//! let stm = Arc::new(SwissTm::with_config(stm_core::config::StmConfig::small()));
//! let counter = stm.heap().alloc_zeroed(1).unwrap();
//!
//! let mut ctx = ThreadContext::register(Arc::clone(&stm));
//! ctx.atomically(|tx| {
//!     let v = tx.read(counter)?;
//!     tx.write(counter, v + 1)
//! }).unwrap();
//! assert_eq!(ctx.read_word(counter).unwrap(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod entry;

pub use algorithm::{SwissDescriptor, SwissTm, SwissTmBuilder};
pub use entry::{ReadLockState, StripeEntry, WriteLockState};
