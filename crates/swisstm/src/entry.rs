//! Lock-table stripe entries: the `r-lock` / `w-lock` pair.
//!
//! Each stripe of consecutive heap words maps to one [`StripeEntry`]
//! (paper §3, §3.3):
//!
//! * the **write lock** (`w-lock`) is `0` when free and otherwise encodes
//!   the owning thread slot. It is acquired eagerly with a compare-and-swap
//!   at a transaction's first write to the stripe, and simply overwritten
//!   with `0` on release (only the owner releases it).
//! * the **read lock** (`r-lock`) stores the stripe's version number
//!   shifted left by one (so its least-significant bit is `0`) when
//!   unlocked, and the value `1` while the owning writer is committing.
//!   Only the transaction holding the corresponding write lock ever locks
//!   the read lock, so no compare-and-swap is needed.

use stm_core::sync::{AtomicU64, Ordering};

use stm_core::clock::ThreadSlot;

/// Value of an unlocked write lock.
const W_UNLOCKED: u64 = 0;
/// Value of a locked read lock.
const R_LOCKED: u64 = 1;

/// Decoded state of a stripe's write lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteLockState {
    /// Nobody owns the stripe.
    Unlocked,
    /// The stripe is owned by the transaction running on this thread slot.
    LockedBy(ThreadSlot),
}

/// Decoded state of a stripe's read lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadLockState {
    /// The stripe is not being committed; `version` is its current version.
    Unlocked {
        /// Commit timestamp of the last committed writer of the stripe.
        version: u64,
    },
    /// The owning writer is committing the stripe right now.
    Locked,
}

/// One lock-table entry: the pair of locks guarding a stripe of heap words.
#[derive(Debug, Default)]
pub struct StripeEntry {
    w_lock: AtomicU64,
    r_lock: AtomicU64,
}

impl StripeEntry {
    /// Encodes a thread slot as a write-lock owner tag.
    #[inline]
    fn owner_tag(slot: ThreadSlot) -> u64 {
        slot.index() as u64 + 1
    }

    /// Current state of the write lock.
    #[inline]
    pub fn write_lock(&self) -> WriteLockState {
        // sync: Acquire so a transaction that sees an owner tag also sees
        // that owner's descriptor state (pairs with try_acquire_write).
        match self.w_lock.load(Ordering::Acquire) {
            W_UNLOCKED => WriteLockState::Unlocked,
            tag => WriteLockState::LockedBy(ThreadSlot::new((tag - 1) as usize)),
        }
    }

    /// Returns `true` if the write lock is held by `slot`.
    #[inline]
    pub fn is_write_locked_by(&self, slot: ThreadSlot) -> bool {
        // sync: Acquire, same edge as write_lock().
        self.w_lock.load(Ordering::Acquire) == Self::owner_tag(slot)
    }

    /// Attempts to acquire the write lock for `slot`. Returns `true` on
    /// success.
    #[inline]
    pub fn try_acquire_write(&self, slot: ThreadSlot) -> bool {
        self.w_lock
            .compare_exchange(
                W_UNLOCKED,
                Self::owner_tag(slot),
                // sync: AcqRel on success — Acquire orders the new owner
                // after the previous owner's release, Release publishes the
                // ownership to conflicting readers/writers; Acquire on
                // failure because the loser inspects the winner's tag to
                // pick a contention-management victim.
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Releases the write lock. Only the owner may call this.
    #[inline]
    pub fn release_write(&self) {
        // sync: Release so the next acquirer (Acquire CAS) sees the
        // owner's write-back/rollback stores before the lock reads as free.
        self.w_lock.store(W_UNLOCKED, Ordering::Release);
    }

    /// Current state of the read lock.
    #[inline]
    pub fn read_lock(&self) -> ReadLockState {
        // sync: Acquire pairs with publish_version's Release — a reader
        // that observes version v also observes the write-back that v
        // stamps (validation correctness; model-checked in stm-model-tests).
        let raw = self.r_lock.load(Ordering::Acquire);
        if raw & 1 == R_LOCKED {
            ReadLockState::Locked
        } else {
            ReadLockState::Unlocked { version: raw >> 1 }
        }
    }

    /// Raw read-lock word (used by the read-word consistency loop, which
    /// needs to compare two samples for equality regardless of state).
    #[inline]
    pub fn read_lock_raw(&self) -> u64 {
        // sync: Acquire, same edge as read_lock().
        self.r_lock.load(Ordering::Acquire)
    }

    /// Decodes a raw read-lock sample.
    #[inline]
    pub fn decode_read_lock(raw: u64) -> ReadLockState {
        if raw & 1 == R_LOCKED {
            ReadLockState::Locked
        } else {
            ReadLockState::Unlocked { version: raw >> 1 }
        }
    }

    /// Locks the read lock for commit. Only the write-lock owner may call
    /// this; plain stores suffice (paper §3.3).
    #[inline]
    pub fn lock_read(&self) {
        // sync: Release — only the write-lock owner stores here (no CAS
        // needed, paper §3.3); Release keeps the lock-read marker ordered
        // after the owner's prior stores for readers that spin on it.
        self.r_lock.store(R_LOCKED, Ordering::Release);
    }

    /// Restores the read lock to a previously observed version (used when
    /// commit-time validation fails).
    #[inline]
    pub fn restore_read_version(&self, version: u64) {
        // sync: Release — restores the pre-commit version; readers that
        // see it proceed exactly as before the aborted commit.
        self.r_lock.store(version << 1, Ordering::Release);
    }

    /// Publishes a new version (the committing transaction's timestamp) and
    /// thereby unlocks the read lock.
    #[inline]
    pub fn publish_version(&self, version: u64) {
        // sync: Release publishes the committed write-back before the new
        // version becomes visible (pairs with read_lock's Acquire).
        self.r_lock.store(version << 1, Ordering::Release);
    }

    /// Convenience: the current version if unlocked.
    #[inline]
    pub fn version(&self) -> Option<u64> {
        match self.read_lock() {
            ReadLockState::Unlocked { version } => Some(version),
            ReadLockState::Locked => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_entry_is_unlocked_with_version_zero() {
        let e = StripeEntry::default();
        assert_eq!(e.write_lock(), WriteLockState::Unlocked);
        assert_eq!(e.read_lock(), ReadLockState::Unlocked { version: 0 });
        assert_eq!(e.version(), Some(0));
    }

    #[test]
    fn write_lock_acquire_release() {
        let e = StripeEntry::default();
        let a = ThreadSlot::new(0);
        let b = ThreadSlot::new(1);
        assert!(e.try_acquire_write(a));
        assert!(e.is_write_locked_by(a));
        assert!(!e.is_write_locked_by(b));
        assert_eq!(e.write_lock(), WriteLockState::LockedBy(a));
        // Second acquisition fails until released.
        assert!(!e.try_acquire_write(b));
        e.release_write();
        assert!(e.try_acquire_write(b));
        assert_eq!(e.write_lock(), WriteLockState::LockedBy(b));
    }

    #[test]
    fn read_lock_version_cycle() {
        let e = StripeEntry::default();
        e.lock_read();
        assert_eq!(e.read_lock(), ReadLockState::Locked);
        assert_eq!(e.version(), None);
        e.publish_version(7);
        assert_eq!(e.read_lock(), ReadLockState::Unlocked { version: 7 });
        e.lock_read();
        e.restore_read_version(7);
        assert_eq!(e.version(), Some(7));
    }

    #[test]
    fn decode_matches_raw_samples() {
        let e = StripeEntry::default();
        e.publish_version(42);
        let raw = e.read_lock_raw();
        assert_eq!(
            StripeEntry::decode_read_lock(raw),
            ReadLockState::Unlocked { version: 42 }
        );
        e.lock_read();
        assert_eq!(
            StripeEntry::decode_read_lock(e.read_lock_raw()),
            ReadLockState::Locked
        );
    }

    #[test]
    fn owner_tags_distinguish_slots() {
        let e = StripeEntry::default();
        assert!(e.try_acquire_write(ThreadSlot::new(5)));
        assert_eq!(e.write_lock(), WriteLockState::LockedBy(ThreadSlot::new(5)));
        assert!(!e.is_write_locked_by(ThreadSlot::new(4)));
    }
}
