//! The SwissTM algorithm (paper Algorithm 1) on top of `stm-core`.

use std::sync::Arc;

use stm_core::clock::{ThreadRegistry, ThreadSlot, TxClock, TxShared};
use stm_core::cm::{CmHandle, ContentionManager, Resolution, TwoPhase};
use stm_core::config::StmConfig;
use stm_core::error::{Abort, TxResult};
use stm_core::heap::TmHeap;
use stm_core::locktable::LockTable;
use stm_core::logs::{ReadEntry, ReadLog, WriteLog};
use stm_core::telemetry::{self, ConflictSite, WaitTimer};
use stm_core::tm::{DescriptorCore, TmAlgorithm, TxDescriptor};
use stm_core::word::{Addr, Word};

use crate::entry::{ReadLockState, StripeEntry, WriteLockState};

/// Builder for [`SwissTm`] instances.
///
/// The defaults reproduce the paper's configuration: a 2^22-entry lock
/// table with 16-byte stripes and the two-phase contention manager with
/// `Wn = 10` and randomized linear back-off. The builder exists so the
/// dissection experiments (Figures 10–13, Tables 1–2) can swap the
/// contention manager and the stripe granularity.
#[derive(Debug)]
pub struct SwissTmBuilder {
    config: StmConfig,
    cm: Option<CmHandle>,
}

impl SwissTmBuilder {
    /// Starts a builder with the paper's defaults and a benchmark-sized
    /// heap.
    pub fn new() -> Self {
        SwissTmBuilder {
            config: StmConfig::benchmark(),
            cm: None,
        }
    }

    /// Sets the heap and lock-table configuration.
    pub fn config(mut self, config: StmConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the contention manager (default: [`TwoPhase`]).
    pub fn contention_manager(mut self, cm: CmHandle) -> Self {
        self.cm = Some(cm);
        self
    }

    /// Builds the STM instance.
    pub fn build(self) -> SwissTm {
        let cm = self.cm.unwrap_or_else(|| Arc::new(TwoPhase::new()));
        SwissTm {
            heap: TmHeap::new(self.config.heap),
            registry: ThreadRegistry::new(),
            lock_table: LockTable::new(self.config.lock_table),
            commit_ts: TxClock::new(self.config.clock),
            cm,
        }
    }
}

impl Default for SwissTmBuilder {
    fn default() -> Self {
        SwissTmBuilder::new()
    }
}

/// The SwissTM software transactional memory.
///
/// See the crate-level documentation for the algorithm overview; the
/// methods of [`TmAlgorithm`] map one-to-one onto the paper's pseudo-code
/// functions (`start`, `read-word`, `write-word`, `commit`, `rollback`,
/// `validate`, `extend`).
pub struct SwissTm {
    heap: TmHeap,
    registry: ThreadRegistry,
    lock_table: LockTable<StripeEntry>,
    commit_ts: TxClock,
    cm: CmHandle,
}

impl std::fmt::Debug for SwissTm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwissTm")
            .field("lock_table_entries", &self.lock_table.len())
            .field("grain_shift", &self.lock_table.grain_shift())
            .field("commit_ts", &self.commit_ts.read())
            .field("cm", &self.cm.name())
            .finish()
    }
}

impl SwissTm {
    /// Creates an instance with the paper's default configuration and a
    /// benchmark-sized heap.
    pub fn new() -> Self {
        SwissTmBuilder::new().build()
    }

    /// Creates an instance with an explicit configuration.
    pub fn with_config(config: StmConfig) -> Self {
        SwissTmBuilder::new().config(config).build()
    }

    /// Returns a builder for customised instances.
    pub fn builder() -> SwissTmBuilder {
        SwissTmBuilder::new()
    }

    /// Current value of the global commit counter.
    pub fn commit_timestamp(&self) -> u64 {
        self.commit_ts.read()
    }

    /// The configured commit-clock mode.
    pub fn clock_mode(&self) -> stm_core::config::ClockMode {
        self.commit_ts.mode()
    }

    /// The lock-table stripe granularity (log2 words per stripe).
    pub fn grain_shift(&self) -> u32 {
        self.lock_table.grain_shift()
    }

    /// The lock table, exposed for diagnostics and for deterministic
    /// conflict rigs that stage stuck locks (see
    /// `stm_core::testkit::RecordingCm`). Application code never needs it.
    pub fn lock_table(&self) -> &LockTable<StripeEntry> {
        &self.lock_table
    }

    fn shared_of(&self, slot: ThreadSlot) -> &Arc<TxShared> {
        self.registry.shared(slot)
    }

    /// `validate` (paper lines 50–53) over a slice of read-log entries:
    /// every entry must still carry the version it had when first read. A
    /// mismatch is benign only for a stripe whose write lock we hold *and*
    /// whose read-lock version at acquisition time equals the version the
    /// read observed — i.e. nothing committed between our read and our
    /// acquisition (the read lock is locked by us during commit, so the raw
    /// word cannot match then). The acquired-stripe lookup is O(1) via the
    /// write log's stripe set, so validation is linear in the number of
    /// checked entries, not O(entries × write-set).
    fn entries_valid(&self, write_log: &WriteLog, entries: &[ReadEntry]) -> bool {
        for entry in entries {
            let stripe = self.lock_table.entry_at(entry.lock_index);
            let current = stripe.read_lock_raw();
            if current == entry.version << 1 {
                continue;
            }
            match write_log.stripe_version(entry.lock_index) {
                Some(version) if version == entry.version => {}
                _ => return false,
            }
        }
        true
    }

    /// Full read-set validation (used by the commit path).
    fn validate(&self, desc: &SwissDescriptor) -> bool {
        self.entries_valid(&desc.write_log, desc.read_log.entries())
    }

    /// `extend` (paper lines 54–57): re-validate and, on success, advance
    /// the transaction's validity timestamp to the current commit counter.
    /// [`ReadLog::extend_with`] orders the work — fresh suffix first, then
    /// the opacity-mandated re-confirmation of the validated prefix.
    fn extend(&self, desc: &mut SwissDescriptor) -> bool {
        let ts = self.commit_ts.read();
        let write_log = &desc.write_log;
        if !desc
            .read_log
            .extend_with(|entries| self.entries_valid(write_log, entries))
        {
            return false;
        }
        desc.valid_ts = ts;
        true
    }

    /// Releases all acquired write locks (paper `rollback`, lines 46–49,
    /// minus the contention-manager hook which the driver invokes). The
    /// stripe records themselves are cleared with the write log by the
    /// caller.
    fn release_write_locks(&self, desc: &mut SwissDescriptor) {
        for stripe in desc.write_log.stripes() {
            self.lock_table.entry_at(stripe.lock_index).release_write();
        }
    }

    fn doom(&self, desc: &mut SwissDescriptor, abort: Abort) -> Abort {
        self.release_write_locks(desc);
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = true;
        abort
    }
}

impl Default for SwissTm {
    fn default() -> Self {
        SwissTm::new()
    }
}

/// Transaction descriptor of [`SwissTm`].
///
/// The stripes whose write lock the transaction holds — together with the
/// read-lock version observed at acquisition time (restored if commit-time
/// validation fails) — live in the write log's stripe set, which answers
/// ownership and version queries in O(1).
#[derive(Debug)]
pub struct SwissDescriptor {
    core: DescriptorCore,
    /// `tx.valid-ts`: value of the commit counter at start or last
    /// successful extension.
    valid_ts: u64,
    read_log: ReadLog,
    write_log: WriteLog,
    /// Set once an operation has aborted the attempt; subsequent operations
    /// fail fast until the driver restarts the transaction.
    doomed: bool,
}

impl TxDescriptor for SwissDescriptor {
    fn core(&self) -> &DescriptorCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut DescriptorCore {
        &mut self.core
    }

    fn is_read_only(&self) -> bool {
        self.write_log.is_empty()
    }
}

impl TmAlgorithm for SwissTm {
    type Descriptor = SwissDescriptor;

    fn name(&self) -> &'static str {
        "SwissTM"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn contention_manager(&self) -> &dyn ContentionManager {
        &*self.cm
    }

    fn create_descriptor(&self, slot: ThreadSlot) -> SwissDescriptor {
        SwissDescriptor {
            core: DescriptorCore::new(slot, Arc::clone(self.shared_of(slot))),
            valid_ts: 0,
            read_log: ReadLog::new(),
            write_log: WriteLog::new(),
            doomed: false,
        }
    }

    /// Paper `start` (lines 1–3): snapshot the commit counter and notify the
    /// contention manager.
    fn begin(&self, desc: &mut SwissDescriptor, is_restart: bool) {
        desc.core.reset_attempt();
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = false;
        desc.valid_ts = self.commit_ts.read();
        self.cm.on_start(&desc.core.shared, is_restart);
    }

    /// Paper `read-word` (lines 4–18).
    fn read(&self, desc: &mut SwissDescriptor, addr: Addr) -> TxResult<Word> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        desc.core.attempt_reads += 1;
        let lock_index = self.lock_table.index_of(addr);
        let stripe = self.lock_table.entry_at(lock_index);

        // Read-after-write: if we own the stripe's write lock, our write log
        // holds the latest value for addresses we wrote; other addresses of
        // the stripe cannot be modified concurrently, so the heap value is
        // safe to return directly.
        if stripe.is_write_locked_by(desc.core.slot) {
            if let Some(value) = desc.write_log.lookup(addr) {
                return Ok(value);
            }
            return Ok(self.heap.load(addr));
        }

        // Consistent (r-lock, value, r-lock) triple read: retry until the two
        // read-lock samples agree and are unlocked. The spin paths honour
        // remote abort requests — the stripe may be read-locked by a writer
        // that is itself waiting for *us* to abort, so spinning blindly
        // could ignore the contention manager's decision indefinitely.
        let (value, version) = loop {
            let first = stripe.read_lock_raw();
            if let ReadLockState::Locked = StripeEntry::decode_read_lock(first) {
                if desc.core.shared.abort_requested() {
                    return Err(self.doom(desc, Abort::REMOTE));
                }
                stm_core::sync::spin_loop();
                continue;
            }
            let value = self.heap.load(addr);
            let second = stripe.read_lock_raw();
            if first == second {
                break (value, first >> 1);
            }
            if desc.core.shared.abort_requested() {
                return Err(self.doom(desc, Abort::REMOTE));
            }
            stm_core::sync::spin_loop();
        };

        desc.read_log.push(lock_index, version);
        self.cm.on_read(&desc.core.shared, desc.read_log.len());

        if version > desc.valid_ts {
            // Fold the fresh version into a deferred clock before extending,
            // so the new snapshot reaches at least this stripe's version.
            self.commit_ts.observe(version);
            if !self.extend(desc) {
                return Err(self.doom(desc, Abort::READ_VALIDATION));
            }
        }
        Ok(value)
    }

    /// Paper `write-word` (lines 19–33).
    fn write(&self, desc: &mut SwissDescriptor, addr: Addr, value: Word) -> TxResult<()> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        desc.core.attempt_writes += 1;
        let lock_index = self.lock_table.index_of(addr);
        let stripe = self.lock_table.entry_at(lock_index);

        // Already own the stripe: just update the redo log.
        if stripe.is_write_locked_by(desc.core.slot) {
            desc.write_log.record(addr, value, lock_index, 0);
            return Ok(());
        }

        // Eager acquisition loop with contention management on write/write
        // conflicts. The wait timer starts lazily on the first contended
        // iteration (conflict-free writes never sample a clock) and records
        // the time spent in the loop on every exit path when it drops.
        let mut wait_timer: Option<WaitTimer> = None;
        loop {
            match stripe.write_lock() {
                WriteLockState::Unlocked => {
                    if stripe.try_acquire_write(desc.core.slot) {
                        break;
                    }
                }
                WriteLockState::LockedBy(owner_slot) => {
                    if owner_slot == desc.core.slot {
                        // We raced with ourselves (should not happen), treat
                        // as owned.
                        break;
                    }
                    if wait_timer.is_none() {
                        wait_timer = Some(WaitTimer::start(&desc.core.shared));
                    }
                    let owner = self.shared_of(owner_slot);
                    match telemetry::resolve_recorded(
                        &*self.cm,
                        &desc.core.shared,
                        owner,
                        ConflictSite::Write,
                    ) {
                        Resolution::AbortSelf => {
                            return Err(self.doom(desc, Abort::WRITE_CONFLICT));
                        }
                        Resolution::AbortOther | Resolution::Wait => {
                            stm_core::sync::spin_loop();
                        }
                    }
                    // Check whether somebody asked *us* to abort while we
                    // were fighting for the lock (deadlock avoidance between
                    // two second-phase transactions).
                    if desc.core.shared.abort_requested() {
                        return Err(self.doom(desc, Abort::REMOTE));
                    }
                }
            }
        }
        drop(wait_timer);

        // Acquired the stripe: remember the version for a potential restore
        // at commit time.
        let version = match stripe.read_lock() {
            ReadLockState::Unlocked { version } => version,
            // The previous owner unlocks the read lock before releasing the
            // write lock, so observing it locked here is impossible; be
            // conservative anyway. The write lock we just took is not yet in
            // the stripe set, so it must be released here or it would leak
            // past the rollback.
            ReadLockState::Locked => {
                stripe.release_write();
                return Err(self.doom(desc, Abort::WRITE_CONFLICT));
            }
        };
        desc.write_log.record_stripe(lock_index, version);
        desc.write_log.record(addr, value, lock_index, version);
        self.cm
            .on_write(&desc.core.shared, desc.write_log.stripe_count());

        // Preserve opacity: if the stripe moved past our snapshot we must be
        // able to extend, otherwise the transaction is inconsistent.
        if version > desc.valid_ts {
            self.commit_ts.observe(version);
            if !self.extend(desc) {
                return Err(self.doom(desc, Abort::READ_VALIDATION));
            }
        }
        Ok(())
    }

    /// Paper `commit` (lines 34–45).
    fn commit(&self, desc: &mut SwissDescriptor) -> TxResult<()> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        // Read-only transactions commit immediately: their read log is
        // guaranteed consistent by construction.
        if desc.write_log.is_empty() {
            desc.read_log.clear();
            return Ok(());
        }

        // Lock the read locks of every stripe we are about to update.
        for stripe in desc.write_log.stripes() {
            self.lock_table.entry_at(stripe.lock_index).lock_read();
        }

        // The stamp is taken after the read locks above are held: a
        // deferred clock's committer-side fence sits between those lock
        // stores and its clock read (see `TxClock`).
        let stamp = self.commit_ts.commit_stamp(desc.valid_ts);
        let ts = stamp.ts;

        if stamp.needs_validation() && !self.validate(desc) {
            // Restore read-lock versions, release write locks and abort.
            for stripe in desc.write_log.stripes() {
                self.lock_table
                    .entry_at(stripe.lock_index)
                    .restore_read_version(stripe.version);
            }
            return Err(self.doom(desc, Abort::READ_VALIDATION));
        }

        // Write back the redo log and publish the new version.
        for entry in desc.write_log.iter() {
            self.heap.store(entry.addr, entry.value);
        }
        for stripe in desc.write_log.stripes() {
            let entry = self.lock_table.entry_at(stripe.lock_index);
            entry.publish_version(ts);
            entry.release_write();
        }
        desc.read_log.clear();
        desc.write_log.clear();
        Ok(())
    }

    /// Paper `rollback` (lines 46–49). Idempotent: the driver may call it
    /// after an operation already cleaned up.
    fn rollback(&self, desc: &mut SwissDescriptor) {
        self.release_write_locks(desc);
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::config::{HeapConfig, LockTableConfig, StmConfig};
    use stm_core::tm::ThreadContext;

    fn small_stm() -> Arc<SwissTm> {
        Arc::new(SwissTm::with_config(StmConfig::small()))
    }

    #[test]
    fn read_your_own_writes() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(2).unwrap();
        let mut ctx = ThreadContext::register(stm);
        let observed = ctx
            .atomically(|tx| {
                tx.write(addr, 10)?;
                tx.write(addr.offset(1), 20)?;
                Ok((tx.read(addr)?, tx.read(addr.offset(1))?))
            })
            .unwrap();
        assert_eq!(observed, (10, 20));
    }

    #[test]
    fn committed_writes_are_visible_to_later_transactions() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        ctx.atomically(|tx| tx.write(addr, 99)).unwrap();
        let mut ctx2 = ThreadContext::register(stm);
        assert_eq!(ctx2.read_word(addr).unwrap(), 99);
    }

    #[test]
    fn aborted_writes_leave_no_trace() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(2);
        let _ = ctx.atomically(|tx| {
            tx.write(addr, 1234)?;
            tx.retry::<()>()
        });
        assert_eq!(stm.heap().load(addr), 0);
        // The stripe's write lock must have been released.
        let mut ctx2 = ThreadContext::register(stm);
        ctx2.atomically(|tx| tx.write(addr, 5)).unwrap();
        assert_eq!(ctx2.read_word(addr).unwrap(), 5);
    }

    #[test]
    fn commit_timestamp_advances_only_for_updates() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        let before = stm.commit_timestamp();
        ctx.atomically(|tx| tx.read(addr)).unwrap();
        assert_eq!(stm.commit_timestamp(), before);
        ctx.atomically(|tx| tx.write(addr, 1)).unwrap();
        assert_eq!(stm.commit_timestamp(), before + 1);
    }

    #[test]
    fn counter_is_consistent_under_concurrency() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let threads = 4;
        let increments = 500;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for _ in 0..increments {
                        ctx.atomically(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stm.heap().load(addr), (threads * increments) as u64);
    }

    #[test]
    fn disjoint_writers_commit_without_interference() {
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        // Allocate addresses far apart so they hit different stripes.
        let a = stm.heap().alloc_zeroed(64).unwrap();
        let b = stm.heap().alloc_zeroed(64).unwrap();
        let s1 = Arc::clone(&stm);
        let s2 = Arc::clone(&stm);
        let t1 = std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(s1);
            for i in 0..200 {
                ctx.atomically(|tx| tx.write(a, i)).unwrap();
            }
        });
        let t2 = std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(s2);
            for i in 0..200 {
                ctx.atomically(|tx| tx.write(b.offset(63), i)).unwrap();
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(stm.heap().load(a), 199);
        assert_eq!(stm.heap().load(b.offset(63)), 199);
    }

    #[test]
    fn money_transfer_preserves_the_total() {
        // The classic opacity/atomicity smoke test: concurrent transfers
        // between accounts never create or destroy money.
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let accounts = 8usize;
        let base = stm.heap().alloc_zeroed(accounts).unwrap();
        let initial = 1000u64;
        for i in 0..accounts {
            stm.heap().store(base.offset(i), initial);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    let mut rng = stm_core::backoff::FastRng::new(t as u64 + 1);
                    for _ in 0..500 {
                        let from = rng.next_below(accounts as u64) as usize;
                        let to = rng.next_below(accounts as u64) as usize;
                        ctx.atomically(|tx| {
                            let f = tx.read(base.offset(from))?;
                            let t_balance = tx.read(base.offset(to))?;
                            if from != to && f >= 10 {
                                tx.write(base.offset(from), f - 10)?;
                                tx.write(base.offset(to), t_balance + 10)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..accounts).map(|i| stm.heap().load(base.offset(i))).sum();
        assert_eq!(total, initial * accounts as u64);
    }

    #[test]
    fn reader_spinning_on_locked_stripe_honours_remote_abort() {
        // Regression test: a reader spinning in the consistent-read loop on
        // a read-locked stripe must notice a remote abort request instead of
        // spinning until the lock is released.
        let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        // Simulate a writer stuck mid-commit: the stripe's read lock stays
        // locked for the whole test.
        stm.lock_table.entry(addr).lock_read();

        let reader_stm = Arc::clone(&stm);
        let reader = std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(reader_stm).with_retry_budget(3);
            ctx.atomically(|tx| tx.read(addr))
        });
        // Keep requesting an abort (each attempt clears the flag) until the
        // reader gives up its retry budget. Without the abort check in the
        // read loop this never happens and the test hangs.
        while !reader.is_finished() {
            for shared in stm.registry().iter_registered() {
                shared.request_abort();
            }
            std::thread::yield_now();
        }
        let result = reader.join().unwrap();
        assert!(matches!(
            result,
            Err(stm_core::error::StmError::RetryBudgetExhausted { attempts: 3 })
        ));
        stm.lock_table.entry(addr).publish_version(0);
    }

    #[test]
    fn builder_respects_grain_shift() {
        let stm = SwissTm::builder()
            .config(
                StmConfig::small().with_lock_table(LockTableConfig::small().with_grain_shift(4)),
            )
            .build();
        assert_eq!(stm.grain_shift(), 4);
    }

    #[test]
    fn custom_contention_manager_is_used() {
        let stm = SwissTm::builder()
            .config(StmConfig::small())
            .contention_manager(Arc::new(stm_core::cm::Timid::new()))
            .build();
        assert_eq!(stm.contention_manager().name(), "timid");
        assert_eq!(
            SwissTm::with_config(StmConfig::small())
                .contention_manager()
                .name(),
            "two-phase"
        );
    }

    #[test]
    fn debug_output_mentions_algorithm_state() {
        let stm = SwissTm::with_config(StmConfig::small().with_heap(HeapConfig::small()));
        let dbg = format!("{stm:?}");
        assert!(dbg.contains("SwissTm"));
        assert!(dbg.contains("cm"));
    }
}
