//! # TL2 baseline
//!
//! A reproduction of **Transactional Locking II** (Dice, Shalev and Shavit,
//! DISC 2006), the lazy, commit-time-locking, word-based STM the paper uses
//! as its "pure lazy" baseline.
//!
//! Key properties (paper §2.1 and §5):
//!
//! * **Lazy acquisition / commit-time locking.** Writes are buffered in a
//!   redo log; the per-stripe versioned locks are only acquired during
//!   commit. Write/write conflicts are therefore detected *late*, which is
//!   exactly the behaviour the paper criticises for long transactions
//!   (work performed after the conflict materialises is wasted).
//! * **Invisible reads with a global version clock.** A transaction samples
//!   the global clock at start (`rv`); every read checks that the stripe's
//!   version is not newer than `rv` and that the stripe is unlocked,
//!   otherwise the transaction aborts (original TL2 does not extend its
//!   snapshot).
//! * **Timid contention management.** On any conflict the transaction
//!   aborts itself, optionally after a short back-off.
//!
//! The implementation is generic over the contention manager so the
//! dissection experiments can plug other policies, but the default is the
//! paper's (timid).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use stm_core::prelude::*;
//! use tl2::Tl2;
//!
//! let stm = Arc::new(Tl2::with_config(stm_core::config::StmConfig::small()));
//! let cell = stm.heap().alloc_zeroed(1).unwrap();
//! let mut ctx = ThreadContext::register(stm);
//! ctx.atomically(|tx| tx.write(cell, 5)).unwrap();
//! assert_eq!(ctx.read_word(cell).unwrap(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use stm_core::sync::{AtomicU64, Ordering};

use stm_core::clock::{ThreadRegistry, ThreadSlot, TxClock, TxShared};
use stm_core::cm::{CmHandle, ContentionManager, Resolution, Timid};
use stm_core::config::StmConfig;
use stm_core::error::{Abort, TxResult};
use stm_core::heap::TmHeap;
use stm_core::locktable::LockTable;
use stm_core::logs::{ReadLog, StripeSet, WriteLog};
use stm_core::telemetry::{self, ConflictSite, WaitTimer};
use stm_core::tm::{DescriptorCore, TmAlgorithm, TxDescriptor};
use stm_core::word::{Addr, Word};

/// A TL2 versioned lock: `version << 1` when free, `owner_tag << 1 | 1`
/// while held during a commit.
#[derive(Debug, Default)]
pub struct VersionedLock {
    word: AtomicU64,
}

/// Decoded state of a [`VersionedLock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockState {
    /// The stripe is unlocked; `version` is its current version.
    Free {
        /// Commit timestamp of the stripe's last writer.
        version: u64,
    },
    /// The stripe is locked by the transaction on `owner`.
    Held {
        /// Slot of the owning thread.
        owner: ThreadSlot,
    },
}

impl VersionedLock {
    #[inline]
    fn owner_tag(slot: ThreadSlot) -> u64 {
        ((slot.index() as u64) + 1) << 1 | 1
    }

    /// Raw sample of the lock word.
    #[inline]
    pub fn sample(&self) -> u64 {
        // sync: Acquire pairs with publish()'s Release — a transaction that
        // validates against version v also sees the write-back v stamps.
        self.word.load(Ordering::Acquire)
    }

    /// Decodes a raw sample.
    #[inline]
    pub fn decode(raw: u64) -> LockState {
        if raw & 1 == 1 {
            LockState::Held {
                owner: ThreadSlot::new(((raw >> 1) - 1) as usize),
            }
        } else {
            LockState::Free { version: raw >> 1 }
        }
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> LockState {
        Self::decode(self.sample())
    }

    /// Tries to lock the stripe for `slot`, expecting the currently observed
    /// free `version`. Returns `true` on success.
    #[inline]
    pub fn try_lock(&self, slot: ThreadSlot, version: u64) -> bool {
        self.word
            .compare_exchange(
                version << 1,
                Self::owner_tag(slot),
                // sync: AcqRel on success — Acquire orders the new owner
                // after the previous release, Release publishes ownership to
                // conflicting transactions; Acquire on failure because the
                // loser decodes the winner's tag for contention management.
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Unlocks, restoring the pre-lock version (commit failed).
    #[inline]
    pub fn restore(&self, version: u64) {
        // sync: Release — only the owner stores here; the restored version
        // must not be visible before the owner's rollback stores.
        self.word.store(version << 1, Ordering::Release);
    }

    /// Unlocks, publishing a new version (commit succeeded).
    #[inline]
    pub fn publish(&self, version: u64) {
        // sync: Release publishes the committed write-back before the new
        // version becomes visible (pairs with sample()'s Acquire).
        self.word.store(version << 1, Ordering::Release);
    }
}

/// Transaction descriptor of [`Tl2`].
#[derive(Debug)]
pub struct Tl2Descriptor {
    core: DescriptorCore,
    /// Read version: global-clock sample taken at transaction start.
    rv: u64,
    read_log: ReadLog,
    write_log: WriteLog,
    /// Stripes locked during the current commit attempt, with the version to
    /// restore on failure (O(1) lookup during read-set validation).
    commit_locked: StripeSet,
    /// Reusable scratch buffer holding the write-set stripes in the global
    /// acquisition order used by commit (sorted to avoid deadlocks between
    /// concurrent committers).
    commit_order: Vec<usize>,
    doomed: bool,
}

impl TxDescriptor for Tl2Descriptor {
    fn core(&self) -> &DescriptorCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut DescriptorCore {
        &mut self.core
    }

    fn is_read_only(&self) -> bool {
        self.write_log.is_empty()
    }
}

/// Builder for [`Tl2`] instances.
#[derive(Debug)]
pub struct Tl2Builder {
    config: StmConfig,
    cm: Option<CmHandle>,
}

impl Tl2Builder {
    /// Starts a builder with the default (paper) configuration.
    pub fn new() -> Self {
        Tl2Builder {
            config: StmConfig::benchmark(),
            cm: None,
        }
    }

    /// Sets the heap and lock-table configuration.
    pub fn config(mut self, config: StmConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the contention manager (default: [`Timid`]).
    pub fn contention_manager(mut self, cm: CmHandle) -> Self {
        self.cm = Some(cm);
        self
    }

    /// Builds the STM instance.
    pub fn build(self) -> Tl2 {
        Tl2 {
            heap: TmHeap::new(self.config.heap),
            registry: ThreadRegistry::new(),
            lock_table: LockTable::new(self.config.lock_table),
            clock: TxClock::new(self.config.clock),
            cm: self.cm.unwrap_or_else(|| Arc::new(Timid::new())),
        }
    }
}

impl Default for Tl2Builder {
    fn default() -> Self {
        Tl2Builder::new()
    }
}

/// The TL2 software transactional memory (lazy / commit-time locking).
pub struct Tl2 {
    heap: TmHeap,
    registry: ThreadRegistry,
    lock_table: LockTable<VersionedLock>,
    clock: TxClock,
    cm: CmHandle,
}

impl std::fmt::Debug for Tl2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tl2")
            .field("lock_table_entries", &self.lock_table.len())
            .field("clock", &self.clock.read())
            .field("cm", &self.cm.name())
            .finish()
    }
}

impl Tl2 {
    /// Creates an instance with the benchmark configuration.
    pub fn new() -> Self {
        Tl2Builder::new().build()
    }

    /// Creates an instance with an explicit configuration.
    pub fn with_config(config: StmConfig) -> Self {
        Tl2Builder::new().config(config).build()
    }

    /// Returns a builder for customised instances.
    pub fn builder() -> Tl2Builder {
        Tl2Builder::new()
    }

    /// The lock table, exposed for diagnostics and for deterministic
    /// conflict rigs that stage stuck locks (see
    /// `stm_core::testkit::RecordingCm`). Application code never needs it.
    pub fn lock_table(&self) -> &LockTable<VersionedLock> {
        &self.lock_table
    }

    /// Current value of the global version clock.
    pub fn clock_value(&self) -> u64 {
        self.clock.read()
    }

    /// The configured commit-clock mode.
    pub fn clock_mode(&self) -> stm_core::config::ClockMode {
        self.clock.mode()
    }

    fn shared_of(&self, slot: ThreadSlot) -> &Arc<TxShared> {
        self.registry.shared(slot)
    }

    /// Validates the read set: every read stripe must be free (or locked by
    /// this transaction during commit) with a version not newer than the
    /// transaction's read version.
    fn validate(&self, desc: &Tl2Descriptor) -> bool {
        for entry in desc.read_log.iter() {
            let lock = self.lock_table.entry_at(entry.lock_index);
            match lock.state() {
                LockState::Free { version } => {
                    if version > desc.rv {
                        // Classic GV5 catch-up: fold the too-new version
                        // into a deferred clock so the retry's snapshot
                        // covers it (no-op for the strict clock).
                        self.clock.observe(version);
                        return false;
                    }
                }
                LockState::Held { owner } => {
                    if owner != desc.core.slot {
                        return false;
                    }
                    // We locked the stripe during this commit; the version it
                    // carried just before we locked it must still be covered
                    // by our read version, otherwise another transaction
                    // committed it after our snapshot.
                    match desc.commit_locked.version_of(entry.lock_index) {
                        Some(version) if version <= desc.rv => {}
                        _ => return false,
                    }
                }
            }
        }
        true
    }

    fn release_commit_locks(&self, desc: &mut Tl2Descriptor) {
        for stripe in desc.commit_locked.iter() {
            self.lock_table
                .entry_at(stripe.lock_index)
                .restore(stripe.version);
        }
        desc.commit_locked.clear();
    }

    /// Locks every stripe in `order` for the committing transaction,
    /// consulting the contention manager on conflicts. Successfully locked
    /// stripes are recorded in `commit_locked` (with their pre-lock version)
    /// so the caller can release them on any failure path.
    fn lock_write_set(&self, desc: &mut Tl2Descriptor, order: &[usize]) -> TxResult<()> {
        for &lock_index in order {
            let lock = self.lock_table.entry_at(lock_index);
            // Per-stripe lazily started wait timer, scoped exactly like the
            // encounter-time STMs' timers: it covers one conflict episode
            // (first contended attempt until this stripe is resolved either
            // way) and drops at the end of the stripe's iteration, so
            // uncontended acquisitions of the remaining write set are never
            // billed as CM wait time.
            let mut wait_timer: Option<WaitTimer> = None;
            loop {
                match lock.state() {
                    LockState::Free { version } => {
                        if lock.try_lock(desc.core.slot, version) {
                            desc.commit_locked.insert(lock_index, version);
                            break;
                        }
                    }
                    LockState::Held { owner } => {
                        if owner == desc.core.slot {
                            break;
                        }
                        if wait_timer.is_none() {
                            wait_timer = Some(WaitTimer::start(&desc.core.shared));
                        }
                        match telemetry::resolve_recorded(
                            &*self.cm,
                            &desc.core.shared,
                            self.shared_of(owner),
                            ConflictSite::Commit,
                        ) {
                            Resolution::AbortSelf => {
                                return Err(Abort::WRITE_CONFLICT);
                            }
                            Resolution::AbortOther | Resolution::Wait => {
                                stm_core::sync::spin_loop()
                            }
                        }
                        if desc.core.shared.abort_requested() {
                            return Err(Abort::REMOTE);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn doom(&self, desc: &mut Tl2Descriptor, abort: Abort) -> Abort {
        self.release_commit_locks(desc);
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = true;
        abort
    }
}

impl Default for Tl2 {
    fn default() -> Self {
        Tl2::new()
    }
}

impl TmAlgorithm for Tl2 {
    type Descriptor = Tl2Descriptor;

    fn name(&self) -> &'static str {
        "TL2"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn contention_manager(&self) -> &dyn ContentionManager {
        &*self.cm
    }

    fn create_descriptor(&self, slot: ThreadSlot) -> Tl2Descriptor {
        Tl2Descriptor {
            core: DescriptorCore::new(slot, Arc::clone(self.shared_of(slot))),
            rv: 0,
            read_log: ReadLog::new(),
            write_log: WriteLog::new(),
            commit_locked: StripeSet::new(),
            commit_order: Vec::with_capacity(16),
            doomed: false,
        }
    }

    fn begin(&self, desc: &mut Tl2Descriptor, is_restart: bool) {
        desc.core.reset_attempt();
        desc.read_log.clear();
        desc.write_log.clear();
        desc.commit_locked.clear();
        desc.doomed = false;
        desc.rv = self.clock.read();
        self.cm.on_start(&desc.core.shared, is_restart);
    }

    fn read(&self, desc: &mut Tl2Descriptor, addr: Addr) -> TxResult<Word> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        desc.core.attempt_reads += 1;

        // Read-after-write from the redo log.
        if let Some(value) = desc.write_log.lookup(addr) {
            return Ok(value);
        }

        let lock_index = self.lock_table.index_of(addr);
        let lock = self.lock_table.entry_at(lock_index);

        // Post-validated read: sample the lock, read the value, sample
        // again; the stripe must be free, unchanged and not newer than rv.
        let pre = lock.sample();
        let value = self.heap.load(addr);
        let post = lock.sample();
        let version = match VersionedLock::decode(post) {
            LockState::Free { version } => version,
            LockState::Held { .. } => {
                return Err(self.doom(desc, Abort::READ_LOCKED));
            }
        };
        if pre != post || version > desc.rv {
            // GV5 catch-up before aborting, so the retry starts with a
            // snapshot that covers the version we just tripped over.
            self.clock.observe(version);
            return Err(self.doom(desc, Abort::READ_VALIDATION));
        }

        desc.read_log.push(lock_index, version);
        self.cm.on_read(&desc.core.shared, desc.read_log.len());
        Ok(value)
    }

    fn write(&self, desc: &mut Tl2Descriptor, addr: Addr, value: Word) -> TxResult<()> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        desc.core.attempt_writes += 1;
        // Lazy acquisition: just buffer the write. The stripe set gives the
        // commit path the distinct write-set stripes without a sort+dedup
        // pass over the whole redo log.
        let lock_index = self.lock_table.index_of(addr);
        desc.write_log.record_stripe(lock_index, 0);
        desc.write_log.record(addr, value, lock_index, 0);
        self.cm.on_write(&desc.core.shared, desc.write_log.len());
        Ok(())
    }

    fn commit(&self, desc: &mut Tl2Descriptor) -> TxResult<()> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        if desc.write_log.is_empty() {
            desc.read_log.clear();
            return Ok(());
        }

        // Acquire every write-set stripe (commit-time locking). Write/write
        // conflicts surface only here — the "lazy" behaviour the paper
        // dissects in Figure 6a. The stripes are already distinct (tracked
        // by the write log's stripe set); only the deadlock-avoidance sort
        // remains, on a scratch buffer reused across commits.
        let mut order = std::mem::take(&mut desc.commit_order);
        desc.write_log.sorted_stripe_indices(&mut order);
        let locked = self.lock_write_set(desc, &order);
        desc.commit_order = order;
        if let Err(abort) = locked {
            return Err(self.doom(desc, abort));
        }

        // Stamped after the write set is locked: a deferred clock's
        // committer-side fence sits between the lock stores above and its
        // clock read (see `TxClock`).
        let stamp = self.clock.commit_stamp(desc.rv);
        let wv = stamp.ts;

        // Validate the read set unless nothing could have changed.
        if stamp.needs_validation() && !self.validate(desc) {
            return Err(self.doom(desc, Abort::READ_VALIDATION));
        }

        // Write back and release with the new version.
        for entry in desc.write_log.iter() {
            self.heap.store(entry.addr, entry.value);
        }
        for stripe in desc.commit_locked.iter() {
            self.lock_table.entry_at(stripe.lock_index).publish(wv);
        }
        desc.commit_locked.clear();
        desc.read_log.clear();
        desc.write_log.clear();
        Ok(())
    }

    fn rollback(&self, desc: &mut Tl2Descriptor) {
        self.release_commit_locks(desc);
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::config::StmConfig;
    use stm_core::tm::ThreadContext;

    fn small_stm() -> Arc<Tl2> {
        Arc::new(Tl2::with_config(StmConfig::small()))
    }

    #[test]
    fn read_your_own_writes() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(stm);
        let v = ctx
            .atomically(|tx| {
                tx.write(addr, 7)?;
                tx.read(addr)
            })
            .unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn writes_are_invisible_until_commit() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let heap_view = Arc::clone(&stm);
        let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
        let _ = ctx.atomically(|tx| {
            tx.write(addr, 55)?;
            // Lazy STM: nothing is locked, nothing is written yet.
            assert_eq!(heap_view.heap().load(addr), 0);
            tx.retry::<()>()
        });
        assert_eq!(stm.heap().load(addr), 0);
    }

    #[test]
    fn counter_is_consistent_under_concurrency() {
        let stm = Arc::new(Tl2::with_config(StmConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for _ in 0..500 {
                        ctx.atomically(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stm.heap().load(addr), 2000);
    }

    #[test]
    fn clock_advances_once_per_update_transaction() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        let before = stm.clock_value();
        ctx.atomically(|tx| tx.read(addr)).unwrap();
        assert_eq!(stm.clock_value(), before);
        ctx.atomically(|tx| tx.write(addr, 3)).unwrap();
        assert_eq!(stm.clock_value(), before + 1);
    }

    #[test]
    fn versioned_lock_encoding_round_trips() {
        let lock = VersionedLock::default();
        assert_eq!(lock.state(), LockState::Free { version: 0 });
        assert!(lock.try_lock(ThreadSlot::new(3), 0));
        assert_eq!(
            lock.state(),
            LockState::Held {
                owner: ThreadSlot::new(3)
            }
        );
        lock.publish(9);
        assert_eq!(lock.state(), LockState::Free { version: 9 });
        lock.restore(9);
        assert_eq!(lock.state(), LockState::Free { version: 9 });
    }

    #[test]
    fn try_lock_fails_on_stale_version() {
        let lock = VersionedLock::default();
        lock.publish(5);
        assert!(!lock.try_lock(ThreadSlot::new(0), 4));
        assert!(lock.try_lock(ThreadSlot::new(0), 5));
    }

    #[test]
    fn money_transfer_preserves_the_total() {
        let stm = Arc::new(Tl2::with_config(StmConfig::small()));
        let accounts = 8usize;
        let base = stm.heap().alloc_zeroed(accounts).unwrap();
        for i in 0..accounts {
            stm.heap().store(base.offset(i), 1000);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    let mut rng = stm_core::backoff::FastRng::new(t as u64 + 11);
                    for _ in 0..400 {
                        let from = rng.next_below(accounts as u64) as usize;
                        let to = rng.next_below(accounts as u64) as usize;
                        ctx.atomically(|tx| {
                            let f = tx.read(base.offset(from))?;
                            let t_bal = tx.read(base.offset(to))?;
                            if from != to && f >= 10 {
                                tx.write(base.offset(from), f - 10)?;
                                tx.write(base.offset(to), t_bal + 10)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..accounts).map(|i| stm.heap().load(base.offset(i))).sum();
        assert_eq!(total, 8000);
    }

    #[test]
    fn builder_accepts_custom_cm() {
        let stm = Tl2::builder()
            .config(StmConfig::small())
            .contention_manager(Arc::new(stm_core::cm::Greedy::new()))
            .build();
        assert_eq!(stm.contention_manager().name(), "greedy");
        assert_eq!(
            Tl2::with_config(StmConfig::small())
                .contention_manager()
                .name(),
            "timid"
        );
    }
}
