//! # TinySTM baseline
//!
//! A reproduction of **TinySTM** (Felber, Fetzer and Riegel, PPoPP 2008) in
//! its default *write-back, encounter-time locking* configuration — the
//! paper's "pure eager" word-based baseline.
//!
//! Key properties (paper §2.1 and §5):
//!
//! * **Encounter-time locking (eager acquisition).** A writer acquires the
//!   stripe's versioned lock at its *first* write, so write/write conflicts
//!   are detected immediately — the behaviour SwissTM keeps.
//! * **Eager read/write conflict detection.** A reader that encounters a
//!   stripe locked by another transaction aborts immediately (the paper's
//!   point 2 in the introduction: "read/write conflicts … are detected very
//!   early and resolved by aborting readers"). This is the behaviour
//!   SwissTM *relaxes* with its lazy read/write detection.
//! * **Time-based validation with snapshot extension** (the LSA scheme):
//!   reads are invisible and validated against a global clock, and the
//!   snapshot is extended when possible.
//! * **Timid contention management** with optional back-off.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use stm_core::prelude::*;
//! use tinystm::TinyStm;
//!
//! let stm = Arc::new(TinyStm::with_config(stm_core::config::StmConfig::small()));
//! let cell = stm.heap().alloc_zeroed(1).unwrap();
//! let mut ctx = ThreadContext::register(stm);
//! ctx.atomically(|tx| tx.write(cell, 9)).unwrap();
//! assert_eq!(ctx.read_word(cell).unwrap(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use stm_core::sync::{AtomicU64, Ordering};

use stm_core::clock::{ThreadRegistry, ThreadSlot, TxClock, TxShared};
use stm_core::cm::{CmHandle, ContentionManager, Resolution, Timid};
use stm_core::config::StmConfig;
use stm_core::error::{Abort, TxResult};
use stm_core::heap::TmHeap;
use stm_core::locktable::LockTable;
use stm_core::logs::{ReadEntry, ReadLog, WriteLog};
use stm_core::telemetry::{self, ConflictSite, WaitTimer};
use stm_core::tm::{DescriptorCore, TmAlgorithm, TxDescriptor};
use stm_core::word::{Addr, Word};

/// A TinySTM versioned lock: `version << 1` when free,
/// `(owner_slot + 1) << 1 | 1` when owned by a writer.
#[derive(Debug, Default)]
pub struct OwnedLock {
    word: AtomicU64,
}

/// Decoded state of an [`OwnedLock`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnedLockState {
    /// Unlocked; carries the stripe's current version.
    Free {
        /// Commit timestamp of the stripe's last writer.
        version: u64,
    },
    /// Owned by the writer running on `owner`.
    Owned {
        /// Slot of the owning thread.
        owner: ThreadSlot,
    },
}

impl OwnedLock {
    #[inline]
    fn owner_tag(slot: ThreadSlot) -> u64 {
        ((slot.index() as u64) + 1) << 1 | 1
    }

    /// Raw sample of the lock word.
    #[inline]
    pub fn sample(&self) -> u64 {
        // sync: Acquire pairs with publish()'s Release — a transaction that
        // validates against version v also sees the write-back v stamps.
        self.word.load(Ordering::Acquire)
    }

    /// Decodes a raw sample.
    #[inline]
    pub fn decode(raw: u64) -> OwnedLockState {
        if raw & 1 == 1 {
            OwnedLockState::Owned {
                owner: ThreadSlot::new(((raw >> 1) - 1) as usize),
            }
        } else {
            OwnedLockState::Free { version: raw >> 1 }
        }
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> OwnedLockState {
        Self::decode(self.sample())
    }

    /// Returns `true` if the lock is currently owned by `slot`.
    #[inline]
    pub fn is_owned_by(&self, slot: ThreadSlot) -> bool {
        self.sample() == Self::owner_tag(slot)
    }

    /// Tries to acquire the lock for `slot`, expecting free state with
    /// `version`.
    #[inline]
    pub fn try_acquire(&self, slot: ThreadSlot, version: u64) -> bool {
        self.word
            .compare_exchange(
                version << 1,
                Self::owner_tag(slot),
                // sync: AcqRel on success — Acquire orders the new owner
                // after the previous release, Release publishes ownership to
                // conflicting transactions; Acquire on failure because the
                // loser decodes the winner's tag for contention management.
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Releases the lock, restoring `version` (abort path).
    #[inline]
    pub fn restore(&self, version: u64) {
        // sync: Release — only the owner stores here; the restored version
        // must not be visible before the owner's rollback stores.
        self.word.store(version << 1, Ordering::Release);
    }

    /// Releases the lock, publishing a new `version` (commit path).
    #[inline]
    pub fn publish(&self, version: u64) {
        // sync: Release publishes the committed write-back before the new
        // version becomes visible (pairs with sample()'s Acquire).
        self.word.store(version << 1, Ordering::Release);
    }
}

/// Transaction descriptor of [`TinyStm`].
///
/// The stripes owned by the transaction — with the version to restore on
/// abort — live in the write log's stripe set, which answers ownership and
/// version queries in O(1).
#[derive(Debug)]
pub struct TinyDescriptor {
    core: DescriptorCore,
    /// Snapshot timestamp (start or last successful extension).
    valid_ts: u64,
    read_log: ReadLog,
    write_log: WriteLog,
    doomed: bool,
}

impl TxDescriptor for TinyDescriptor {
    fn core(&self) -> &DescriptorCore {
        &self.core
    }

    fn core_mut(&mut self) -> &mut DescriptorCore {
        &mut self.core
    }

    fn is_read_only(&self) -> bool {
        self.write_log.is_empty()
    }
}

/// Builder for [`TinyStm`] instances.
#[derive(Debug)]
pub struct TinyStmBuilder {
    config: StmConfig,
    cm: Option<CmHandle>,
}

impl TinyStmBuilder {
    /// Starts a builder with the default configuration.
    pub fn new() -> Self {
        TinyStmBuilder {
            config: StmConfig::benchmark(),
            cm: None,
        }
    }

    /// Sets the heap and lock-table configuration.
    pub fn config(mut self, config: StmConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the contention manager (default: [`Timid`]).
    pub fn contention_manager(mut self, cm: CmHandle) -> Self {
        self.cm = Some(cm);
        self
    }

    /// Builds the STM instance.
    pub fn build(self) -> TinyStm {
        TinyStm {
            heap: TmHeap::new(self.config.heap),
            registry: ThreadRegistry::new(),
            lock_table: LockTable::new(self.config.lock_table),
            clock: TxClock::new(self.config.clock),
            cm: self.cm.unwrap_or_else(|| Arc::new(Timid::new())),
        }
    }
}

impl Default for TinyStmBuilder {
    fn default() -> Self {
        TinyStmBuilder::new()
    }
}

/// The TinySTM software transactional memory (encounter-time locking).
pub struct TinyStm {
    heap: TmHeap,
    registry: ThreadRegistry,
    lock_table: LockTable<OwnedLock>,
    clock: TxClock,
    cm: CmHandle,
}

impl std::fmt::Debug for TinyStm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TinyStm")
            .field("lock_table_entries", &self.lock_table.len())
            .field("clock", &self.clock.read())
            .field("cm", &self.cm.name())
            .finish()
    }
}

impl TinyStm {
    /// Creates an instance with the benchmark configuration.
    pub fn new() -> Self {
        TinyStmBuilder::new().build()
    }

    /// Creates an instance with an explicit configuration.
    pub fn with_config(config: StmConfig) -> Self {
        TinyStmBuilder::new().config(config).build()
    }

    /// Returns a builder for customised instances.
    pub fn builder() -> TinyStmBuilder {
        TinyStmBuilder::new()
    }

    /// Current value of the global clock.
    pub fn clock_value(&self) -> u64 {
        self.clock.read()
    }

    /// The configured commit-clock mode.
    pub fn clock_mode(&self) -> stm_core::config::ClockMode {
        self.clock.mode()
    }

    /// The lock table, exposed for diagnostics and for deterministic
    /// conflict rigs that stage stuck locks (see
    /// `stm_core::testkit::RecordingCm`). Application code never needs it.
    pub fn lock_table(&self) -> &LockTable<OwnedLock> {
        &self.lock_table
    }

    fn shared_of(&self, slot: ThreadSlot) -> &Arc<TxShared> {
        self.registry.shared(slot)
    }

    /// Validates a slice of read-log entries. The self-owned stripe check
    /// is O(1) via the write log's stripe set.
    fn entries_valid(&self, slot: ThreadSlot, write_log: &WriteLog, entries: &[ReadEntry]) -> bool {
        for entry in entries {
            let lock = self.lock_table.entry_at(entry.lock_index);
            match lock.state() {
                OwnedLockState::Free { version } => {
                    if version != entry.version {
                        return false;
                    }
                }
                OwnedLockState::Owned { owner } => {
                    if owner != slot {
                        return false;
                    }
                    // We own the stripe, so its version word is hidden behind
                    // the lock — but the version it carried when we acquired
                    // it must equal the one this read observed, otherwise
                    // another transaction committed in between.
                    if write_log.stripe_version(entry.lock_index) != Some(entry.version) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Full read-set validation (used by the commit path).
    fn validate(&self, desc: &TinyDescriptor) -> bool {
        self.entries_valid(desc.core.slot, &desc.write_log, desc.read_log.entries())
    }

    /// Snapshot extension (the LSA scheme). [`ReadLog::extend_with`] orders
    /// the work — fresh suffix first, then the opacity-mandated
    /// re-confirmation of the validated prefix.
    fn extend(&self, desc: &mut TinyDescriptor) -> bool {
        let ts = self.clock.read();
        let slot = desc.core.slot;
        let write_log = &desc.write_log;
        if !desc
            .read_log
            .extend_with(|entries| self.entries_valid(slot, write_log, entries))
        {
            return false;
        }
        desc.valid_ts = ts;
        true
    }

    /// Restores every owned stripe's pre-acquisition version. The stripe
    /// records themselves are cleared with the write log by the caller.
    fn release_locks(&self, desc: &mut TinyDescriptor) {
        for stripe in desc.write_log.stripes() {
            self.lock_table
                .entry_at(stripe.lock_index)
                .restore(stripe.version);
        }
    }

    fn doom(&self, desc: &mut TinyDescriptor, abort: Abort) -> Abort {
        self.release_locks(desc);
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = true;
        abort
    }
}

impl Default for TinyStm {
    fn default() -> Self {
        TinyStm::new()
    }
}

impl TmAlgorithm for TinyStm {
    type Descriptor = TinyDescriptor;

    fn name(&self) -> &'static str {
        "TinySTM"
    }

    fn heap(&self) -> &TmHeap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn contention_manager(&self) -> &dyn ContentionManager {
        &*self.cm
    }

    fn create_descriptor(&self, slot: ThreadSlot) -> TinyDescriptor {
        TinyDescriptor {
            core: DescriptorCore::new(slot, Arc::clone(self.shared_of(slot))),
            valid_ts: 0,
            read_log: ReadLog::new(),
            write_log: WriteLog::new(),
            doomed: false,
        }
    }

    fn begin(&self, desc: &mut TinyDescriptor, is_restart: bool) {
        desc.core.reset_attempt();
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = false;
        desc.valid_ts = self.clock.read();
        self.cm.on_start(&desc.core.shared, is_restart);
    }

    fn read(&self, desc: &mut TinyDescriptor, addr: Addr) -> TxResult<Word> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        desc.core.attempt_reads += 1;

        let lock_index = self.lock_table.index_of(addr);
        let lock = self.lock_table.entry_at(lock_index);

        // Read from our own redo log if we own the stripe.
        if lock.is_owned_by(desc.core.slot) {
            if let Some(value) = desc.write_log.lookup(addr) {
                return Ok(value);
            }
            return Ok(self.heap.load(addr));
        }

        // Eager read/write conflict detection: a stripe owned by another
        // writer aborts the reader immediately (TinySTM encounter-time
        // locking behaviour the paper contrasts with SwissTM).
        let pre = lock.sample();
        match OwnedLock::decode(pre) {
            OwnedLockState::Owned { .. } => {
                return Err(self.doom(desc, Abort::READ_LOCKED));
            }
            OwnedLockState::Free { .. } => {}
        }
        let value = self.heap.load(addr);
        let post = lock.sample();
        if pre != post {
            return Err(self.doom(desc, Abort::READ_VALIDATION));
        }
        let version = match OwnedLock::decode(post) {
            OwnedLockState::Free { version } => version,
            OwnedLockState::Owned { .. } => {
                return Err(self.doom(desc, Abort::READ_LOCKED));
            }
        };

        desc.read_log.push(lock_index, version);
        self.cm.on_read(&desc.core.shared, desc.read_log.len());

        if version > desc.valid_ts {
            // Fold the fresh version into a deferred clock before extending,
            // so the new snapshot reaches at least this stripe's version.
            self.clock.observe(version);
            if !self.extend(desc) {
                return Err(self.doom(desc, Abort::READ_VALIDATION));
            }
        }
        Ok(value)
    }

    fn write(&self, desc: &mut TinyDescriptor, addr: Addr, value: Word) -> TxResult<()> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        desc.core.attempt_writes += 1;

        let lock_index = self.lock_table.index_of(addr);
        let lock = self.lock_table.entry_at(lock_index);

        if lock.is_owned_by(desc.core.slot) {
            desc.write_log.record(addr, value, lock_index, 0);
            return Ok(());
        }

        // Encounter-time acquisition with contention management. The wait
        // timer starts lazily on the first contended iteration and records
        // the loop's wall-clock time on every exit path.
        let mut wait_timer: Option<WaitTimer> = None;
        let version = loop {
            match lock.state() {
                OwnedLockState::Free { version } => {
                    if lock.try_acquire(desc.core.slot, version) {
                        break version;
                    }
                }
                OwnedLockState::Owned { owner } => {
                    if owner == desc.core.slot {
                        // Raced with our own earlier acquisition of the same
                        // stripe: just buffer the value.
                        desc.write_log.record(addr, value, lock_index, 0);
                        return Ok(());
                    }
                    if wait_timer.is_none() {
                        wait_timer = Some(WaitTimer::start(&desc.core.shared));
                    }
                    match telemetry::resolve_recorded(
                        &*self.cm,
                        &desc.core.shared,
                        self.shared_of(owner),
                        ConflictSite::Write,
                    ) {
                        Resolution::AbortSelf => {
                            return Err(self.doom(desc, Abort::WRITE_CONFLICT));
                        }
                        Resolution::AbortOther | Resolution::Wait => stm_core::sync::spin_loop(),
                    }
                    if desc.core.shared.abort_requested() {
                        return Err(self.doom(desc, Abort::REMOTE));
                    }
                }
            }
        };
        drop(wait_timer);

        desc.write_log.record_stripe(lock_index, version);
        desc.write_log.record(addr, value, lock_index, version);
        self.cm
            .on_write(&desc.core.shared, desc.write_log.stripe_count());

        if version > desc.valid_ts {
            self.clock.observe(version);
            if !self.extend(desc) {
                return Err(self.doom(desc, Abort::READ_VALIDATION));
            }
        }
        Ok(())
    }

    fn commit(&self, desc: &mut TinyDescriptor) -> TxResult<()> {
        if desc.doomed {
            return Err(Abort::EXPLICIT);
        }
        if desc.core.shared.abort_requested() {
            return Err(self.doom(desc, Abort::REMOTE));
        }
        if desc.write_log.is_empty() {
            desc.read_log.clear();
            return Ok(());
        }

        // Stamped with the whole write set already owned (encounter-time
        // locking): a deferred clock's committer-side fence sits between
        // those acquisitions and its clock read (see `TxClock`).
        let stamp = self.clock.commit_stamp(desc.valid_ts);
        let ts = stamp.ts;
        if stamp.needs_validation() && !self.validate(desc) {
            return Err(self.doom(desc, Abort::READ_VALIDATION));
        }

        for entry in desc.write_log.iter() {
            self.heap.store(entry.addr, entry.value);
        }
        for stripe in desc.write_log.stripes() {
            self.lock_table.entry_at(stripe.lock_index).publish(ts);
        }
        desc.read_log.clear();
        desc.write_log.clear();
        Ok(())
    }

    fn rollback(&self, desc: &mut TinyDescriptor) {
        self.release_locks(desc);
        desc.read_log.clear();
        desc.write_log.clear();
        desc.doomed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::config::StmConfig;
    use stm_core::tm::ThreadContext;

    fn small_stm() -> Arc<TinyStm> {
        Arc::new(TinyStm::with_config(StmConfig::small()))
    }

    #[test]
    fn read_your_own_writes() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(stm);
        let v = ctx
            .atomically(|tx| {
                tx.write(addr, 3)?;
                tx.read(addr)
            })
            .unwrap();
        assert_eq!(v, 3);
    }

    #[test]
    fn eager_acquisition_locks_the_stripe_before_commit() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let probe = Arc::clone(&stm);
        let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
        let _ = ctx.atomically(|tx| {
            tx.write(addr, 1)?;
            // Encounter-time locking: the stripe is owned right now even
            // though the transaction has not committed.
            let lock = probe.lock_table.entry(addr);
            assert!(matches!(lock.state(), OwnedLockState::Owned { .. }));
            tx.retry::<()>()
        });
        // After the abort the lock must have been restored.
        let lock = stm.lock_table.entry(addr);
        assert!(matches!(lock.state(), OwnedLockState::Free { .. }));
        assert_eq!(stm.heap().load(addr), 0);
    }

    #[test]
    fn counter_is_consistent_under_concurrency() {
        let stm = Arc::new(TinyStm::with_config(StmConfig::small()));
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for _ in 0..500 {
                        ctx.atomically(|tx| {
                            let v = tx.read(addr)?;
                            tx.write(addr, v + 1)
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stm.heap().load(addr), 2000);
    }

    #[test]
    fn owned_lock_encoding_round_trips() {
        let lock = OwnedLock::default();
        assert_eq!(lock.state(), OwnedLockState::Free { version: 0 });
        assert!(lock.try_acquire(ThreadSlot::new(2), 0));
        assert!(lock.is_owned_by(ThreadSlot::new(2)));
        assert!(!lock.is_owned_by(ThreadSlot::new(1)));
        lock.publish(4);
        assert_eq!(lock.state(), OwnedLockState::Free { version: 4 });
        assert!(!lock.try_acquire(ThreadSlot::new(2), 3));
    }

    #[test]
    fn money_transfer_preserves_the_total() {
        let stm = Arc::new(TinyStm::with_config(StmConfig::small()));
        let accounts = 8usize;
        let base = stm.heap().alloc_zeroed(accounts).unwrap();
        for i in 0..accounts {
            stm.heap().store(base.offset(i), 1000);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let stm = Arc::clone(&stm);
                std::thread::spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    let mut rng = stm_core::backoff::FastRng::new(t as u64 + 21);
                    for _ in 0..400 {
                        let from = rng.next_below(accounts as u64) as usize;
                        let to = rng.next_below(accounts as u64) as usize;
                        ctx.atomically(|tx| {
                            let f = tx.read(base.offset(from))?;
                            let t_bal = tx.read(base.offset(to))?;
                            if from != to && f >= 10 {
                                tx.write(base.offset(from), f - 10)?;
                                tx.write(base.offset(to), t_bal + 10)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..accounts).map(|i| stm.heap().load(base.offset(i))).sum();
        assert_eq!(total, 8000);
    }

    #[test]
    fn clock_advances_once_per_update_transaction() {
        let stm = small_stm();
        let addr = stm.heap().alloc_zeroed(1).unwrap();
        let mut ctx = ThreadContext::register(Arc::clone(&stm));
        let before = stm.clock_value();
        ctx.atomically(|tx| tx.read(addr)).unwrap();
        assert_eq!(stm.clock_value(), before);
        ctx.atomically(|tx| tx.write(addr, 1)).unwrap();
        assert_eq!(stm.clock_value(), before + 1);
    }

    #[test]
    fn builder_accepts_custom_cm() {
        let stm = TinyStm::builder()
            .config(StmConfig::small())
            .contention_manager(Arc::new(stm_core::cm::Timid::with_backoff()))
            .build();
        assert_eq!(stm.contention_manager().name(), "timid+backoff");
    }
}
