//! End-to-end tests of `repro bench-diff`: the command is run as a real
//! subprocess (`CARGO_BIN_EXE_repro`) against synthesized snapshot files,
//! asserting both the exit codes the CI gate relies on and the report
//! lines naming the offending points.

use std::path::PathBuf;
use std::process::{Command, Output};

use stm_harness::snapshot::{
    BenchSnapshot, BenchTiming, MachineProfile, SnapshotPoint, SCHEMA_VERSION,
};

fn point(benchmark: &str, stm: &str, threads: u64, throughput: f64) -> SnapshotPoint {
    SnapshotPoint {
        benchmark: benchmark.into(),
        stm: stm.into(),
        threads,
        seed: 0x5715,
        profile: "quick".into(),
        clock: "strict".into(),
        table_layout: "flat".into(),
        pin: "none".into(),
        grain_shift: 1,
        elapsed_secs: 0.15,
        operations: 10_000,
        commits: 10_000,
        aborts: 120,
        throughput,
        wait_share: 0.03,
        backoff_share: 0.01,
    }
}

fn snapshot(label: &str, points: Vec<SnapshotPoint>) -> BenchSnapshot {
    BenchSnapshot {
        schema_version: SCHEMA_VERSION,
        label: label.into(),
        machine: MachineProfile {
            cores: 4,
            kernel: "test-kernel".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            debug_assertions: false,
        },
        points,
        bench: Vec::new(),
    }
}

/// Writes a snapshot to a unique temp file and returns its path.
fn write_snapshot(test: &str, name: &str, snap: &BenchSnapshot) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "bench-diff-{test}-{name}-{}.json",
        std::process::id()
    ));
    std::fs::write(&path, snap.to_json_string()).expect("temp snapshot must be writable");
    path
}

fn bench_diff(old: &PathBuf, new: &PathBuf, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("bench-diff")
        .arg(old)
        .arg(new)
        .args(extra)
        .output()
        .expect("repro must launch")
}

#[test]
fn injected_regression_exits_nonzero_naming_the_point() {
    let baseline = snapshot(
        "baseline",
        vec![
            point("red-black tree", "SwissTM", 1, 10_000.0),
            point("red-black tree", "SwissTM", 4, 30_000.0),
            point("stmbench7-read-write", "TL2", 4, 800.0),
        ],
    );
    let mut regressed = baseline.clone();
    regressed.label = "regressed".into();
    // Inject a 30% throughput drop on exactly one point.
    regressed.points[1].throughput = 21_000.0;

    let old = write_snapshot("red", "baseline", &baseline);
    let new = write_snapshot("red", "regressed", &regressed);
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !output.status.success(),
        "a 30% drop must fail the gate:\n{stdout}"
    );
    assert!(
        stdout.contains("FAIL red-black tree × SwissTM × 4 threads"),
        "the failure must name the exact point:\n{stdout}"
    );
    assert!(stdout.contains("throughput regressed"), "{stdout}");
    // The untouched points still pass.
    assert!(
        stdout.contains("ok   red-black tree × SwissTM × 1 threads"),
        "{stdout}"
    );
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn within_tolerance_jitter_exits_zero() {
    let baseline = snapshot(
        "baseline",
        vec![
            point("red-black tree", "SwissTM", 2, 10_000.0),
            point("lee-main", "TinySTM", 2, 500.0),
        ],
    );
    let mut jittered = baseline.clone();
    jittered.label = "jittered".into();
    // ±10% noise stays inside the default 0.75 tolerance.
    jittered.points[0].throughput = 9_000.0;
    jittered.points[1].throughput = 550.0;

    let old = write_snapshot("green", "baseline", &baseline);
    let new = write_snapshot("green", "jittered", &jittered);
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}");
    assert!(stdout.contains("0 failed"), "{stdout}");
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn identical_snapshots_exit_zero() {
    let snap = snapshot(
        "baseline",
        vec![
            point("red-black tree", "SwissTM", 1, 10_000.0),
            point("stmbench7-read-write", "TL2", 2, 800.0),
        ],
    );
    let old = write_snapshot("identical", "a", &snap);
    let new = write_snapshot("identical", "b", &snap);
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}");
    assert!(stdout.contains("machine profiles match"), "{stdout}");
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn looser_tolerance_waves_through_a_regression_the_default_catches() {
    let baseline = snapshot("baseline", vec![point("lee-main", "SwissTM", 1, 1000.0)]);
    let mut dropped = baseline.clone();
    dropped.label = "dropped".into();
    dropped.points[0].throughput = 700.0;

    let old = write_snapshot("tolerance", "baseline", &baseline);
    let new = write_snapshot("tolerance", "dropped", &dropped);
    let strict = bench_diff(&old, &new, &[]);
    assert!(
        !strict.status.success(),
        "default 0.75 must catch a 30% drop"
    );
    let loose = bench_diff(&old, &new, &["--throughput-tolerance", "0.50"]);
    let stdout = String::from_utf8_lossy(&loose.stdout);
    assert!(loose.status.success(), "{stdout}");
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn cross_machine_diff_skips_multithread_gates_but_gates_single_thread() {
    let baseline = snapshot(
        "container",
        vec![
            point("red-black tree", "SwissTM", 1, 10_000.0),
            point("red-black tree", "SwissTM", 8, 50_000.0),
        ],
    );
    let mut other_box = baseline.clone();
    other_box.label = "runner".into();
    other_box.machine.cores = 16;
    // The 8-thread point collapsed — must be skipped, not failed.
    other_box.points[1].throughput = 100.0;

    let old = write_snapshot("xmachine", "baseline", &baseline);
    let new = write_snapshot("xmachine", "other", &other_box);
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}");
    assert!(stdout.contains("MACHINE PROFILES DIFFER"), "{stdout}");
    assert!(stdout.contains("cores 4 vs 16"), "{stdout}");
    assert!(
        stdout.contains("vacuous under differing machine profiles"),
        "{stdout}"
    );

    // But a regressed single-thread point still turns the gate red.
    other_box.points[0].throughput = 1_000.0;
    std::fs::write(&new, other_box.to_json_string()).unwrap();
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!output.status.success(), "{stdout}");
    assert!(
        stdout.contains("FAIL red-black tree × SwissTM × 1 threads"),
        "{stdout}"
    );
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn wait_share_and_abort_regressions_fail_the_gate() {
    let baseline = snapshot("baseline", vec![point("lee-main", "SwissTM", 2, 1000.0)]);
    let mut contended = baseline.clone();
    contended.label = "contended".into();
    contended.points[0].wait_share = 0.40;
    let old = write_snapshot("contention", "baseline", &baseline);
    let new = write_snapshot("contention", "waity", &contended);
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!output.status.success(), "{stdout}");
    assert!(stdout.contains("wait share grew"), "{stdout}");

    let mut aborty = baseline.clone();
    aborty.label = "aborty".into();
    aborty.points[0].aborts = 6_000;
    std::fs::write(&new, aborty.to_json_string()).unwrap();
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!output.status.success(), "{stdout}");
    assert!(stdout.contains("aborts exceed bound"), "{stdout}");
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn bench_timing_regression_fails_and_cross_machine_timing_skips() {
    let mut baseline = snapshot("baseline", Vec::new());
    baseline.bench.push(BenchTiming {
        name: "primitives_read/swisstm_read_64".into(),
        mean_nanos: 100.0,
    });
    let mut slow = baseline.clone();
    slow.label = "slow".into();
    slow.bench[0].mean_nanos = 250.0;
    let old = write_snapshot("bench", "baseline", &baseline);
    let new = write_snapshot("bench", "slow", &slow);
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!output.status.success(), "{stdout}");
    assert!(
        stdout.contains("bench primitives_read/swisstm_read_64: regressed"),
        "{stdout}"
    );

    // The same timing gap across different machines is vacuous.
    slow.machine.cores = 64;
    std::fs::write(&new, slow.to_json_string()).unwrap();
    let output = bench_diff(&old, &new, &[]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}");
    assert!(
        stdout.contains("bench primitives_read/swisstm_read_64: skipped"),
        "{stdout}"
    );
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn unreadable_and_malformed_snapshots_exit_nonzero_with_errors() {
    let snap = snapshot("ok", vec![point("red-black tree", "SwissTM", 1, 1.0)]);
    let good = write_snapshot("errors", "good", &snap);

    let missing = std::env::temp_dir().join("bench-diff-does-not-exist.json");
    let output = bench_diff(&missing, &good, &[]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read snapshot"));

    let malformed = std::env::temp_dir().join(format!(
        "bench-diff-errors-malformed-{}.json",
        std::process::id()
    ));
    std::fs::write(&malformed, "{\"schema_version\": 1, ").unwrap();
    let output = bench_diff(&good, &malformed, &[]);
    assert!(!output.status.success());

    let wrong_version = std::env::temp_dir().join(format!(
        "bench-diff-errors-version-{}.json",
        std::process::id()
    ));
    let mut future = snap.clone();
    future.schema_version = SCHEMA_VERSION + 1;
    std::fs::write(&wrong_version, future.to_json_string()).unwrap();
    let output = bench_diff(&good, &wrong_version, &[]);
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unsupported schema_version"));

    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(malformed);
    let _ = std::fs::remove_file(wrong_version);
}
