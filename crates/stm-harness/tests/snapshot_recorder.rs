//! The armed snapshot recorder captures real measured points from
//! `run_point`, and `repro --snapshot` emits a schema-valid document.
//!
//! This lives in its own integration-test binary: the recorder is
//! process-global, so sharing a binary with unrelated tests that also call
//! `run_point` would race on the armed state.

use std::process::Command;
use std::time::Duration;

use stm_core::config::{ClockMode, TableLayout};
use stm_harness::runner::{run_point, Benchmark, CmChoice, RunOptions, StmVariant};
use stm_harness::snapshot::{arm_recorder, take_recorded, BenchSnapshot};
use stm_workloads::placement::PlacementPolicy;
use stm_workloads::profile::SizeProfile;
use stm_workloads::rbtree::RbTreeConfig;

fn tiny_options() -> RunOptions {
    RunOptions {
        max_threads: 2,
        point_duration: Duration::from_millis(20),
        heap_words: 1 << 20,
        lock_table_log2: 12,
        grain_shift: 1,
        clock: ClockMode::Deferred,
        table_layout: TableLayout::Padded,
        pin: PlacementPolicy::None,
        profile: SizeProfile::Quick,
        seed: 0xC0FFEE,
    }
}

#[test]
fn armed_recorder_captures_self_describing_points_from_run_point() {
    let options = tiny_options();
    let benchmark = Benchmark::RbTree(RbTreeConfig::small());

    // Unarmed: nothing is captured.
    run_point(
        StmVariant::Swiss(CmChoice::Default),
        &benchmark,
        1,
        &options,
    );
    assert!(take_recorded().is_empty());

    arm_recorder();
    run_point(
        StmVariant::Swiss(CmChoice::Default),
        &benchmark,
        1,
        &options,
    );
    run_point(StmVariant::Tl2(CmChoice::Default), &benchmark, 2, &options);
    let points = take_recorded();
    assert_eq!(points.len(), 2);

    let swiss = &points[0];
    assert_eq!(swiss.benchmark, "red-black tree");
    assert_eq!(swiss.stm, "SwissTM");
    assert_eq!(swiss.threads, 1);
    // The point is self-describing: seed and config knobs come from the
    // RunResult the driver recorded, not from out-of-band context.
    assert_eq!(swiss.seed, 0xC0FFEE);
    assert_eq!(swiss.profile, "quick");
    assert_eq!(swiss.clock, "deferred");
    assert_eq!(swiss.table_layout, "padded");
    assert_eq!(swiss.pin, "none");
    assert_eq!(swiss.grain_shift, 1);
    assert!(swiss.commits > 0);
    assert!(swiss.throughput > 0.0);
    assert!(swiss.elapsed_secs > 0.0);

    assert_eq!(points[1].stm, "TL2");
    assert_eq!(points[1].threads, 2);
}

/// `repro fig5 --snapshot` end to end: the emitted file parses back as a
/// schema-valid snapshot whose points carry the CLI's configuration, and
/// `repro bench-diff` accepts the file against itself with exit code 0.
#[test]
fn repro_snapshot_flag_emits_schema_valid_file() {
    let path =
        std::env::temp_dir().join(format!("BENCH_recorder-test-{}.json", std::process::id()));
    let timings = std::env::temp_dir().join(format!(
        "bench-timings-recorder-test-{}.tsv",
        std::process::id()
    ));
    std::fs::write(&timings, "primitives_read/swisstm_read_64\t812.5\n").unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig5", "--threads", "2", "--millis", "20", "--seed", "41"])
        .args(["--clock", "deferred", "--snapshot"])
        .arg(&path)
        .arg("--bench-timings")
        .arg(&timings)
        .output()
        .expect("repro must launch");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(output.status.success(), "{stdout}");
    assert!(stdout.contains("wrote perf snapshot"), "{stdout}");

    let text = std::fs::read_to_string(&path).expect("snapshot file must exist");
    let snapshot = BenchSnapshot::parse(&text).expect("emitted snapshot must be schema-valid");
    assert_eq!(
        snapshot.label,
        format!("recorder-test-{}", std::process::id())
    );
    // Figure 5 sweeps 4 STMs over threads 1..=2: 8 points.
    assert_eq!(snapshot.points.len(), 8);
    assert!(snapshot.points.iter().all(|p| p.seed == 41));
    assert!(snapshot.points.iter().all(|p| p.clock == "deferred"));
    assert!(snapshot
        .points
        .iter()
        .any(|p| p.stm == "SwissTM" && p.threads == 2));
    assert_eq!(snapshot.bench.len(), 1);
    assert_eq!(snapshot.bench[0].name, "primitives_read/swisstm_read_64");
    assert_eq!(snapshot.machine.cores, {
        std::thread::available_parallelism().unwrap().get() as u64
    });

    // The file gates cleanly against itself.
    let diff = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("bench-diff")
        .arg(&path)
        .arg(&path)
        .output()
        .expect("repro must launch");
    assert!(
        diff.status.success(),
        "{}",
        String::from_utf8_lossy(&diff.stdout)
    );

    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(timings);
}
