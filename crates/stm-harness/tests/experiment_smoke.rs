//! Smoke test: one tiny experiment through `stm_harness::experiments`, so
//! the full experiment path (variant construction → workload set-up →
//! multi-threaded run → table formatting) is covered by `cargo test` and not
//! only by the `repro` binary.

use std::time::Duration;

use stm_harness::experiments;
use stm_harness::runner::{run_point, Benchmark, CmChoice, RunOptions, StmVariant};
use stm_workloads::profile::SizeProfile;
use stm_workloads::rbtree::RbTreeConfig;

fn smoke_options() -> RunOptions {
    RunOptions {
        max_threads: 1,
        point_duration: Duration::from_millis(10),
        heap_words: 1 << 20,
        lock_table_log2: 12,
        grain_shift: 1,
        clock: stm_core::config::ClockMode::Strict,
        table_layout: stm_core::config::TableLayout::Flat,
        pin: stm_workloads::placement::PlacementPolicy::None,
        profile: SizeProfile::Quick,
        seed: 0x51,
    }
}

#[test]
fn figure5_at_one_thread_produces_a_full_table() {
    let options = smoke_options();
    let table = experiments::figure5(&options);

    // One data row per thread count, one column for threads plus one per STM.
    assert_eq!(table.len(), options.thread_counts().len());
    assert_eq!(table.headers.len(), 1 + StmVariant::paper_defaults().len());
    for row in &table.rows {
        assert_eq!(row.len(), table.headers.len());
        for cell in row {
            assert!(!cell.is_empty(), "table cell left empty: {table}");
        }
    }

    // The rendering must contain every series label (the repro binary prints
    // exactly this string).
    let rendered = table.to_string();
    for variant in StmVariant::paper_defaults() {
        assert!(
            rendered.contains(&variant.label()),
            "series '{}' missing from:\n{rendered}",
            variant.label()
        );
    }
}

#[test]
fn single_data_point_reports_consistent_statistics() {
    let options = smoke_options();
    let result = run_point(
        StmVariant::Swiss(CmChoice::Default),
        &Benchmark::RbTree(RbTreeConfig::small()),
        1,
        &options,
    );
    assert!(result.check_passed);
    assert!(result.operations > 0);
    assert!(result.throughput() > 0.0);
    assert!(result.abort_ratio() >= 0.0 && result.abort_ratio() <= 1.0);
}
