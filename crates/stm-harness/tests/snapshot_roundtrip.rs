//! Property tests for the hand-rolled snapshot JSON layer: seeded-random
//! snapshots must survive writer → parser round trips bit-exactly,
//! including hostile strings, full-range `u64`s, exotic (but finite)
//! floats, and injected unknown fields (forward compatibility).

use stm_core::backoff::FastRng;
use stm_harness::snapshot::{
    parse_json, BenchSnapshot, BenchTiming, Json, MachineProfile, SnapshotPoint, SCHEMA_VERSION,
};

/// A pool of characters chosen to stress the escaper: quotes, backslashes,
/// control characters, multi-byte UTF-8 and astral-plane code points.
const CHAR_POOL: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0000}', '\u{0001}', '\u{001f}', 'é',
    'ß', '中', '\u{2028}', '💡', '𝔘', '\u{fffd}',
];

fn arbitrary_string(rng: &mut FastRng) -> String {
    let len = rng.next_below(12) as usize;
    (0..len)
        .map(|_| CHAR_POOL[rng.next_below(CHAR_POOL.len() as u64) as usize])
        .collect()
}

/// A finite float with a wide dynamic range: full-range `u64` mantissa
/// scaled by powers of ten from 1e-30 to ~1e+30, occasionally negated or
/// zeroed. Never NaN/inf — the schema is NaN-free by construction.
fn arbitrary_float(rng: &mut FastRng) -> f64 {
    if rng.chance_percent(10) {
        return 0.0;
    }
    let mantissa = rng.next_u64() as f64;
    let scale = 10f64.powi(rng.next_below(61) as i32 - 30);
    let value = mantissa * scale;
    let value = if rng.chance_percent(30) {
        -value
    } else {
        value
    };
    assert!(value.is_finite());
    value
}

fn arbitrary_point(rng: &mut FastRng) -> SnapshotPoint {
    SnapshotPoint {
        benchmark: arbitrary_string(rng),
        stm: arbitrary_string(rng),
        threads: rng.next_below(64),
        // Full-range u64s: the seed field routinely holds hashes.
        seed: rng.next_u64(),
        profile: arbitrary_string(rng),
        clock: arbitrary_string(rng),
        table_layout: arbitrary_string(rng),
        pin: arbitrary_string(rng),
        grain_shift: rng.next_below(32),
        elapsed_secs: arbitrary_float(rng),
        operations: rng.next_u64(),
        commits: rng.next_u64(),
        aborts: rng.next_u64(),
        throughput: arbitrary_float(rng),
        wait_share: arbitrary_float(rng),
        backoff_share: arbitrary_float(rng),
    }
}

fn arbitrary_snapshot(rng: &mut FastRng) -> BenchSnapshot {
    let points = (0..rng.next_below(6))
        .map(|_| arbitrary_point(rng))
        .collect();
    let bench = (0..rng.next_below(4))
        .map(|_| BenchTiming {
            name: arbitrary_string(rng),
            mean_nanos: arbitrary_float(rng).abs(),
        })
        .collect();
    BenchSnapshot {
        schema_version: SCHEMA_VERSION,
        label: arbitrary_string(rng),
        machine: MachineProfile {
            cores: rng.next_u64(),
            kernel: arbitrary_string(rng),
            os: arbitrary_string(rng),
            arch: arbitrary_string(rng),
            debug_assertions: rng.chance_percent(50),
        },
        points,
        bench,
    }
}

#[test]
fn arbitrary_snapshots_round_trip_bit_exactly() {
    let mut rng = FastRng::new(0xB16_B00B5);
    for iteration in 0..200 {
        let snapshot = arbitrary_snapshot(&mut rng);
        let text = snapshot.to_json_string();
        let reparsed = BenchSnapshot::parse(&text)
            .unwrap_or_else(|e| panic!("iteration {iteration}: {e}\n{text}"));
        assert_eq!(reparsed, snapshot, "iteration {iteration}\n{text}");
    }
}

/// Injects unknown fields at every object level of a serialized snapshot
/// and asserts the parser still recovers the original — old binaries must
/// keep reading snapshots written by future schema extensions.
#[test]
fn round_trip_survives_injected_unknown_fields() {
    let mut rng = FastRng::new(0xF0F0_F0F0);
    for iteration in 0..50 {
        let snapshot = arbitrary_snapshot(&mut rng);
        let Json::Object(mut fields) = parse_json(&snapshot.to_json_string()).unwrap() else {
            panic!("snapshot documents are objects");
        };
        let noise = Json::Array(vec![
            Json::UInt(rng.next_u64()),
            Json::Str(arbitrary_string(&mut rng)),
            Json::Object(vec![("nested".into(), Json::Bool(true))]),
            Json::Null,
        ]);
        fields.push(("future_top_level".into(), noise.clone()));
        for (key, value) in fields.iter_mut() {
            match value {
                Json::Object(inner) if key == "machine" => {
                    inner.insert(0, ("future_machine_field".into(), noise.clone()));
                }
                Json::Array(items) => {
                    for item in items {
                        if let Json::Object(inner) = item {
                            inner.push(("future_item_field".into(), noise.clone()));
                        }
                    }
                }
                _ => {}
            }
        }
        let mutated = Json::Object(fields).to_pretty_string();
        let reparsed = BenchSnapshot::parse(&mutated)
            .unwrap_or_else(|e| panic!("iteration {iteration}: {e}\n{mutated}"));
        assert_eq!(reparsed, snapshot, "iteration {iteration}");
    }
}

/// Random mutations of valid documents must never panic the parser: every
/// outcome is either a clean parse or a clean error.
#[test]
fn parser_never_panics_on_mutated_documents() {
    let mut rng = FastRng::new(0xDEAD_BEEF);
    for _ in 0..100 {
        let snapshot = arbitrary_snapshot(&mut rng);
        let mut text = snapshot.to_json_string().into_bytes();
        if text.is_empty() {
            continue;
        }
        for _ in 0..1 + rng.next_below(4) {
            let index = rng.next_below(text.len() as u64) as usize;
            text[index] = (rng.next_below(128)) as u8;
        }
        // Lossy conversion keeps the input a &str even when a mutation
        // lands inside a multi-byte sequence.
        let mutated = String::from_utf8_lossy(&text);
        let _ = BenchSnapshot::parse(&mutated);
    }
}
