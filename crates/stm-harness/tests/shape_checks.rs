//! Tests for the figure-shape checks: the comparator logic (driven with
//! synthetic [`RunResult`]s, including the failure messages) and a
//! down-scaled sweep through the whole `--check-shapes` path.

use std::time::Duration;

use stm_core::stats::{StatsAggregate, TxStats};
use stm_harness::runner::RunOptions;
use stm_harness::shapes::{
    check_competitive, check_dominates, check_self_abort_ratio, check_self_throughput,
    check_self_wait_share, elapsed_series, run_shape_checks, throughput_series, Direction,
    SeriesPoint, ShapeReport,
};
use stm_workloads::driver::RunResult;
use stm_workloads::placement::{PlacementOutcome, PlacementPolicy};
use stm_workloads::profile::SizeProfile;

/// Builds a synthetic RunResult committing `commits` transactions over
/// `millis` of measured window — the comparator inputs the sweeps produce.
fn synthetic_result(commits: u64, millis: u64) -> RunResult {
    let elapsed = Duration::from_millis(millis);
    let mut stats = TxStats::new();
    stats.commits = commits;
    RunResult {
        stats: StatsAggregate::collect([&stats], elapsed),
        operations: commits,
        elapsed,
        check_passed: true,
        placement: PlacementOutcome {
            policy: PlacementPolicy::None,
            cores: 1,
            threads: Vec::new(),
        },
        seed: 0x5a,
        clock: stm_core::config::ClockMode::Strict,
        table_layout: stm_core::config::TableLayout::Flat,
    }
}

fn synthetic_sweep(points: &[(usize, u64, u64)]) -> Vec<(usize, RunResult)> {
    points
        .iter()
        .map(|&(threads, commits, millis)| (threads, synthetic_result(commits, millis)))
        .collect()
}

#[test]
fn series_extraction_reads_throughput_and_elapsed() {
    let sweep = synthetic_sweep(&[(1, 1000, 100), (2, 3000, 100)]);
    let tput = throughput_series(&sweep);
    assert_eq!(tput.len(), 2);
    assert_eq!(tput[0].threads, 1);
    assert!((tput[0].value - 10_000.0).abs() < 1e-6);
    assert!((tput[1].value - 30_000.0).abs() < 1e-6);
    let elapsed = elapsed_series(&sweep);
    assert!((elapsed[1].value - 0.1).abs() < 1e-9);
}

#[test]
fn dominance_passes_when_champion_leads_beyond_two_threads() {
    // The champion loses at 1–2 threads (allowed) and wins beyond.
    let champion = throughput_series(&synthetic_sweep(&[
        (1, 800, 100),
        (2, 1500, 100),
        (4, 4000, 100),
        (8, 8000, 100),
    ]));
    let baseline = throughput_series(&synthetic_sweep(&[
        (1, 1000, 100),
        (2, 1800, 100),
        (4, 3000, 100),
        (8, 4000, 100),
    ]));
    let outcome = check_dominates(
        "STMBench7 read-write",
        ("SwissTM", &champion),
        ("TL2", &baseline),
        2,
        Direction::HigherIsBetter,
        0.9,
    );
    let line = outcome.expect("shape must pass");
    assert!(line.contains("dominates"), "{line}");
    assert!(line.contains("2 points beyond 2 threads"), "{line}");
}

#[test]
fn dominance_failure_names_figure_threads_and_values() {
    let champion = vec![
        SeriesPoint {
            threads: 4,
            value: 100.0,
        },
        SeriesPoint {
            threads: 8,
            value: 500.0,
        },
    ];
    let baseline = vec![
        SeriesPoint {
            threads: 4,
            value: 400.0,
        },
        SeriesPoint {
            threads: 8,
            value: 450.0,
        },
    ];
    let message = check_dominates(
        "STMBench7 read-write",
        ("SwissTM", &champion),
        ("TinySTM", &baseline),
        2,
        Direction::HigherIsBetter,
        0.8,
    )
    .expect_err("4-thread point must fail");
    assert!(message.contains("STMBench7 read-write"), "{message}");
    assert!(message.contains("at 4 threads"), "{message}");
    assert!(message.contains("SwissTM=100.00"), "{message}");
    assert!(message.contains("TinySTM=400.00"), "{message}");
    assert!(message.contains("tolerance 0.80"), "{message}");
}

#[test]
fn lower_is_better_inverts_the_comparison() {
    // Execution time: champion routes faster beyond 2 threads.
    let champion = vec![SeriesPoint {
        threads: 4,
        value: 1.0,
    }];
    let slower_baseline = vec![SeriesPoint {
        threads: 4,
        value: 2.0,
    }];
    assert!(check_dominates(
        "Lee-TM memory board",
        ("SwissTM", &champion),
        ("RSTM", &slower_baseline),
        2,
        Direction::LowerIsBetter,
        0.9,
    )
    .is_ok());
    // And fails the other way around, mentioning the values.
    let message = check_dominates(
        "Lee-TM memory board",
        ("SwissTM", &slower_baseline),
        ("RSTM", &champion),
        2,
        Direction::LowerIsBetter,
        0.9,
    )
    .expect_err("slower champion must fail");
    assert!(message.contains("must not exceed"), "{message}");
    assert!(message.contains("SwissTM=2.00"), "{message}");
}

#[test]
fn dominance_skips_when_no_points_beyond_the_threshold() {
    let short = vec![
        SeriesPoint {
            threads: 1,
            value: 1.0,
        },
        SeriesPoint {
            threads: 2,
            value: 1.0,
        },
    ];
    let line = check_dominates(
        "STMBench7 read-write",
        ("SwissTM", &short),
        ("TL2", &short),
        2,
        Direction::HigherIsBetter,
        0.9,
    )
    .expect("vacuous check must not fail");
    assert!(line.contains("skipped"), "{line}");
}

#[test]
fn competitive_check_passes_and_fails_on_ratio() {
    let reference = vec![
        SeriesPoint {
            threads: 1,
            value: 1000.0,
        },
        SeriesPoint {
            threads: 2,
            value: 900.0,
        },
    ];
    let close = vec![
        SeriesPoint {
            threads: 1,
            value: 950.0,
        },
        SeriesPoint {
            threads: 2,
            value: 600.0,
        },
    ];
    assert!(check_competitive(
        "red-black tree",
        ("SwissTM", &reference),
        ("TL2", &close),
        2,
        0.5,
    )
    .is_ok());
    let far = vec![SeriesPoint {
        threads: 1,
        value: 100.0,
    }];
    let message = check_competitive(
        "red-black tree",
        ("SwissTM", &reference),
        ("TL2", &far),
        2,
        0.5,
    )
    .expect_err("a 10x gap is not competitive");
    assert!(message.contains("red-black tree"), "{message}");
    assert!(message.contains("TL2=100.00"), "{message}");
    assert!(message.contains("SwissTM=1000.00"), "{message}");
}

#[test]
fn self_throughput_gate_passes_jitter_and_fails_regressions() {
    let point = "red-black tree × SwissTM × 2 threads";
    // 10% jitter is inside the default 0.75 tolerance.
    assert!(check_self_throughput(point, 1000.0, 900.0, 0.75).is_ok());
    // Improvements always pass.
    assert!(check_self_throughput(point, 1000.0, 1500.0, 0.75).is_ok());
    // A 30% drop fails, naming the point and both values.
    let message = check_self_throughput(point, 1000.0, 700.0, 0.75).unwrap_err();
    assert!(message.contains(point), "{message}");
    assert!(message.contains("regressed"), "{message}");
    assert!(message.contains("70.0% of baseline"), "{message}");
    // A zero baseline makes the gate vacuous, not failing.
    let line = check_self_throughput(point, 0.0, 0.0, 0.75).unwrap();
    assert!(line.contains("skipped"), "{line}");
}

#[test]
fn self_wait_share_gate_uses_absolute_slack() {
    let point = "stmbench7-read-write × TL2 × 4 threads";
    assert!(check_self_wait_share(point, 0.05, 0.14, 0.10).is_ok());
    let message = check_self_wait_share(point, 0.05, 0.30, 0.10).unwrap_err();
    assert!(message.contains(point), "{message}");
    assert!(message.contains("wait share grew"), "{message}");
}

#[test]
fn self_abort_ratio_gate_combines_factor_and_slack() {
    let point = "lee-main × TinySTM × 8 threads";
    // Bound = 0.10 * 1.5 + 0.05 = 0.20.
    assert!(check_self_abort_ratio(point, 0.10, 0.20, 1.5, 0.05).is_ok());
    let message = check_self_abort_ratio(point, 0.10, 0.25, 1.5, 0.05).unwrap_err();
    assert!(message.contains(point), "{message}");
    assert!(message.contains("aborts exceed bound"), "{message}");
    // Zero baseline: the additive slack still allows rare aborts.
    assert!(check_self_abort_ratio(point, 0.0, 0.04, 1.5, 0.05).is_ok());
    assert!(check_self_abort_ratio(point, 0.0, 0.06, 1.5, 0.05).is_err());
}

#[test]
fn shape_report_aggregates_and_renders() {
    let mut report = ShapeReport::default();
    report.record(Ok("figure A: fine".into()));
    assert!(report.passed());
    report.record(Err("figure B: inverted".into()));
    assert!(!report.passed());
    let rendered = report.to_string();
    assert!(rendered.contains("ok   figure A: fine"), "{rendered}");
    assert!(rendered.contains("FAIL figure B: inverted"), "{rendered}");
    assert!(rendered.contains("1 passed, 1 failed"), "{rendered}");
}

/// The whole `--check-shapes` path on a heavily down-scaled sweep: two
/// threads only, so the dominance checks are vacuous (skipped, not
/// failed) and the competitive checks run against real measured points.
///
/// The test asserts the *path* — every check ran, the dominance checks
/// were skipped rather than failed, the competitive checks were evaluated
/// against measured numbers — but deliberately not the competitive
/// verdicts themselves: 20 ms debug-build points measured while the rest
/// of the test binary runs in parallel are too noisy to pin a throughput
/// ratio on (the comparator verdicts are pinned by the deterministic
/// synthetic-series tests above, and the release-mode `repro
/// --check-shapes` run is the real gate).
#[test]
fn downscaled_sweep_through_the_check_shapes_path() {
    let options = RunOptions {
        max_threads: 2,
        point_duration: Duration::from_millis(20),
        heap_words: 1 << 20,
        lock_table_log2: 12,
        grain_shift: 1,
        clock: stm_core::config::ClockMode::Strict,
        table_layout: stm_core::config::TableLayout::Flat,
        pin: stm_workloads::placement::PlacementPolicy::None,
        profile: SizeProfile::Quick,
        seed: 0x5a,
    };
    let report = run_shape_checks(&options);
    // 6 dominance checks (vacuous at 2 threads) + 2 competitive checks.
    assert_eq!(report.passes.len() + report.failures.len(), 8, "{report}");
    let skipped = report
        .passes
        .iter()
        .filter(|line| line.contains("skipped"))
        .count();
    assert_eq!(
        skipped, 6,
        "all dominance checks must be vacuous at 2 threads:\n{report}"
    );
    assert!(
        report.failures.iter().all(|line| !line.contains("skipped")),
        "skips must never be reported as failures:\n{report}"
    );
    // Both competitive checks were evaluated against measured points.
    let competitive: Vec<&String> = report
        .passes
        .iter()
        .chain(report.failures.iter())
        .filter(|line| line.contains("red-black tree"))
        .collect();
    assert_eq!(competitive.len(), 2, "{report}");
    for line in competitive {
        assert!(
            line.contains("competitive") || line.contains("must stay within"),
            "{line}"
        );
    }
    let rendered = report.to_string();
    assert!(rendered.contains("Figure-shape checks"), "{rendered}");
}
