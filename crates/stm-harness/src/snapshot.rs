//! Performance snapshots (`BENCH_*.json`) and self-regression gates.
//!
//! Every measured data point of the harness can be captured into a
//! versioned, machine-profiled snapshot file, and two snapshots can be
//! diffed point-by-point under per-metric tolerance gates (`repro
//! bench-diff`). This turns performance into a tracked artifact: CI keeps
//! a committed `BENCH_baseline.json` and goes red when a sweep regresses
//! against it beyond tolerance, instead of perf changes drifting by
//! unnoticed between PRs.
//!
//! # Why a hand-rolled JSON layer
//!
//! The build container cannot reach crates.io, so there is no `serde`:
//! both the writer and the parser live here and are tested hard
//! (round-trip property tests over seeded-random snapshots, escaping edge
//! cases, `u64::MAX`-scale integers, unknown-field tolerance for forward
//! compatibility). The [`Json`] model is tiny but complete for the schema:
//! null, booleans, unsigned integers (bit-exact across the full `u64`
//! range), finite floats, strings, arrays and order-preserving objects.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "label": "baseline",
//!   "machine": { "cores": 8, "kernel": "6.8.0", "os": "linux",
//!                "arch": "x86_64", "debug_assertions": false },
//!   "points": [ { "benchmark": "red-black tree", "stm": "SwissTM",
//!                 "threads": 2, "seed": 22293, "profile": "quick",
//!                 "clock": "strict", "table_layout": "flat",
//!                 "pin": "none", "grain_shift": 1,
//!                 "elapsed_secs": 0.2, "operations": 1000,
//!                 "commits": 1000, "aborts": 3, "throughput": 5000.0,
//!                 "wait_share": 0.01, "backoff_share": 0.0 } ],
//!   "bench": [ { "name": "primitives_read/swisstm_read_64",
//!                "mean_nanos": 812.5 } ]
//! }
//! ```
//!
//! Unknown fields anywhere in the document are ignored on parse, so future
//! schema additions stay readable by old binaries; a different
//! `schema_version` is rejected outright.
//!
//! # Gate semantics
//!
//! [`diff_snapshots`] matches points by their full identity (benchmark ×
//! STM × threads × seed × profile × clock × table layout × pin × stripe
//! grain; repeated identities — e.g. the granularity sweeps of Figure 13
//! and Table 2 measure the same configuration in the same order — are
//! paired by occurrence) and applies the self-regression shapes of
//! [`crate::shapes`]: throughput within tolerance, wait share not worse,
//! abort ratio bounded. When the two snapshots come from *different
//! machines* (core count, architecture or `debug_assertions` differ), the
//! multi-thread gates are vacuous — the thread/data-mapping literature
//! (PAPERS.md) documents how the same sweep inverts between a 1-core and a
//! multi-socket box — so they are skipped loudly and only single-thread
//! points stay gated.

use std::fmt;
use std::sync::{Mutex, OnceLock};

use stm_workloads::driver::RunResult;
use stm_workloads::profile::SizeProfile;

use crate::shapes::{
    check_self_abort_ratio, check_self_throughput, check_self_wait_share, ShapeReport,
};

/// The schema version this module reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Maximum nesting depth the JSON parser accepts (defensive bound against
/// stack exhaustion on adversarial inputs).
pub const MAX_JSON_DEPTH: usize = 64;

// ---------------------------------------------------------------------------
// JSON value model
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Numbers are split into [`Json::UInt`] (non-negative integers without
/// fraction or exponent, bit-exact over the full `u64` range — snapshot
/// counters routinely exceed 2^53, where an `f64` would silently round)
/// and [`Json::Float`] (everything else, required finite). Object fields
/// preserve insertion order so written files are stable and diffs stay
/// readable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, exact over the full `u64` range.
    UInt(u64),
    /// A finite floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object: ordered `(key, value)` pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` ([`Json::UInt`] only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (accepts both number forms; `UInt` may round
    /// beyond 2^53, which is fine for metric fields).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Serializes the value as pretty-printed JSON (2-space indent) with a
    /// trailing newline — the committed-baseline-friendly format.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Float(x) => write_float(*x, out),
            Json::Str(s) => write_json_string(s, out),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, level + 1);
                    item.write_pretty(out, level + 1);
                }
                out.push('\n');
                push_indent(out, level);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, level + 1);
                    write_json_string(key, out);
                    out.push_str(": ");
                    value.write_pretty(out, level + 1);
                }
                out.push('\n');
                push_indent(out, level);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Writes a float so that parsing it back is bit-exact: Rust's `Display`
/// prints the shortest decimal that round-trips, and a `.0` is appended to
/// integer-looking output so the parser classifies it as a float again
/// (`2.0` must not come back as `UInt(2)`).
///
/// # Panics
///
/// Panics on non-finite input — the snapshot schema is NaN-free by
/// construction ([`sanitize_f64`] guards every measured field).
fn write_float(x: f64, out: &mut String) {
    assert!(x.is_finite(), "snapshot floats must be finite, got {x}");
    let formatted = format!("{x}");
    out.push_str(&formatted);
    if !formatted.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Replaces non-finite metric values with `0.0` so a degenerate measurement
/// (zero-duration window on a wildly oversubscribed box) can never poison a
/// snapshot with `NaN`/`inf` the writer would reject.
pub fn sanitize_f64(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

/// Parses a JSON document into a [`Json`] value.
///
/// # Errors
///
/// Returns a message with the byte offset of the problem on malformed
/// input: unterminated strings, bad escapes (including lone UTF-16
/// surrogates), non-finite numbers, trailing garbage, or nesting deeper
/// than [`MAX_JSON_DEPTH`].
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!(
            "trailing characters after JSON value at byte {}",
            parser.pos
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_JSON_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_JSON_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 (it is a &str) and the run ends
                // on an ASCII delimiter, so the slice is on char bounds.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                Some(_) => {
                    return Err(format!(
                        "unescaped control character in string at byte {}",
                        self.pos
                    ))
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), String> {
        let escape = self
            .peek()
            .ok_or_else(|| "unterminated escape".to_string())?;
        self.pos += 1;
        match escape {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let first = self.parse_hex4()?;
                let c = if (0xd800..0xdc00).contains(&first) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(format!("lone high surrogate at byte {}", self.pos));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(format!("lone high surrogate at byte {}", self.pos));
                    }
                    self.pos += 1;
                    let second = self.parse_hex4()?;
                    if !(0xdc00..0xe000).contains(&second) {
                        return Err(format!("invalid low surrogate at byte {}", self.pos));
                    }
                    let combined = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                    char::from_u32(combined)
                        .ok_or_else(|| format!("invalid surrogate pair at byte {}", self.pos))?
                } else if (0xdc00..0xe000).contains(&first) {
                    return Err(format!("lone low surrogate at byte {}", self.pos));
                } else {
                    char::from_u32(first)
                        .ok_or_else(|| format!("invalid \\u escape at byte {}", self.pos))?
                };
                out.push(c);
            }
            other => {
                return Err(format!(
                    "invalid escape '\\{}' at byte {}",
                    other as char,
                    self.pos - 1
                ))
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        let value = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        if !is_float && !text.starts_with('-') {
            // Exact u64 path; values beyond u64::MAX fall back to float so
            // forward-compatible documents with huge numbers stay readable.
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        let x: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("number '{text}' at byte {start} is out of range"));
        }
        Ok(Json::Float(x))
    }
}

// ---------------------------------------------------------------------------
// Schema model
// ---------------------------------------------------------------------------

/// The machine a snapshot was measured on. Diff gates only compare numbers
/// measured under comparable profiles ([`MachineProfile::comparable`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineProfile {
    /// `std::thread::available_parallelism()` at capture time.
    pub cores: u64,
    /// Kernel release string (`/proc/sys/kernel/osrelease`; `"unknown"`
    /// off-Linux).
    pub kernel: String,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Whether the binary was built with `debug_assertions` (a debug-build
    /// number must never gate a release-build number).
    pub debug_assertions: bool,
}

impl MachineProfile {
    /// Captures the current machine's profile.
    pub fn current() -> Self {
        MachineProfile {
            cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            kernel: std::fs::read_to_string("/proc/sys/kernel/osrelease")
                .map(|s| s.trim().to_string())
                .unwrap_or_else(|_| "unknown".to_string()),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            debug_assertions: cfg!(debug_assertions),
        }
    }

    /// Whether throughput numbers from the two profiles can be compared at
    /// all thread counts. Kernel and OS strings are informational (a kernel
    /// upgrade does not void a baseline); core count, architecture and the
    /// build mode do.
    pub fn comparable(&self, other: &MachineProfile) -> bool {
        self.cores == other.cores
            && self.arch == other.arch
            && self.debug_assertions == other.debug_assertions
    }

    /// A one-line human-readable description of what differs between two
    /// profiles (empty when [`MachineProfile::comparable`]).
    pub fn mismatch_description(&self, other: &MachineProfile) -> String {
        let mut parts = Vec::new();
        if self.cores != other.cores {
            parts.push(format!("cores {} vs {}", self.cores, other.cores));
        }
        if self.arch != other.arch {
            parts.push(format!("arch {} vs {}", self.arch, other.arch));
        }
        if self.debug_assertions != other.debug_assertions {
            parts.push(format!(
                "debug_assertions {} vs {}",
                self.debug_assertions, other.debug_assertions
            ));
        }
        parts.join(", ")
    }

    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("cores".into(), Json::UInt(self.cores)),
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("os".into(), Json::Str(self.os.clone())),
            ("arch".into(), Json::Str(self.arch.clone())),
            ("debug_assertions".into(), Json::Bool(self.debug_assertions)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        Ok(MachineProfile {
            cores: require_u64(json, "cores", "machine")?,
            kernel: require_str(json, "kernel", "machine")?,
            os: require_str(json, "os", "machine")?,
            arch: require_str(json, "arch", "machine")?,
            debug_assertions: json
                .get("debug_assertions")
                .and_then(Json::as_bool)
                .ok_or("machine: missing or invalid field 'debug_assertions'")?,
        })
    }
}

/// One measured data point: the full configuration it ran under plus the
/// metrics the gates compare.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotPoint {
    /// Benchmark label (e.g. `"red-black tree"`, `"stmbench7-read-write"`).
    pub benchmark: String,
    /// STM variant label (e.g. `"SwissTM"`, `"RSTM[eager/inv,polka]"`).
    pub stm: String,
    /// Worker thread count.
    pub threads: u64,
    /// Seed of the run's operation streams.
    pub seed: u64,
    /// Workload size profile label (`quick`/`full`/`huge`).
    pub profile: String,
    /// Commit-clock mode label (`strict`/`deferred`).
    pub clock: String,
    /// Lock-table layout label (`flat`/`mixed`/`padded`/`padded-mixed`).
    pub table_layout: String,
    /// Thread-placement policy label (`none`/`compact`/`scatter`).
    pub pin: String,
    /// Stripe granularity (log2 words per stripe) the lock table used.
    pub grain_shift: u64,
    /// Measured window in seconds.
    pub elapsed_secs: f64,
    /// Application-level operations executed.
    pub operations: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts.
    pub aborts: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Share of thread-time spent in CM wait loops.
    pub wait_share: f64,
    /// Share of thread-time spent spinning in back-off.
    pub backoff_share: f64,
}

impl SnapshotPoint {
    /// Builds a point from one measured [`RunResult`]. The seed, clock,
    /// table layout and placement policy come from the result itself (the
    /// driver records them per run), so the point is reproducible without
    /// out-of-band context.
    pub fn from_run(
        benchmark: impl Into<String>,
        stm: impl Into<String>,
        threads: usize,
        profile: SizeProfile,
        grain_shift: u32,
        result: &RunResult,
    ) -> Self {
        SnapshotPoint {
            benchmark: benchmark.into(),
            stm: stm.into(),
            threads: threads as u64,
            seed: result.seed,
            profile: profile.label().to_string(),
            clock: result.clock.label().to_string(),
            table_layout: result.table_layout.label().to_string(),
            pin: result.placement.policy.label().to_string(),
            grain_shift: grain_shift as u64,
            elapsed_secs: sanitize_f64(result.elapsed.as_secs_f64()),
            operations: result.operations,
            commits: result.stats.totals.commits,
            aborts: result.stats.totals.aborts,
            throughput: sanitize_f64(result.throughput()),
            wait_share: sanitize_f64(result.wait_share()),
            backoff_share: sanitize_f64(result.backoff_share()),
        }
    }

    /// The point's identity for diff matching: everything that determines
    /// *what* was measured, none of the measured values.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.benchmark,
            self.stm,
            self.threads,
            self.seed,
            self.profile,
            self.clock,
            self.table_layout,
            self.pin,
            self.grain_shift
        )
    }

    /// Abort ratio of the point (aborts / attempts; 0 on no attempts).
    pub fn abort_ratio(&self) -> f64 {
        let attempts = self.commits.saturating_add(self.aborts);
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("stm".into(), Json::Str(self.stm.clone())),
            ("threads".into(), Json::UInt(self.threads)),
            ("seed".into(), Json::UInt(self.seed)),
            ("profile".into(), Json::Str(self.profile.clone())),
            ("clock".into(), Json::Str(self.clock.clone())),
            ("table_layout".into(), Json::Str(self.table_layout.clone())),
            ("pin".into(), Json::Str(self.pin.clone())),
            ("grain_shift".into(), Json::UInt(self.grain_shift)),
            ("elapsed_secs".into(), Json::Float(self.elapsed_secs)),
            ("operations".into(), Json::UInt(self.operations)),
            ("commits".into(), Json::UInt(self.commits)),
            ("aborts".into(), Json::UInt(self.aborts)),
            ("throughput".into(), Json::Float(self.throughput)),
            ("wait_share".into(), Json::Float(self.wait_share)),
            ("backoff_share".into(), Json::Float(self.backoff_share)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        Ok(SnapshotPoint {
            benchmark: require_str(json, "benchmark", "point")?,
            stm: require_str(json, "stm", "point")?,
            threads: require_u64(json, "threads", "point")?,
            seed: require_u64(json, "seed", "point")?,
            profile: require_str(json, "profile", "point")?,
            clock: require_str(json, "clock", "point")?,
            table_layout: require_str(json, "table_layout", "point")?,
            pin: require_str(json, "pin", "point")?,
            grain_shift: require_u64(json, "grain_shift", "point")?,
            elapsed_secs: require_f64(json, "elapsed_secs", "point")?,
            operations: require_u64(json, "operations", "point")?,
            commits: require_u64(json, "commits", "point")?,
            aborts: require_u64(json, "aborts", "point")?,
            throughput: require_f64(json, "throughput", "point")?,
            wait_share: require_f64(json, "wait_share", "point")?,
            backoff_share: require_f64(json, "backoff_share", "point")?,
        })
    }
}

impl fmt::Display for SnapshotPoint {
    /// The `(benchmark × STM × threads)` form the gate messages use.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} × {} threads [{}/{}/{}/{}]",
            self.benchmark,
            self.stm,
            self.threads,
            self.profile,
            self.clock,
            self.table_layout,
            self.pin
        )
    }
}

/// One `stm_primitives` bench timing (mean nanoseconds per iteration), as
/// emitted by the criterion stand-in's `STM_BENCH_TIMINGS` hook.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchTiming {
    /// Full benchmark id (`group/function/parameter`).
    pub name: String,
    /// Mean time per iteration in nanoseconds.
    pub mean_nanos: f64,
}

impl BenchTiming {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("mean_nanos".into(), Json::Float(self.mean_nanos)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        Ok(BenchTiming {
            name: require_str(json, "name", "bench")?,
            mean_nanos: require_f64(json, "mean_nanos", "bench")?,
        })
    }
}

/// A full performance snapshot: machine profile, measured sweep points and
/// (optionally) bench-harness timings.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSnapshot {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Human-chosen label (usually derived from the file name).
    pub label: String,
    /// Machine the snapshot was measured on.
    pub machine: MachineProfile,
    /// Measured sweep points, in measurement order.
    pub points: Vec<SnapshotPoint>,
    /// `stm_primitives` bench timings (may be empty).
    pub bench: Vec<BenchTiming>,
}

impl BenchSnapshot {
    /// A snapshot of the current machine with the given label and points.
    pub fn new(label: impl Into<String>, points: Vec<SnapshotPoint>) -> Self {
        BenchSnapshot {
            schema_version: SCHEMA_VERSION,
            label: label.into(),
            machine: MachineProfile::current(),
            points,
            bench: Vec::new(),
        }
    }

    /// Serializes the snapshot to its pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        Json::Object(vec![
            ("schema_version".into(), Json::UInt(self.schema_version)),
            ("label".into(), Json::Str(self.label.clone())),
            ("machine".into(), self.machine.to_json()),
            (
                "points".into(),
                Json::Array(self.points.iter().map(SnapshotPoint::to_json).collect()),
            ),
            (
                "bench".into(),
                Json::Array(self.bench.iter().map(BenchTiming::to_json).collect()),
            ),
        ])
        .to_pretty_string()
    }

    /// Parses a snapshot document.
    ///
    /// Unknown fields are ignored (forward compatibility); a missing or
    /// unsupported `schema_version` is an error.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first problem: malformed JSON, a
    /// wrong schema version, or a missing/invalid required field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let json = parse_json(text)?;
        let version = json
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("snapshot: missing or invalid field 'schema_version'")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "snapshot: unsupported schema_version {version} (this binary reads \
                 version {SCHEMA_VERSION})"
            ));
        }
        let machine = MachineProfile::from_json(
            json.get("machine")
                .ok_or("snapshot: missing field 'machine'")?,
        )?;
        let points = json
            .get("points")
            .and_then(Json::as_array)
            .ok_or("snapshot: missing or invalid field 'points'")?
            .iter()
            .map(SnapshotPoint::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        // `bench` is optional: snapshots from sweep-only runs omit it.
        let bench = match json.get("bench") {
            None | Some(Json::Null) => Vec::new(),
            Some(value) => value
                .as_array()
                .ok_or("snapshot: field 'bench' must be an array")?
                .iter()
                .map(BenchTiming::from_json)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(BenchSnapshot {
            schema_version: version,
            label: require_str(&json, "label", "snapshot")?,
            machine,
            points,
            bench,
        })
    }
}

fn require_str(json: &Json, key: &str, context: &str) -> Result<String, String> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{context}: missing or invalid field '{key}'"))
}

fn require_u64(json: &Json, key: &str, context: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{context}: missing or invalid field '{key}'"))
}

fn require_f64(json: &Json, key: &str, context: &str) -> Result<f64, String> {
    json.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{context}: missing or invalid field '{key}'"))
}

// ---------------------------------------------------------------------------
// Point recorder
// ---------------------------------------------------------------------------

struct RecorderState {
    armed: bool,
    points: Vec<SnapshotPoint>,
}

fn recorder() -> &'static Mutex<RecorderState> {
    static RECORDER: OnceLock<Mutex<RecorderState>> = OnceLock::new();
    RECORDER.get_or_init(|| {
        Mutex::new(RecorderState {
            armed: false,
            points: Vec::new(),
        })
    })
}

/// Arms the process-wide snapshot recorder: from now on every
/// [`crate::runner::run_point`] appends its measurement as a
/// [`SnapshotPoint`]. The `repro` binary arms it when `--snapshot` is
/// given, runs the requested experiments, then drains with
/// [`take_recorded`] — so snapshot capture rides along the normal sweep at
/// zero extra measurement cost.
pub fn arm_recorder() {
    let mut state = recorder().lock().expect("snapshot recorder poisoned");
    state.armed = true;
    state.points.clear();
}

/// Whether the recorder is currently armed.
pub fn recorder_armed() -> bool {
    recorder().lock().expect("snapshot recorder poisoned").armed
}

/// Appends a point if the recorder is armed (no-op otherwise).
pub fn record_point(point: SnapshotPoint) {
    let mut state = recorder().lock().expect("snapshot recorder poisoned");
    if state.armed {
        state.points.push(point);
    }
}

/// Disarms the recorder and returns everything recorded since
/// [`arm_recorder`].
pub fn take_recorded() -> Vec<SnapshotPoint> {
    let mut state = recorder().lock().expect("snapshot recorder poisoned");
    state.armed = false;
    std::mem::take(&mut state.points)
}

// ---------------------------------------------------------------------------
// Bench timings import
// ---------------------------------------------------------------------------

/// Parses the tab-separated `name\tmean_nanos` lines the criterion
/// stand-in appends to `$STM_BENCH_TIMINGS` during a real bench run.
/// Blank lines are skipped; a benchmark re-run within one file keeps the
/// *last* timing (matching criterion's overwrite-on-rerun behaviour).
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_bench_timings(text: &str) -> Result<Vec<BenchTiming>, String> {
    let mut timings: Vec<BenchTiming> = Vec::new();
    for (index, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (name, nanos) = line
            .rsplit_once('\t')
            .ok_or_else(|| format!("bench timings line {}: missing tab", index + 1))?;
        let mean_nanos: f64 = nanos.trim().parse().map_err(|_| {
            format!(
                "bench timings line {}: invalid mean '{}'",
                index + 1,
                nanos.trim()
            )
        })?;
        if !mean_nanos.is_finite() || mean_nanos < 0.0 {
            return Err(format!(
                "bench timings line {}: mean must be finite and non-negative",
                index + 1
            ));
        }
        match timings.iter_mut().find(|t| t.name == name) {
            Some(existing) => existing.mean_nanos = mean_nanos,
            None => timings.push(BenchTiming {
                name: name.to_string(),
                mean_nanos,
            }),
        }
    }
    Ok(timings)
}

// ---------------------------------------------------------------------------
// Diff gates
// ---------------------------------------------------------------------------

/// Per-metric tolerances of the diff gates.
///
/// The defaults are sized for quick-profile points on a shared container
/// (run-to-run jitter of ±10–20 % is normal; EXPERIMENTS.md records the
/// noise floor): the gates exist to catch real regressions — a 30 % drop
/// trips the default throughput gate — not scheduler variance.
#[derive(Clone, Copy, Debug)]
pub struct GateTolerances {
    /// Throughput gate: `current ≥ throughput × baseline` must hold.
    pub throughput: f64,
    /// Wait-share gate: `current ≤ baseline + wait_share_slack` (absolute).
    pub wait_share_slack: f64,
    /// Abort gate factor: `current ≤ baseline × abort_factor + abort_slack`.
    pub abort_factor: f64,
    /// Abort gate additive slack.
    pub abort_slack: f64,
    /// Bench-timing gate: `current_mean ≤ bench_factor × baseline_mean`.
    pub bench_factor: f64,
}

impl Default for GateTolerances {
    fn default() -> Self {
        GateTolerances {
            throughput: 0.75,
            wait_share_slack: 0.10,
            abort_factor: 1.5,
            abort_slack: 0.05,
            bench_factor: 1.5,
        }
    }
}

impl GateTolerances {
    /// Returns a copy with a different throughput tolerance (the knob the
    /// CI gate loosens for cross-machine single-thread comparisons).
    pub fn with_throughput(mut self, throughput: f64) -> Self {
        self.throughput = throughput;
        self
    }
}

/// Diffs `current` against `baseline` point-by-point under `tolerances`.
///
/// Points are matched by [`SnapshotPoint::key`]; repeated keys (the
/// granularity sweeps measure identical configurations more than once) are
/// paired by occurrence order. Baseline points absent from the current
/// snapshot — and vice versa — are surfaced as loud skip lines, never
/// failures, so experiment-set evolution does not break the gate.
///
/// When the machine profiles are not [`MachineProfile::comparable`], every
/// multi-thread gate is skipped as vacuous (one loud summary line plus a
/// per-point skip line) and only single-thread points remain gated: a
/// 1-thread run has no parallelism to invert, so its regressions are
/// meaningful across machines, while multi-thread numbers are not.
pub fn diff_snapshots(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    tolerances: &GateTolerances,
) -> ShapeReport {
    let mut report = ShapeReport::with_title(format!(
        "Perf-snapshot diff: '{}' (baseline) vs '{}'",
        baseline.label, current.label
    ));

    let comparable = baseline.machine.comparable(&current.machine);
    if comparable {
        report.record(Ok(format!(
            "machine profiles match ({} cores, {}, debug_assertions={})",
            baseline.machine.cores, baseline.machine.arch, baseline.machine.debug_assertions
        )));
    } else {
        report.record(Ok(format!(
            "MACHINE PROFILES DIFFER ({}) — multi-thread gates are vacuous and \
             SKIPPED; only single-thread points are gated",
            baseline.machine.mismatch_description(&current.machine)
        )));
    }

    // Pair the k-th occurrence of a key in the baseline with the k-th in
    // the current snapshot (both sweeps emit points in experiment order).
    let mut matched_current: Vec<bool> = vec![false; current.points.len()];
    let mut matched_pairs = 0usize;
    for base_point in &baseline.points {
        let key = base_point.key();
        let candidate = current
            .points
            .iter()
            .enumerate()
            .find(|(i, p)| !matched_current[*i] && p.key() == key);
        let Some((index, cur_point)) = candidate else {
            report.record(Ok(format!(
                "{base_point}: skipped — point only in baseline snapshot"
            )));
            continue;
        };
        matched_current[index] = true;
        matched_pairs += 1;
        if !comparable && base_point.threads > 1 {
            report.record(Ok(format!(
                "{base_point}: skipped — vacuous under differing machine profiles \
                 (multi-thread point)"
            )));
            continue;
        }
        let label = base_point.to_string();
        report.record(check_self_throughput(
            &label,
            base_point.throughput,
            cur_point.throughput,
            tolerances.throughput,
        ));
        report.record(check_self_wait_share(
            &label,
            base_point.wait_share,
            cur_point.wait_share,
            tolerances.wait_share_slack,
        ));
        report.record(check_self_abort_ratio(
            &label,
            base_point.abort_ratio(),
            cur_point.abort_ratio(),
            tolerances.abort_factor,
            tolerances.abort_slack,
        ));
    }
    for (index, matched) in matched_current.iter().enumerate() {
        if !matched {
            report.record(Ok(format!(
                "{}: skipped — point only in current snapshot",
                current.points[index]
            )));
        }
    }
    if matched_pairs == 0 {
        report.record(Ok(
            "no common points between the snapshots — every gate was vacuous".to_string(),
        ));
    }

    // Bench timings are single-thread microbenchmarks, but their absolute
    // nanoseconds swing with CPU generation and build mode, so they are
    // only gated under comparable profiles.
    for base_timing in &baseline.bench {
        let Some(cur_timing) = current.bench.iter().find(|t| t.name == base_timing.name) else {
            report.record(Ok(format!(
                "bench {}: skipped — timing only in baseline snapshot",
                base_timing.name
            )));
            continue;
        };
        if !comparable {
            report.record(Ok(format!(
                "bench {}: skipped — vacuous under differing machine profiles",
                base_timing.name
            )));
            continue;
        }
        let bound = base_timing.mean_nanos * tolerances.bench_factor;
        if cur_timing.mean_nanos <= bound {
            report.record(Ok(format!(
                "bench {}: {:.1} ns within {:.2}x of baseline {:.1} ns",
                base_timing.name,
                cur_timing.mean_nanos,
                tolerances.bench_factor,
                base_timing.mean_nanos
            )));
        } else {
            report.record(Err(format!(
                "bench {}: regressed — {:.1} ns exceeds {:.2}x of baseline {:.1} ns",
                base_timing.name,
                cur_timing.mean_nanos,
                tolerances.bench_factor,
                base_timing.mean_nanos
            )));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(benchmark: &str, stm: &str, threads: u64, throughput: f64) -> SnapshotPoint {
        SnapshotPoint {
            benchmark: benchmark.into(),
            stm: stm.into(),
            threads,
            seed: 7,
            profile: "quick".into(),
            clock: "strict".into(),
            table_layout: "flat".into(),
            pin: "none".into(),
            grain_shift: 1,
            elapsed_secs: 0.2,
            operations: 1000,
            commits: 1000,
            aborts: 10,
            throughput,
            wait_share: 0.02,
            backoff_share: 0.01,
        }
    }

    fn snapshot(label: &str, points: Vec<SnapshotPoint>) -> BenchSnapshot {
        BenchSnapshot {
            schema_version: SCHEMA_VERSION,
            label: label.into(),
            machine: MachineProfile {
                cores: 4,
                kernel: "6.0-test".into(),
                os: "linux".into(),
                arch: "x86_64".into(),
                debug_assertions: false,
            },
            points,
            bench: Vec::new(),
        }
    }

    #[test]
    fn json_value_accessors() {
        let json = parse_json(r#"{"a": 1, "b": [true, null], "c": "x", "d": 1.5}"#).unwrap();
        assert_eq!(json.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("d").unwrap().as_f64(), Some(1.5));
        assert_eq!(json.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(json.get("b").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            json.get("b").unwrap().as_array().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(json.get("missing").is_none());
        assert!(Json::Null.get("a").is_none());
    }

    #[test]
    fn writer_escapes_and_parser_unescapes() {
        let original =
            Json::Str("quote \" backslash \\ newline \n tab \t nul \u{0001} é 💡".into());
        let text = original.to_pretty_string();
        assert!(text.contains("\\\""), "{text}");
        assert!(text.contains("\\\\"), "{text}");
        assert!(text.contains("\\n"), "{text}");
        assert!(text.contains("\\u0001"), "{text}");
        assert_eq!(parse_json(&text).unwrap(), original);
    }

    #[test]
    fn parser_handles_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse_json(r#""éA""#).unwrap(), Json::Str("éA".into()));
        // 💡 is U+1F4A1 = surrogate pair D83D DCA1.
        assert_eq!(parse_json(r#""💡""#).unwrap(), Json::Str("💡".into()));
        assert!(parse_json(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse_json(r#""\udca1""#).is_err(), "lone low surrogate");
        assert!(parse_json(r#""\ud83dA""#).is_err(), "bad low half");
        assert!(parse_json(r#""\uZZZZ""#).is_err(), "bad hex");
    }

    #[test]
    fn numbers_round_trip_exactly() {
        // Full-range u64 stays bit-exact.
        let json = Json::UInt(u64::MAX);
        assert_eq!(parse_json(&json.to_pretty_string()).unwrap(), json);
        // Integer-looking floats keep their float-ness through `.0`.
        let json = Json::Float(2.0);
        let text = json.to_pretty_string();
        assert!(text.starts_with("2.0"), "{text}");
        assert_eq!(parse_json(&text).unwrap(), json);
        // Shortest-round-trip decimals come back bit-exact.
        for x in [0.1, 1e300, -3.25e-9, f64::MIN_POSITIVE, -0.0] {
            let json = Json::Float(x);
            assert_eq!(parse_json(&json.to_pretty_string()).unwrap(), json);
        }
        // Numbers beyond u64 fall back to float instead of failing.
        assert!(matches!(
            parse_json("18446744073709551616").unwrap(),
            Json::Float(_)
        ));
        // Negative integers parse as floats (the schema never writes them).
        assert_eq!(parse_json("-5").unwrap(), Json::Float(-5.0));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "\"bad \\q escape\"",
            "nul",
            "1e999",
            "-",
            "\u{0007}",
        ] {
            assert!(parse_json(bad).is_err(), "must reject {bad:?}");
        }
        // Depth bomb: one past the limit fails, the limit itself is fine.
        let deep_ok = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(parse_json(&deep_ok).is_ok());
        let deep_bad = format!(
            "{}1{}",
            "[".repeat(MAX_JSON_DEPTH + 1),
            "]".repeat(MAX_JSON_DEPTH + 1)
        );
        assert!(parse_json(&deep_bad).is_err());
    }

    #[test]
    fn snapshot_document_round_trips() {
        let mut snap = snapshot("base", vec![point("rbtree", "SwissTM", 2, 5000.0)]);
        snap.bench.push(BenchTiming {
            name: "primitives_read/swisstm_read_64".into(),
            mean_nanos: 812.5,
        });
        let text = snap.to_json_string();
        assert_eq!(BenchSnapshot::parse(&text).unwrap(), snap);
    }

    #[test]
    fn parse_tolerates_unknown_fields_and_missing_bench() {
        let text = r#"{
            "schema_version": 1,
            "label": "fwd",
            "future_field": {"nested": [1, 2, {"deep": true}]},
            "machine": {"cores": 2, "kernel": "k", "os": "linux",
                        "arch": "x86_64", "debug_assertions": false,
                        "numa_nodes": 2},
            "points": []
        }"#;
        let snap = BenchSnapshot::parse(text).expect("unknown fields must be ignored");
        assert_eq!(snap.label, "fwd");
        assert_eq!(snap.machine.cores, 2);
        assert!(snap.bench.is_empty());
    }

    #[test]
    fn parse_rejects_wrong_schema_version_and_missing_fields() {
        let wrong_version = r#"{"schema_version": 2, "label": "x",
            "machine": {"cores": 1, "kernel": "k", "os": "l", "arch": "a",
                        "debug_assertions": true},
            "points": []}"#;
        let message = BenchSnapshot::parse(wrong_version).unwrap_err();
        assert!(message.contains("schema_version 2"), "{message}");
        let missing_machine = r#"{"schema_version": 1, "label": "x", "points": []}"#;
        assert!(BenchSnapshot::parse(missing_machine).is_err());
    }

    #[test]
    fn sanitize_clamps_non_finite() {
        assert_eq!(sanitize_f64(f64::NAN), 0.0);
        assert_eq!(sanitize_f64(f64::INFINITY), 0.0);
        assert_eq!(sanitize_f64(1.5), 1.5);
    }

    #[test]
    fn recorder_is_disarmed_by_default_and_drains() {
        assert!(!recorder_armed());
        record_point(point("never", "recorded", 1, 1.0));
        arm_recorder();
        record_point(point("rb", "SwissTM", 1, 10.0));
        record_point(point("rb", "SwissTM", 2, 20.0));
        let drained = take_recorded();
        assert_eq!(drained.len(), 2, "the unarmed point must not appear");
        assert!(!recorder_armed());
        assert!(take_recorded().is_empty());
    }

    #[test]
    fn bench_timings_parse_and_keep_last_rerun() {
        let text = "a/b\t12.5\n\nweird name \"with\" spaces\t3\na/b\t14.0\n";
        let timings = parse_bench_timings(text).unwrap();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].name, "a/b");
        assert_eq!(timings[0].mean_nanos, 14.0);
        assert_eq!(timings[1].name, "weird name \"with\" spaces");
        assert!(parse_bench_timings("no tab here\n").is_err());
        assert!(parse_bench_timings("a\tNaN\n").is_err());
        assert!(parse_bench_timings("a\t-1\n").is_err());
    }

    #[test]
    fn diff_of_identical_snapshots_passes() {
        let snap = snapshot(
            "base",
            vec![
                point("rb", "SwissTM", 1, 1000.0),
                point("rb", "SwissTM", 2, 1800.0),
            ],
        );
        let report = diff_snapshots(&snap, &snap, &GateTolerances::default());
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn duplicate_keys_pair_by_occurrence() {
        // The same configuration measured twice (granularity-sweep style):
        // the second occurrence regressed, and the failure must surface
        // even though the first occurrence is fine.
        let base = snapshot(
            "base",
            vec![
                point("rb", "SwissTM", 1, 1000.0),
                point("rb", "SwissTM", 1, 1000.0),
            ],
        );
        let cur = snapshot(
            "cur",
            vec![
                point("rb", "SwissTM", 1, 1000.0),
                point("rb", "SwissTM", 1, 100.0),
            ],
        );
        let report = diff_snapshots(&base, &cur, &GateTolerances::default());
        assert_eq!(report.failures.len(), 1, "{report}");
    }

    #[test]
    fn profile_mismatch_skips_multithread_gates_but_keeps_single_thread() {
        let base = snapshot(
            "1core-box",
            vec![
                point("rb", "SwissTM", 1, 1000.0),
                point("rb", "SwissTM", 4, 4000.0),
            ],
        );
        let mut cur = snapshot(
            "8core-box",
            vec![
                point("rb", "SwissTM", 1, 1000.0),
                // Collapsed multi-thread throughput: must NOT fail the
                // gate, because the machines differ.
                point("rb", "SwissTM", 4, 10.0),
            ],
        );
        cur.machine.cores = 8;
        let report = diff_snapshots(&base, &cur, &GateTolerances::default());
        assert!(report.passed(), "{report}");
        let rendered = report.to_string();
        assert!(rendered.contains("MACHINE PROFILES DIFFER"), "{rendered}");
        assert!(rendered.contains("cores 4 vs 8"), "{rendered}");
        assert!(
            rendered.contains("vacuous under differing machine profiles"),
            "{rendered}"
        );

        // The single-thread point stays gated: regress it and the diff
        // must fail even across machines.
        cur.points[0].throughput = 100.0;
        let report = diff_snapshots(&base, &cur, &GateTolerances::default());
        assert!(!report.passed(), "{report}");
        assert!(
            report.failures[0].contains("rb × SwissTM × 1 threads"),
            "{report}"
        );
    }

    #[test]
    fn debug_assertions_mismatch_also_voids_multithread_gates() {
        let base = snapshot("release", vec![point("rb", "TL2", 2, 2000.0)]);
        let mut cur = snapshot("debug", vec![point("rb", "TL2", 2, 200.0)]);
        cur.machine.debug_assertions = true;
        let report = diff_snapshots(&base, &cur, &GateTolerances::default());
        assert!(report.passed(), "{report}");
        assert!(
            report
                .to_string()
                .contains("debug_assertions false vs true"),
            "{report}"
        );
    }

    #[test]
    fn unmatched_points_skip_loudly_instead_of_failing() {
        let base = snapshot("base", vec![point("only-old", "SwissTM", 1, 1000.0)]);
        let cur = snapshot("cur", vec![point("only-new", "TL2", 1, 1000.0)]);
        let report = diff_snapshots(&base, &cur, &GateTolerances::default());
        assert!(report.passed(), "{report}");
        let rendered = report.to_string();
        assert!(rendered.contains("only in baseline snapshot"), "{rendered}");
        assert!(rendered.contains("only in current snapshot"), "{rendered}");
        assert!(rendered.contains("every gate was vacuous"), "{rendered}");
    }

    #[test]
    fn bench_timing_gate_passes_and_fails() {
        let mut base = snapshot("base", Vec::new());
        base.bench.push(BenchTiming {
            name: "primitives_write/tl2_write_16".into(),
            mean_nanos: 100.0,
        });
        let mut ok = snapshot("ok", Vec::new());
        ok.bench.push(BenchTiming {
            name: "primitives_write/tl2_write_16".into(),
            mean_nanos: 120.0,
        });
        assert!(diff_snapshots(&base, &ok, &GateTolerances::default()).passed());
        let mut slow = snapshot("slow", Vec::new());
        slow.bench.push(BenchTiming {
            name: "primitives_write/tl2_write_16".into(),
            mean_nanos: 200.0,
        });
        let report = diff_snapshots(&base, &slow, &GateTolerances::default());
        assert!(!report.passed());
        assert!(
            report.failures[0].contains("primitives_write/tl2_write_16"),
            "{report}"
        );
    }
}
