//! One function per figure/table of the paper's evaluation.
//!
//! Every function sweeps the same parameters as the corresponding figure
//! and returns a [`Table`] whose rows are the figure's data series. The
//! absolute numbers depend on the machine (and, for the quick options, on
//! heavily scaled-down workloads); EXPERIMENTS.md records a measured run
//! and compares its *shape* against the paper.

use rstm::RstmVariant;
use stm_workloads::lee::LeeConfig;
use stm_workloads::rbtree::RbTreeConfig;
use stm_workloads::stamp::StampApp;
use stm_workloads::stmbench7::WorkloadMix;

use crate::runner::{run_point, Benchmark, CmChoice, RunOptions, StmVariant};
use crate::table::{format_ktps, format_seconds, format_speedup_minus_one, Table};

/// Figure 2: STMBench7 throughput of the four STMs for the three workload
/// mixes over the thread sweep.
pub fn figure2(options: &RunOptions) -> Vec<Table> {
    let mixes = [
        WorkloadMix::read_dominated(),
        WorkloadMix::read_write(),
        WorkloadMix::write_dominated(),
    ];
    let variants = [
        StmVariant::Swiss(CmChoice::Default),
        StmVariant::Tiny(CmChoice::Default),
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Serializer),
        StmVariant::Tl2(CmChoice::Default),
    ];
    mixes
        .iter()
        .map(|mix| {
            let mut table = Table::new(
                format!("Figure 2: STMBench7 {} workload", mix.name),
                "Throughput [10^3 tx/s] per thread count",
            )
            .headers(
                std::iter::once("threads".to_string()).chain(variants.iter().map(|v| v.label())),
            );
            for threads in options.thread_counts() {
                let mut row = vec![threads.to_string()];
                for variant in variants {
                    let result = run_point(variant, &Benchmark::Bench7(*mix), threads, options);
                    row.push(format_ktps(result.throughput()));
                }
                table.push_row(row);
            }
            table
        })
        .collect()
}

/// Figure 3: speedup (minus one) of SwissTM over TL2 and over TinySTM for
/// the ten STAMP workloads at 1, 2, 4 and 8 threads.
pub fn figure3(options: &RunOptions) -> Vec<Table> {
    let thread_points: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= options.max_threads)
        .collect();
    let baselines = [
        (StmVariant::Tl2(CmChoice::Default), "SwissTM vs TL2"),
        (StmVariant::Tiny(CmChoice::Default), "SwissTM vs TinySTM"),
    ];
    baselines
        .iter()
        .map(|(baseline, title)| {
            let mut table = Table::new(
                format!("Figure 3: {title} (STAMP)"),
                "Speedup - 1 per workload (positive = SwissTM faster)",
            )
            .headers(
                std::iter::once("workload".to_string())
                    .chain(thread_points.iter().map(|t| format!("{t} thr"))),
            );
            for app in StampApp::all() {
                let mut row = vec![app.label().to_string()];
                for &threads in &thread_points {
                    let benchmark = Benchmark::Stamp(app);
                    let swiss = run_point(
                        StmVariant::Swiss(CmChoice::Default),
                        &benchmark,
                        threads,
                        options,
                    );
                    let base = run_point(*baseline, &benchmark, threads, options);
                    let ratio = base.elapsed.as_secs_f64() / swiss.elapsed.as_secs_f64().max(1e-9);
                    row.push(format_speedup_minus_one(ratio));
                }
                table.push_row(row);
            }
            table
        })
        .collect()
}

/// Figure 4: Lee-TM execution time for the memory and mainboard inputs.
pub fn figure4(options: &RunOptions) -> Vec<Table> {
    let boards = [
        ("memory board", LeeConfig::memory_board_at(options.profile)),
        ("main board", LeeConfig::main_board_at(options.profile)),
    ];
    let variants = [
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Default),
        StmVariant::Tiny(CmChoice::Default),
        StmVariant::Swiss(CmChoice::Default),
    ];
    boards
        .iter()
        .map(|(name, config)| {
            let mut table = Table::new(
                format!("Figure 4: Lee-TM execution time, {name}"),
                "Duration [s] per thread count",
            )
            .headers(
                std::iter::once("threads".to_string()).chain(variants.iter().map(|v| v.label())),
            );
            for threads in options.thread_counts() {
                let mut row = vec![threads.to_string()];
                for variant in variants {
                    let result = run_point(variant, &Benchmark::Lee(*config), threads, options);
                    row.push(format_seconds(result.elapsed));
                }
                table.push_row(row);
            }
            table
        })
        .collect()
}

/// Figure 5: red-black tree throughput (range 16 384, 20 % updates).
pub fn figure5(options: &RunOptions) -> Table {
    let variants = [
        StmVariant::Swiss(CmChoice::Default),
        StmVariant::Tl2(CmChoice::Default),
        StmVariant::Tiny(CmChoice::Default),
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Default),
    ];
    let mut table = Table::new(
        "Figure 5: red-black tree throughput",
        "Throughput [10^3 tx/s], range 16384, 20% updates",
    )
    .headers(std::iter::once("threads".to_string()).chain(variants.iter().map(|v| v.label())));
    for threads in options.thread_counts() {
        let mut row = vec![threads.to_string()];
        for variant in variants {
            let result = run_point(
                variant,
                &Benchmark::RbTree(RbTreeConfig::paper_default()),
                threads,
                options,
            );
            row.push(format_ktps(result.throughput()));
        }
        table.push_row(row);
    }
    table
}

/// Figure 7: eager vs lazy conflict detection in the read-dominated
/// STMBench7 workload.
pub fn figure7(options: &RunOptions) -> Table {
    let variants = [
        StmVariant::Tiny(CmChoice::Default),
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Default),
        StmVariant::Rstm(RstmVariant::lazy_invisible(), CmChoice::Default),
        StmVariant::Tl2(CmChoice::Default),
    ];
    let mut table = Table::new(
        "Figure 7: eager vs lazy conflict detection (read-dominated STMBench7)",
        "Throughput [10^3 tx/s]; TinySTM/RSTM-eager are eager, RSTM-lazy/TL2 are lazy",
    )
    .headers(std::iter::once("threads".to_string()).chain(variants.iter().map(|v| v.label())));
    for threads in options.thread_counts() {
        let mut row = vec![threads.to_string()];
        for variant in variants {
            let result = run_point(
                variant,
                &Benchmark::Bench7(WorkloadMix::read_dominated()),
                threads,
                options,
            );
            row.push(format_ktps(result.throughput()));
        }
        table.push_row(row);
    }
    table
}

/// Figure 8: the "irregular" Lee-TM experiment (hot word updated by R % of
/// the transactions), SwissTM vs TinySTM.
pub fn figure8(options: &RunOptions) -> Table {
    let ratios = [0u64, 5, 20];
    let mut headers = vec!["threads".to_string()];
    for &r in &ratios {
        headers.push(format!("SwissTM R={r}%"));
        headers.push(format!("TinySTM R={r}%"));
    }
    let mut table = Table::new(
        "Figure 8: irregular Lee-TM (memory board)",
        "Duration [s]; R = fraction of transactions updating the shared hot word",
    )
    .headers(headers);
    for threads in options.thread_counts() {
        let mut row = vec![threads.to_string()];
        for &r in &ratios {
            let config = LeeConfig::memory_board_at(options.profile).with_irregular_updates(r);
            let swiss = run_point(
                StmVariant::Swiss(CmChoice::Default),
                &Benchmark::Lee(config),
                threads,
                options,
            );
            let tiny = run_point(
                StmVariant::Tiny(CmChoice::Default),
                &Benchmark::Lee(config),
                threads,
                options,
            );
            row.push(format_seconds(swiss.elapsed));
            row.push(format_seconds(tiny.elapsed));
        }
        table.push_row(row);
    }
    table
}

/// Figure 9: Polka vs Greedy contention management in RSTM on the
/// read-dominated STMBench7 workload.
pub fn figure9(options: &RunOptions) -> Table {
    let variants = [
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Greedy),
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Polka),
    ];
    let mut table = Table::new(
        "Figure 9: Polka vs Greedy (RSTM, read-dominated STMBench7)",
        "Throughput [10^3 tx/s]",
    )
    .headers(std::iter::once("threads".to_string()).chain(variants.iter().map(|v| v.label())));
    for threads in options.thread_counts() {
        let mut row = vec![threads.to_string()];
        for variant in variants {
            let result = run_point(
                variant,
                &Benchmark::Bench7(WorkloadMix::read_dominated()),
                threads,
                options,
            );
            row.push(format_ktps(result.throughput()));
        }
        table.push_row(row);
    }
    table
}

/// Figure 10: the two-phase contention manager vs Greedy inside SwissTM on
/// the red-black tree microbenchmark.
pub fn figure10(options: &RunOptions) -> Table {
    let variants = [
        StmVariant::Swiss(CmChoice::TwoPhase),
        StmVariant::Swiss(CmChoice::Greedy),
    ];
    let mut table = Table::new(
        "Figure 10: two-phase vs Greedy (SwissTM, red-black tree)",
        "Throughput [10^3 tx/s]",
    )
    .headers(std::iter::once("threads".to_string()).chain(variants.iter().map(|v| v.label())));
    for threads in options.thread_counts() {
        let mut row = vec![threads.to_string()];
        for variant in variants {
            let result = run_point(
                variant,
                &Benchmark::RbTree(RbTreeConfig::paper_default()),
                threads,
                options,
            );
            row.push(format_ktps(result.throughput()));
        }
        table.push_row(row);
    }
    table
}

/// Figure 11: back-off vs no back-off after rollbacks (SwissTM, STAMP
/// intruder).
pub fn figure11(options: &RunOptions) -> Table {
    let variants = [
        StmVariant::Swiss(CmChoice::TwoPhaseNoBackoff),
        StmVariant::Swiss(CmChoice::TwoPhase),
    ];
    let mut table = Table::new(
        "Figure 11: back-off vs no back-off (SwissTM, intruder)",
        "Duration [s]",
    )
    .headers(["threads", "No backoff", "Linear backoff"]);
    for threads in options.thread_counts() {
        let mut row = vec![threads.to_string()];
        for variant in variants {
            let result = run_point(
                variant,
                &Benchmark::Stamp(StampApp::Intruder),
                threads,
                options,
            );
            row.push(format_seconds(result.elapsed));
        }
        table.push_row(row);
    }
    table
}

/// Figure 12: speedup of the two-phase contention manager over timid inside
/// SwissTM on the three STMBench7 workloads.
pub fn figure12(options: &RunOptions) -> Table {
    let mixes = [
        WorkloadMix::read_dominated(),
        WorkloadMix::read_write(),
        WorkloadMix::write_dominated(),
    ];
    let mut table = Table::new(
        "Figure 12: two-phase vs timid contention manager (SwissTM, STMBench7)",
        "Speedup - 1 of two-phase over timid (positive = two-phase faster)",
    )
    .headers(
        std::iter::once("threads".to_string()).chain(mixes.iter().map(|m| m.name.to_string())),
    );
    for threads in options.thread_counts() {
        let mut row = vec![threads.to_string()];
        for mix in mixes {
            let two_phase = run_point(
                StmVariant::Swiss(CmChoice::TwoPhase),
                &Benchmark::Bench7(mix),
                threads,
                options,
            );
            let timid = run_point(
                StmVariant::Swiss(CmChoice::Timid),
                &Benchmark::Bench7(mix),
                threads,
                options,
            );
            let ratio = two_phase.throughput() / timid.throughput().max(1e-9);
            row.push(format_speedup_minus_one(ratio));
        }
        table.push_row(row);
    }
    table
}

/// The benchmark list used by the lock-granularity experiments (Figure 13
/// and Table 2): every benchmark family with a representative
/// configuration.
fn granularity_benchmarks(options: &RunOptions) -> Vec<Benchmark> {
    let mut benchmarks: Vec<Benchmark> =
        StampApp::all().into_iter().map(Benchmark::Stamp).collect();
    benchmarks.push(Benchmark::RbTree(RbTreeConfig::paper_default()));
    benchmarks.push(Benchmark::Lee(LeeConfig::memory_board_at(options.profile)));
    benchmarks.push(Benchmark::Lee(LeeConfig::main_board_at(options.profile)));
    benchmarks.push(Benchmark::Bench7(WorkloadMix::read_dominated()));
    benchmarks.push(Benchmark::Bench7(WorkloadMix::read_write()));
    benchmarks.push(Benchmark::Bench7(WorkloadMix::write_dominated()));
    benchmarks
}

/// Measures SwissTM throughput (operations per second) for one benchmark at
/// the maximum thread count and a given stripe granularity.
fn granularity_ops_per_second(
    benchmark: &Benchmark,
    grain_shift: u32,
    options: &RunOptions,
) -> f64 {
    let options = options.with_grain_shift(grain_shift);
    let threads = options.max_threads;
    let result = run_point(
        StmVariant::Swiss(CmChoice::Default),
        benchmark,
        threads,
        &options,
    );
    result.ops_per_second()
}

/// Figure 13: average speedup of each lock granularity against the others,
/// across all benchmarks, at the maximum thread count.
///
/// The paper's x-axis is stripe size in bytes (2^2 … 2^8 with 32-bit
/// words); our heap words are 64-bit, so `grain_shift` values 0…5 cover
/// 8…256 bytes and are reported in bytes for comparability.
pub fn figure13(options: &RunOptions) -> Table {
    let shifts: Vec<u32> = (0..=5).collect();
    let benchmarks = granularity_benchmarks(options);
    // ops/s per (benchmark, shift)
    let mut measurements: Vec<Vec<f64>> = Vec::new();
    for benchmark in &benchmarks {
        let per_shift: Vec<f64> = shifts
            .iter()
            .map(|&s| granularity_ops_per_second(benchmark, s, options))
            .collect();
        measurements.push(per_shift);
    }

    let mut table = Table::new(
        "Figure 13: lock granularity sweep (SwissTM, all benchmarks)",
        "Average speedup - 1 of each stripe size against all other sizes, max threads",
    )
    .headers(["stripe bytes", "avg speedup - 1"]);
    for (i, &shift) in shifts.iter().enumerate() {
        let mut ratios = Vec::new();
        for per_shift in &measurements {
            for (j, &other) in per_shift.iter().enumerate() {
                if i != j && other > 0.0 {
                    ratios.push(per_shift[i] / other);
                }
            }
        }
        let average = if ratios.is_empty() {
            1.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        };
        table.push_row([
            format!("{}", 8u32 << shift),
            format_speedup_minus_one(average),
        ]);
    }
    table
}

/// Table 2: per-benchmark comparison of three stripe granularities (the
/// paper's 2^4 vs 2^2, 2^4 vs 2^6 and 2^2 vs 2^6 bytes; ours are the
/// 64-bit-word equivalents 16, 8(=word) and 64 bytes).
pub fn table2(options: &RunOptions) -> Table {
    // grain shifts: 16 bytes = 1, 8 bytes (single word) = 0, 64 bytes = 3.
    let mut table = Table::new(
        "Table 2: lock granularity breakdown per benchmark (SwissTM, max threads)",
        "Relative speedups - 1: 16B vs 8B, 16B vs 64B, 8B vs 64B",
    )
    .headers(["benchmark", "16B vs 8B", "16B vs 64B", "8B vs 64B"]);
    let mut sums = [0.0f64; 3];
    let benchmarks = granularity_benchmarks(options);
    for benchmark in &benchmarks {
        let ops8 = granularity_ops_per_second(benchmark, 0, options);
        let ops16 = granularity_ops_per_second(benchmark, 1, options);
        let ops64 = granularity_ops_per_second(benchmark, 3, options);
        let r1 = ops16 / ops8.max(1e-9);
        let r2 = ops16 / ops64.max(1e-9);
        let r3 = ops8 / ops64.max(1e-9);
        sums[0] += r1;
        sums[1] += r2;
        sums[2] += r3;
        table.push_row([
            benchmark.label(),
            format_speedup_minus_one(r1),
            format_speedup_minus_one(r2),
            format_speedup_minus_one(r3),
        ]);
    }
    let n = benchmarks.len() as f64;
    table.push_row([
        "Average".to_string(),
        format_speedup_minus_one(sums[0] / n),
        format_speedup_minus_one(sums[1] / n),
        format_speedup_minus_one(sums[2] / n),
    ]);
    table
}

/// Table 1: effectiveness of the design-choice combinations (acquisition ×
/// read visibility × contention manager) on the read-write STMBench7
/// workload, measured as throughput at the maximum thread count.
pub fn table1(options: &RunOptions) -> Table {
    let threads = options.max_threads;
    let combos: Vec<(String, StmVariant)> = vec![
        (
            "lazy acquire / invisible reads".into(),
            StmVariant::Rstm(RstmVariant::lazy_invisible(), CmChoice::Polka),
        ),
        (
            "eager acquire / visible reads".into(),
            StmVariant::Rstm(RstmVariant::eager_visible(), CmChoice::Polka),
        ),
        (
            "eager acquire / invisible reads / Polka".into(),
            StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Polka),
        ),
        (
            "eager acquire / invisible reads / timid".into(),
            StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Timid),
        ),
        (
            "eager acquire / invisible reads / Greedy".into(),
            StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Greedy),
        ),
        (
            "mixed (SwissTM) / invisible reads / timid".into(),
            StmVariant::Swiss(CmChoice::Timid),
        ),
        (
            "mixed (SwissTM) / invisible reads / Greedy".into(),
            StmVariant::Swiss(CmChoice::Greedy),
        ),
        (
            "mixed (SwissTM) / invisible reads / two-phase".into(),
            StmVariant::Swiss(CmChoice::TwoPhase),
        ),
    ];
    let mut table = Table::new(
        "Table 1: effectiveness of STM design-choice combinations",
        "Read-write STMBench7 at max threads; higher throughput = more effective",
    )
    .headers([
        "acquire / reads / CM",
        "throughput [10^3 tx/s]",
        "abort ratio",
    ]);
    for (label, variant) in combos {
        let result = run_point(
            variant,
            &Benchmark::Bench7(WorkloadMix::read_write()),
            threads,
            options,
        );
        table.push_row([
            label,
            format_ktps(result.throughput()),
            format!("{:.3}", result.abort_ratio()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn smoke_options() -> RunOptions {
        RunOptions {
            max_threads: 2,
            point_duration: Duration::from_millis(20),
            heap_words: 1 << 20,
            lock_table_log2: 12,
            grain_shift: 1,
            clock: stm_core::config::ClockMode::Strict,
            table_layout: stm_core::config::TableLayout::Flat,
            pin: stm_workloads::placement::PlacementPolicy::None,
            profile: stm_workloads::profile::SizeProfile::Quick,
            seed: 3,
        }
    }

    #[test]
    fn figure5_produces_one_row_per_thread_count() {
        let table = figure5(&smoke_options());
        assert_eq!(table.len(), 2);
        assert_eq!(table.headers.len(), 5);
        assert!(table.to_string().contains("SwissTM"));
    }

    #[test]
    fn figure10_and_11_have_expected_series() {
        let options = smoke_options();
        let t10 = figure10(&options);
        assert!(t10.headers.iter().any(|h| h.contains("greedy")));
        let t11 = figure11(&options);
        assert!(t11
            .headers
            .iter()
            .any(|h| h.contains("backoff") || h.contains("back")));
    }

    #[test]
    fn figure12_reports_all_three_mixes() {
        let table = figure12(&smoke_options());
        assert!(table.headers.contains(&"read-dominated".to_string()));
        assert!(table.headers.contains(&"write-dominated".to_string()));
    }
}
