//! Contention profiles: where contended transactions spend their time.
//!
//! Throughput alone does not explain the paper's contention-manager
//! comparisons (Figures 9/10/12, Table 1). The tables here re-run a
//! benchmark under every contention manager and print the telemetry
//! breakdown next to throughput: share of thread-time spent in CM wait
//! loops and in back-off, the CM resolution counts (waits / self-aborts /
//! victim-aborts), the inflicted vs. received remote-abort pair, and the
//! retry-depth histogram.
//!
//! Exposed through the `repro` binary as `repro contention` (the
//! high-contention profile: small red-black tree, write-dominated
//! STMBench7, Lee main board) and as `--contention` on `fig9`/`fig10`
//! (the same breakdown on those figures' sweeps). Every row is a fresh
//! measurement — the sweep covers all five managers, not just the pair the
//! figure plots — so the throughput column can differ slightly from an
//! adjacent figure table's number for the same configuration (independent
//! runs on a shared machine).

use stm_workloads::lee::LeeConfig;
use stm_workloads::rbtree::RbTreeConfig;
use stm_workloads::stmbench7::WorkloadMix;

use crate::runner::{run_point, Benchmark, CmChoice, RunOptions, StmVariant};
use crate::table::{format_ktps, Table};

/// The contention managers swept by the contention tables: all five
/// policies of `stm_core::cm`.
pub const CM_SWEEP: [CmChoice; 5] = [
    CmChoice::Timid,
    CmChoice::Greedy,
    CmChoice::Serializer,
    CmChoice::Polka,
    CmChoice::TwoPhase,
];

/// Builds one contention table: `benchmark` under every manager in `cms`
/// (constructed into a full STM configuration by `make_variant`), swept
/// over the options' thread counts.
pub fn contention_table(
    title: impl Into<String>,
    benchmark: &Benchmark,
    make_variant: impl Fn(CmChoice) -> StmVariant,
    cms: &[CmChoice],
    options: &RunOptions,
) -> Table {
    let mut table = Table::new(
        title,
        "Per CM: throughput, share of thread-time in CM wait loops / back-off, \
         CM resolutions (wait/self/other), inflicted vs received remote aborts, \
         retry depth (attempts per commit)",
    )
    .headers([
        "cm",
        "thr",
        "tx/s [10^3]",
        "abort%",
        "wait%",
        "backoff%",
        "waits",
        "self",
        "other",
        "inflicted",
        "received",
        "retries",
    ]);
    for &cm in cms {
        for threads in options.thread_counts() {
            let result = run_point(make_variant(cm), benchmark, threads, options);
            let contention = &result.stats.totals.contention;
            table.push_row([
                cm.label().to_string(),
                threads.to_string(),
                format_ktps(result.throughput()),
                format!("{:.1}", result.abort_ratio() * 100.0),
                format!("{:.1}", result.wait_share() * 100.0),
                format!("{:.1}", result.backoff_share() * 100.0),
                contention.waits().to_string(),
                contention.aborts_self().to_string(),
                contention.aborts_other().to_string(),
                contention.remote_aborts_inflicted.to_string(),
                contention.remote_aborts_received.to_string(),
                // RetryHistogram's Display is the compact empty-bucket
                // skipping form.
                result.stats.totals.retries.to_string(),
            ]);
        }
    }
    table
}

/// Contention breakdown of the Figure 9 sweep (RSTM, read-dominated
/// STMBench7), extended from the figure's Polka-vs-Greedy pair to all five
/// managers.
pub fn figure9_contention(options: &RunOptions) -> Table {
    contention_table(
        "Contention profile: Figure 9 sweep (RSTM, read-dominated STMBench7)",
        &Benchmark::Bench7(WorkloadMix::read_dominated()),
        |cm| StmVariant::Rstm(rstm::RstmVariant::eager_invisible(), cm),
        &CM_SWEEP,
        options,
    )
}

/// Contention breakdown of the Figure 10 sweep (SwissTM, red-black tree),
/// extended from the figure's two-phase-vs-Greedy pair to all five
/// managers.
pub fn figure10_contention(options: &RunOptions) -> Table {
    contention_table(
        "Contention profile: Figure 10 sweep (SwissTM, red-black tree)",
        &Benchmark::RbTree(RbTreeConfig::paper_default()),
        StmVariant::Swiss,
        &CM_SWEEP,
        options,
    )
}

/// The high-contention profile: SwissTM under all five managers on the
/// three workloads where conflicts dominate — the small red-black tree,
/// write-dominated STMBench7 and the Lee main board.
pub fn profile(options: &RunOptions) -> Vec<Table> {
    let benchmarks: [(&str, Benchmark); 3] = [
        (
            "small red-black tree",
            Benchmark::RbTree(RbTreeConfig::small()),
        ),
        (
            "write-dominated STMBench7",
            Benchmark::Bench7(WorkloadMix::write_dominated()),
        ),
        (
            "Lee main board",
            Benchmark::Lee(LeeConfig::main_board_at(options.profile)),
        ),
    ];
    benchmarks
        .iter()
        .map(|(name, benchmark)| {
            contention_table(
                format!("Contention profile: {name} (SwissTM)"),
                benchmark,
                StmVariant::Swiss,
                &CM_SWEEP,
                options,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use stm_workloads::profile::SizeProfile;

    fn tiny_options() -> RunOptions {
        RunOptions {
            max_threads: 2,
            point_duration: Duration::from_millis(25),
            heap_words: 1 << 20,
            lock_table_log2: 12,
            grain_shift: 1,
            clock: stm_core::config::ClockMode::Strict,
            table_layout: stm_core::config::TableLayout::Flat,
            pin: stm_workloads::placement::PlacementPolicy::None,
            profile: SizeProfile::Quick,
            seed: 11,
        }
    }

    #[test]
    fn contention_table_reports_all_requested_cms() {
        let options = tiny_options();
        let table = contention_table(
            "smoke",
            &Benchmark::RbTree(RbTreeConfig::small()),
            StmVariant::Swiss,
            &[CmChoice::Timid, CmChoice::TwoPhase],
            &options,
        );
        // 2 CMs × 2 thread counts.
        assert_eq!(table.len(), 4);
        assert!(table.headers.iter().any(|h| h == "wait%"));
        assert!(table.headers.iter().any(|h| h == "inflicted"));
        let rendered = table.to_string();
        assert!(rendered.contains("timid"), "{rendered}");
        assert!(rendered.contains("two-phase"), "{rendered}");
    }
}
