//! `repro` — regenerate the figures and tables of the SwissTM paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--full|--huge] [--threads N] [--millis M] [--seed S]
//!      [--clock strict|deferred] [--table-layout flat|mixed|padded|padded-mixed]
//!      [--pin none|compact|scatter] [--check-shapes] [--contention]
//!      [--snapshot BENCH_<label>.json] [--bench-timings <timings.tsv>]
//! repro bench-diff <old.json> <new.json> [--throughput-tolerance X]
//!
//! experiments: fig2 fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!              table1 table2 contention all
//! ```
//!
//! Without `--full` the quick profile is used: fewer threads, shorter data
//! points and scaled-down datasets — enough to see the shape of every
//! figure in minutes on a laptop. `--full` switches to the paper's
//! 1–8 thread sweep with full-profile datasets; `--huge` uses
//! paper-scale-and-beyond datasets for dedicated runs of single figures.
//! `--check-shapes` additionally measures the headline figure shapes
//! (SwissTM vs the baselines, see `stm_harness::shapes`) and fails the
//! process if a shape is inverted. `--contention` extends the CM figures
//! (`fig9`, `fig10`, and `all`) with contention-telemetry tables — the
//! wait/back-off time shares and inflicted/received remote-abort counts
//! next to throughput, for every contention manager. The `contention`
//! experiment prints the dedicated high-contention profile (small
//! red-black tree, write-dominated STMBench7, Lee main board).
//!
//! `--clock` selects the commit-clock mode (strict `fetch_add` counter vs
//! the deferred GV5-style clock), `--table-layout` the lock-table memory
//! layout (cache-line-padded entries and/or index mixing), and `--pin` the
//! thread-placement policy — together they drive the placement-aware
//! scaling sweeps (fig9/fig10 with `--contention`).
//!
//! `--snapshot PATH` captures every measured data point of the run into a
//! versioned `BENCH_*.json` perf snapshot (see `stm_harness::snapshot`);
//! `--bench-timings PATH` merges a `name\tmean_nanos` timings file (as
//! written by the bench harness under `STM_BENCH_TIMINGS`) into that
//! snapshot. `repro bench-diff old.json new.json` compares two snapshots
//! point-by-point under the self-regression gates and exits non-zero on a
//! gated regression.

use std::process::ExitCode;
use std::time::Duration;

use stm_harness::contention;
use stm_harness::experiments;
use stm_harness::runner::RunOptions;
use stm_harness::shapes;
use stm_harness::snapshot::{self, BenchSnapshot, GateTolerances};
use stm_harness::table::Table;

fn print_tables(tables: &[Table]) {
    for table in tables {
        println!("{table}");
    }
}

fn run_experiment(name: &str, options: &RunOptions, with_contention: bool) -> Result<(), String> {
    match name {
        "fig2" => print_tables(&experiments::figure2(options)),
        "fig3" => print_tables(&experiments::figure3(options)),
        "fig4" => print_tables(&experiments::figure4(options)),
        "fig5" => print_tables(&[experiments::figure5(options)]),
        "fig7" => print_tables(&[experiments::figure7(options)]),
        "fig8" => print_tables(&[experiments::figure8(options)]),
        "fig9" => {
            print_tables(&[experiments::figure9(options)]);
            if with_contention {
                print_tables(&[contention::figure9_contention(options)]);
            }
        }
        "fig10" => {
            print_tables(&[experiments::figure10(options)]);
            if with_contention {
                print_tables(&[contention::figure10_contention(options)]);
            }
        }
        "fig11" => print_tables(&[experiments::figure11(options)]),
        "fig12" => print_tables(&[experiments::figure12(options)]),
        "fig13" => print_tables(&[experiments::figure13(options)]),
        "table1" => print_tables(&[experiments::table1(options)]),
        "table2" => print_tables(&[experiments::table2(options)]),
        "contention" => print_tables(&contention::profile(options)),
        "all" => {
            for experiment in [
                "fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "table1", "table2",
            ] {
                run_experiment(experiment, options, with_contention)?;
            }
            if with_contention {
                run_experiment("contention", options, with_contention)?;
            }
        }
        other => return Err(format!("unknown experiment '{other}'")),
    }
    Ok(())
}

struct RunArgs {
    experiment: String,
    options: RunOptions,
    check_shapes: bool,
    contention: bool,
    snapshot_path: Option<String>,
    bench_timings_path: Option<String>,
}

struct DiffArgs {
    old_path: String,
    new_path: String,
    tolerances: GateTolerances,
}

enum Command {
    Run(RunArgs),
    BenchDiff(DiffArgs),
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Command, String> {
    let first = args.next().ok_or_else(usage)?;
    if first == "bench-diff" {
        return parse_bench_diff_args(args).map(Command::BenchDiff);
    }
    let experiment = first;
    // The profile flag selects the base options; --threads/--millis/--seed
    // override on top of it regardless of their position on the command
    // line, so `repro all --seed 7 --full` keeps the seed.
    let mut base: fn() -> RunOptions = RunOptions::quick;
    let mut max_threads = None;
    let mut point_duration = None;
    let mut seed = None;
    let mut clock = None;
    let mut table_layout = None;
    let mut pin = None;
    let mut check_shapes = false;
    let mut contention = false;
    let mut snapshot_path = None;
    let mut bench_timings_path = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--full" => base = RunOptions::full,
            "--huge" => base = RunOptions::huge,
            "--check-shapes" => check_shapes = true,
            "--contention" => contention = true,
            "--threads" => {
                max_threads = Some(next_value(&mut args, "--threads")?);
            }
            "--millis" => {
                let millis: u64 = next_value(&mut args, "--millis")?;
                point_duration = Some(Duration::from_millis(millis));
            }
            "--seed" => {
                seed = Some(next_value(&mut args, "--seed")?);
            }
            "--clock" => {
                clock = Some(next_value(&mut args, "--clock")?);
            }
            "--table-layout" => {
                table_layout = Some(next_value(&mut args, "--table-layout")?);
            }
            "--pin" => {
                pin = Some(next_value(&mut args, "--pin")?);
            }
            "--snapshot" => {
                snapshot_path = Some(
                    args.next()
                        .ok_or_else(|| "--snapshot requires a path".to_string())?,
                );
            }
            "--bench-timings" => {
                bench_timings_path = Some(
                    args.next()
                        .ok_or_else(|| "--bench-timings requires a path".to_string())?,
                );
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    if bench_timings_path.is_some() && snapshot_path.is_none() {
        return Err(
            "--bench-timings requires --snapshot (timings are stored in the \
                    snapshot file)"
                .to_string(),
        );
    }
    let mut options = base();
    if let Some(threads) = max_threads {
        options.max_threads = threads;
    }
    if let Some(duration) = point_duration {
        options.point_duration = duration;
    }
    if let Some(seed) = seed {
        options.seed = seed;
    }
    if let Some(clock) = clock {
        options.clock = clock;
    }
    if let Some(layout) = table_layout {
        options.table_layout = layout;
    }
    if let Some(pin) = pin {
        options.pin = pin;
    }
    Ok(Command::Run(RunArgs {
        experiment,
        options,
        check_shapes,
        contention,
        snapshot_path,
        bench_timings_path,
    }))
}

fn parse_bench_diff_args(mut args: impl Iterator<Item = String>) -> Result<DiffArgs, String> {
    let old_path = args
        .next()
        .ok_or("bench-diff requires two snapshot paths: <old.json> <new.json>")?;
    let new_path = args
        .next()
        .ok_or("bench-diff requires two snapshot paths: <old.json> <new.json>")?;
    let mut tolerances = GateTolerances::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--throughput-tolerance" => {
                let tolerance: f64 = next_value(&mut args, "--throughput-tolerance")?;
                if !(0.0..=1.0).contains(&tolerance) {
                    return Err(
                        "--throughput-tolerance must be within 0.0..=1.0 (fraction of \
                         baseline throughput the current run must reach)"
                            .to_string(),
                    );
                }
                tolerances = tolerances.with_throughput(tolerance);
            }
            other => return Err(format!("unknown bench-diff flag '{other}'\n{}", usage())),
        }
    }
    Ok(DiffArgs {
        old_path,
        new_path,
        tolerances,
    })
}

fn next_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    args.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("invalid value for {flag}"))
}

fn usage() -> String {
    "usage: repro <fig2|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|fig12|fig13|table1|table2\
     |contention|all> [--full|--huge] [--threads N] [--millis M] [--seed S] \
     [--clock strict|deferred] [--table-layout flat|mixed|padded|padded-mixed] \
     [--pin none|compact|scatter] [--check-shapes] [--contention] \
     [--snapshot BENCH_<label>.json] [--bench-timings <timings.tsv>]\n\
     \x20      repro bench-diff <old.json> <new.json> [--throughput-tolerance X]"
        .to_string()
}

/// The snapshot label of a `--snapshot` path: file stem without the
/// conventional `BENCH_` prefix (`out/BENCH_baseline.json` → `baseline`).
fn snapshot_label(path: &str) -> String {
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path);
    stem.strip_prefix("BENCH_").unwrap_or(stem).to_string()
}

fn write_snapshot(cli: &RunArgs, path: &str) -> Result<(), String> {
    let points = snapshot::take_recorded();
    let mut snap = BenchSnapshot::new(snapshot_label(path), points);
    if let Some(timings_path) = &cli.bench_timings_path {
        let text = std::fs::read_to_string(timings_path)
            .map_err(|e| format!("cannot read bench timings '{timings_path}': {e}"))?;
        snap.bench = snapshot::parse_bench_timings(&text)?;
    }
    std::fs::write(path, snap.to_json_string())
        .map_err(|e| format!("cannot write snapshot '{path}': {e}"))?;
    println!(
        "# wrote perf snapshot '{path}' ({} points, {} bench timings)",
        snap.points.len(),
        snap.bench.len()
    );
    Ok(())
}

fn run_main(cli: RunArgs) -> ExitCode {
    // The flag is redundant (not wrong) on the dedicated
    // `contention` experiment, so no note there.
    if cli.contention
        && !matches!(
            cli.experiment.as_str(),
            "fig9" | "fig10" | "all" | "contention"
        )
    {
        eprintln!(
            "note: --contention adds tables to fig9, fig10 and all only; \
             use `repro contention` for the dedicated profile"
        );
    }
    println!(
        "# SwissTM reproduction harness — experiment '{}' ({} threads max, {:?}/point, {} profile, \
         clock={}, table={}, pin={})",
        cli.experiment,
        cli.options.max_threads,
        cli.options.point_duration,
        cli.options.profile.label(),
        cli.options.clock.label(),
        cli.options.table_layout.label(),
        cli.options.pin.label()
    );
    if cli.snapshot_path.is_some() {
        snapshot::arm_recorder();
    }
    match run_experiment(&cli.experiment, &cli.options, cli.contention) {
        Ok(()) => {
            let mut failed = false;
            if cli.check_shapes {
                let report = shapes::run_shape_checks(&cli.options);
                print!("{report}");
                failed |= !report.passed();
            }
            // The snapshot is written even when shape checks fail: the
            // points were measured either way and the artifact helps
            // diagnose the failure.
            if let Some(path) = &cli.snapshot_path {
                if let Err(message) = write_snapshot(&cli, path) {
                    eprintln!("error: {message}");
                    failed = true;
                }
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn diff_main(cli: DiffArgs) -> ExitCode {
    let load = |path: &str| -> Result<BenchSnapshot, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read snapshot '{path}': {e}"))?;
        BenchSnapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = match load(&cli.old_path) {
        Ok(snap) => snap,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let current = match load(&cli.new_path) {
        Ok(snap) => snap,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let report = snapshot::diff_snapshots(&baseline, &current, &cli.tolerances);
    print!("{report}");
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(Command::Run(cli)) => run_main(cli),
        Ok(Command::BenchDiff(cli)) => diff_main(cli),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::config::{ClockMode, TableLayout};
    use stm_workloads::placement::PlacementPolicy;

    fn parse(words: &[&str]) -> Result<Command, String> {
        parse_args(words.iter().map(|w| w.to_string()))
    }

    #[test]
    fn parses_run_command_with_snapshot_flags() {
        let Ok(Command::Run(cli)) = parse(&[
            "all",
            "--full",
            "--threads",
            "2",
            "--seed",
            "99",
            "--clock",
            "deferred",
            "--table-layout",
            "padded-mixed",
            "--pin",
            "compact",
            "--snapshot",
            "out/BENCH_baseline.json",
            "--bench-timings",
            "timings.tsv",
        ]) else {
            panic!("expected a run command");
        };
        assert_eq!(cli.experiment, "all");
        assert_eq!(cli.options.max_threads, 2);
        assert_eq!(cli.options.seed, 99);
        assert_eq!(cli.options.clock, ClockMode::Deferred);
        assert_eq!(cli.options.table_layout, TableLayout::PaddedMixed);
        assert_eq!(cli.options.pin, PlacementPolicy::Compact);
        assert_eq!(
            cli.snapshot_path.as_deref(),
            Some("out/BENCH_baseline.json")
        );
        assert_eq!(cli.bench_timings_path.as_deref(), Some("timings.tsv"));
    }

    #[test]
    fn bench_timings_without_snapshot_is_rejected() {
        let message = parse(&["all", "--bench-timings", "t.tsv"]).err().unwrap();
        assert!(
            message.contains("--bench-timings requires --snapshot"),
            "{message}"
        );
    }

    #[test]
    fn parses_bench_diff_command() {
        let Ok(Command::BenchDiff(cli)) = parse(&[
            "bench-diff",
            "BENCH_baseline.json",
            "BENCH_ci.json",
            "--throughput-tolerance",
            "0.5",
        ]) else {
            panic!("expected a bench-diff command");
        };
        assert_eq!(cli.old_path, "BENCH_baseline.json");
        assert_eq!(cli.new_path, "BENCH_ci.json");
        assert_eq!(cli.tolerances.throughput, 0.5);
        // Only the throughput knob is exposed; the rest keep defaults.
        assert_eq!(
            cli.tolerances.wait_share_slack,
            GateTolerances::default().wait_share_slack
        );
    }

    #[test]
    fn bench_diff_rejects_missing_paths_and_bad_tolerance() {
        assert!(parse(&["bench-diff"]).is_err());
        assert!(parse(&["bench-diff", "only-one.json"]).is_err());
        assert!(parse(&[
            "bench-diff",
            "a.json",
            "b.json",
            "--throughput-tolerance",
            "1.5"
        ])
        .is_err());
        assert!(parse(&["bench-diff", "a.json", "b.json", "--bogus"]).is_err());
    }

    #[test]
    fn snapshot_label_strips_prefix_and_extension() {
        assert_eq!(snapshot_label("out/BENCH_baseline.json"), "baseline");
        assert_eq!(
            snapshot_label("BENCH_sweep-deferred.json"),
            "sweep-deferred"
        );
        assert_eq!(snapshot_label("custom.json"), "custom");
    }

    #[test]
    fn unknown_flags_and_missing_experiment_are_rejected() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["fig5", "--wat"]).is_err());
        assert!(parse(&["fig5", "--snapshot"]).is_err());
    }
}
