//! `repro` — regenerate the figures and tables of the SwissTM paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment> [--full|--huge] [--threads N] [--millis M] [--seed S]
//!      [--clock strict|deferred] [--table-layout flat|mixed|padded|padded-mixed]
//!      [--pin none|compact|scatter] [--check-shapes] [--contention]
//!
//! experiments: fig2 fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!              table1 table2 contention all
//! ```
//!
//! Without `--full` the quick profile is used: fewer threads, shorter data
//! points and scaled-down datasets — enough to see the shape of every
//! figure in minutes on a laptop. `--full` switches to the paper's
//! 1–8 thread sweep with full-profile datasets; `--huge` uses
//! paper-scale-and-beyond datasets for dedicated runs of single figures.
//! `--check-shapes` additionally measures the headline figure shapes
//! (SwissTM vs the baselines, see `stm_harness::shapes`) and fails the
//! process if a shape is inverted. `--contention` extends the CM figures
//! (`fig9`, `fig10`, and `all`) with contention-telemetry tables — the
//! wait/back-off time shares and inflicted/received remote-abort counts
//! next to throughput, for every contention manager. The `contention`
//! experiment prints the dedicated high-contention profile (small
//! red-black tree, write-dominated STMBench7, Lee main board).
//!
//! `--clock` selects the commit-clock mode (strict `fetch_add` counter vs
//! the deferred GV5-style clock), `--table-layout` the lock-table memory
//! layout (cache-line-padded entries and/or index mixing), and `--pin` the
//! thread-placement policy — together they drive the placement-aware
//! scaling sweeps (fig9/fig10 with `--contention`).

use std::process::ExitCode;
use std::time::Duration;

use stm_harness::contention;
use stm_harness::experiments;
use stm_harness::runner::RunOptions;
use stm_harness::shapes;
use stm_harness::table::Table;

fn print_tables(tables: &[Table]) {
    for table in tables {
        println!("{table}");
    }
}

fn run_experiment(name: &str, options: &RunOptions, with_contention: bool) -> Result<(), String> {
    match name {
        "fig2" => print_tables(&experiments::figure2(options)),
        "fig3" => print_tables(&experiments::figure3(options)),
        "fig4" => print_tables(&experiments::figure4(options)),
        "fig5" => print_tables(&[experiments::figure5(options)]),
        "fig7" => print_tables(&[experiments::figure7(options)]),
        "fig8" => print_tables(&[experiments::figure8(options)]),
        "fig9" => {
            print_tables(&[experiments::figure9(options)]);
            if with_contention {
                print_tables(&[contention::figure9_contention(options)]);
            }
        }
        "fig10" => {
            print_tables(&[experiments::figure10(options)]);
            if with_contention {
                print_tables(&[contention::figure10_contention(options)]);
            }
        }
        "fig11" => print_tables(&[experiments::figure11(options)]),
        "fig12" => print_tables(&[experiments::figure12(options)]),
        "fig13" => print_tables(&[experiments::figure13(options)]),
        "table1" => print_tables(&[experiments::table1(options)]),
        "table2" => print_tables(&[experiments::table2(options)]),
        "contention" => print_tables(&contention::profile(options)),
        "all" => {
            for experiment in [
                "fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13", "table1", "table2",
            ] {
                run_experiment(experiment, options, with_contention)?;
            }
            if with_contention {
                run_experiment("contention", options, with_contention)?;
            }
        }
        other => return Err(format!("unknown experiment '{other}'")),
    }
    Ok(())
}

struct CliArgs {
    experiment: String,
    options: RunOptions,
    check_shapes: bool,
    contention: bool,
}

fn parse_args() -> Result<CliArgs, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    // The profile flag selects the base options; --threads/--millis/--seed
    // override on top of it regardless of their position on the command
    // line, so `repro all --seed 7 --full` keeps the seed.
    let mut base: fn() -> RunOptions = RunOptions::quick;
    let mut max_threads = None;
    let mut point_duration = None;
    let mut seed = None;
    let mut clock = None;
    let mut table_layout = None;
    let mut pin = None;
    let mut check_shapes = false;
    let mut contention = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--full" => base = RunOptions::full,
            "--huge" => base = RunOptions::huge,
            "--check-shapes" => check_shapes = true,
            "--contention" => contention = true,
            "--threads" => {
                max_threads = Some(next_value(&mut args, "--threads")?);
            }
            "--millis" => {
                let millis: u64 = next_value(&mut args, "--millis")?;
                point_duration = Some(Duration::from_millis(millis));
            }
            "--seed" => {
                seed = Some(next_value(&mut args, "--seed")?);
            }
            "--clock" => {
                clock = Some(next_value(&mut args, "--clock")?);
            }
            "--table-layout" => {
                table_layout = Some(next_value(&mut args, "--table-layout")?);
            }
            "--pin" => {
                pin = Some(next_value(&mut args, "--pin")?);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    let mut options = base();
    if let Some(threads) = max_threads {
        options.max_threads = threads;
    }
    if let Some(duration) = point_duration {
        options.point_duration = duration;
    }
    if let Some(seed) = seed {
        options.seed = seed;
    }
    if let Some(clock) = clock {
        options.clock = clock;
    }
    if let Some(layout) = table_layout {
        options.table_layout = layout;
    }
    if let Some(pin) = pin {
        options.pin = pin;
    }
    Ok(CliArgs {
        experiment,
        options,
        check_shapes,
        contention,
    })
}

fn next_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    args.next()
        .ok_or_else(|| format!("{flag} requires a value"))?
        .parse()
        .map_err(|_| format!("invalid value for {flag}"))
}

fn usage() -> String {
    "usage: repro <fig2|fig3|fig4|fig5|fig7|fig8|fig9|fig10|fig11|fig12|fig13|table1|table2\
     |contention|all> [--full|--huge] [--threads N] [--millis M] [--seed S] \
     [--clock strict|deferred] [--table-layout flat|mixed|padded|padded-mixed] \
     [--pin none|compact|scatter] [--check-shapes] [--contention]"
        .to_string()
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(cli) => {
            // The flag is redundant (not wrong) on the dedicated
            // `contention` experiment, so no note there.
            if cli.contention
                && !matches!(
                    cli.experiment.as_str(),
                    "fig9" | "fig10" | "all" | "contention"
                )
            {
                eprintln!(
                    "note: --contention adds tables to fig9, fig10 and all only; \
                     use `repro contention` for the dedicated profile"
                );
            }
            println!(
                "# SwissTM reproduction harness — experiment '{}' ({} threads max, {:?}/point, {} profile, \
                 clock={}, table={}, pin={})",
                cli.experiment,
                cli.options.max_threads,
                cli.options.point_duration,
                cli.options.profile.label(),
                cli.options.clock.label(),
                cli.options.table_layout.label(),
                cli.options.pin.label()
            );
            match run_experiment(&cli.experiment, &cli.options, cli.contention) {
                Ok(()) => {
                    if cli.check_shapes {
                        let report = shapes::run_shape_checks(&cli.options);
                        print!("{report}");
                        if !report.passed() {
                            return ExitCode::FAILURE;
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
