//! Minimal text-table formatting for experiment output.

use std::fmt;

/// A simple column-aligned table with a title and caption.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (e.g. `"Figure 2: STMBench7 throughput"`).
    pub title: String,
    /// Explanatory caption printed under the title.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, caption: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            caption: caption.into(),
            headers: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the column headers.
    pub fn headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_widths(&self) -> Vec<usize> {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        if !self.caption.is_empty() {
            writeln!(f, "{}", self.caption)?;
        }
        let widths = self.column_widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let width = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:>width$}  "));
            }
            writeln!(f, "{}", line.trim_end())
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 2).sum();
        writeln!(f, "{}", "-".repeat(total.max(4)))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a throughput value in the paper's "10^3 tx/s" style.
pub fn format_ktps(throughput: f64) -> String {
    format!("{:.2}", throughput / 1_000.0)
}

/// Formats a duration in seconds.
pub fn format_seconds(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

/// Formats a "speedup minus one" value as the paper's figures do.
pub fn format_speedup_minus_one(ratio: f64) -> String {
    format!("{:+.3}", ratio - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_header_and_rows() {
        let mut table = Table::new("Figure X", "caption").headers(["threads", "tx/s"]);
        table.push_row(["1", "100"]);
        table.push_row(["2", "180"]);
        let rendered = table.to_string();
        assert!(rendered.contains("Figure X"));
        assert!(rendered.contains("caption"));
        assert!(rendered.contains("threads"));
        assert!(rendered.contains("180"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_ktps(2_500.0), "2.50");
        assert_eq!(
            format_seconds(std::time::Duration::from_millis(1500)),
            "1.500"
        );
        assert_eq!(format_speedup_minus_one(1.25), "+0.250");
        assert_eq!(format_speedup_minus_one(0.9), "-0.100");
    }

    #[test]
    fn columns_align_to_longest_cell() {
        let mut table = Table::new("T", "").headers(["a", "b"]);
        table.push_row(["looooong", "1"]);
        let widths = table.column_widths();
        assert_eq!(widths[0], "looooong".len());
    }
}
