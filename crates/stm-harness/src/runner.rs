//! Construction of STM instances and execution of a single experiment data
//! point.
//!
//! The workloads are generic over [`stm_core::tm::TmAlgorithm`] (static
//! dispatch); the harness therefore enumerates the STM configurations it
//! needs as [`StmVariant`] values and matches on them to instantiate the
//! right concrete type.

use std::sync::Arc;
use std::time::Duration;

use rstm::{Rstm, RstmVariant};
use stm_core::cm::{CmHandle, Greedy, Polka, Serializer, Timid, TwoPhase};
use stm_core::config::{ClockMode, HeapConfig, LockTableConfig, StmConfig, TableLayout};
use stm_core::tm::TmAlgorithm;
use stm_workloads::driver::{run_workload_spec, RunLength, RunResult, RunSpec, Workload};
use stm_workloads::lee::{LeeBoard, LeeConfig, LeeWorkload};
use stm_workloads::placement::PlacementPolicy;
use stm_workloads::profile::SizeProfile;
use stm_workloads::rbtree::{RbTreeConfig, RbTreeWorkload};
use stm_workloads::stamp::StampApp;
use stm_workloads::stmbench7::{Bench7Config, Bench7Data, Bench7Workload, WorkloadMix};
use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

/// Contention managers the harness can plug into an STM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmChoice {
    /// The STM's own default manager.
    Default,
    /// Timid (abort self, no back-off).
    Timid,
    /// Greedy.
    Greedy,
    /// Serializer.
    Serializer,
    /// Polka.
    Polka,
    /// The paper's two-phase manager.
    TwoPhase,
    /// Two-phase without post-abort back-off (Figure 11's "no backoff").
    TwoPhaseNoBackoff,
}

impl CmChoice {
    fn build(self) -> Option<CmHandle> {
        match self {
            CmChoice::Default => None,
            CmChoice::Timid => Some(Arc::new(Timid::new())),
            CmChoice::Greedy => Some(Arc::new(Greedy::new())),
            CmChoice::Serializer => Some(Arc::new(Serializer::new())),
            CmChoice::Polka => Some(Arc::new(Polka::new())),
            CmChoice::TwoPhase => Some(Arc::new(TwoPhase::new())),
            CmChoice::TwoPhaseNoBackoff => Some(Arc::new(TwoPhase::new().without_backoff())),
        }
    }

    /// Label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            CmChoice::Default => "default",
            CmChoice::Timid => "timid",
            CmChoice::Greedy => "greedy",
            CmChoice::Serializer => "serializer",
            CmChoice::Polka => "polka",
            CmChoice::TwoPhase => "two-phase",
            CmChoice::TwoPhaseNoBackoff => "no-backoff",
        }
    }
}

/// A fully specified STM configuration for one experiment series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmVariant {
    /// SwissTM with the given contention manager.
    Swiss(CmChoice),
    /// TL2 with the given contention manager.
    Tl2(CmChoice),
    /// TinySTM with the given contention manager.
    Tiny(CmChoice),
    /// RSTM with the given algorithm variant and contention manager.
    Rstm(RstmVariant, CmChoice),
}

impl StmVariant {
    /// The paper's default configuration of each system.
    pub fn paper_defaults() -> [StmVariant; 4] {
        [
            StmVariant::Swiss(CmChoice::Default),
            StmVariant::Tiny(CmChoice::Default),
            StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Default),
            StmVariant::Tl2(CmChoice::Default),
        ]
    }

    /// Series label used in tables.
    pub fn label(&self) -> String {
        match self {
            StmVariant::Swiss(CmChoice::Default) => "SwissTM".into(),
            StmVariant::Swiss(cm) => format!("SwissTM[{}]", cm.label()),
            StmVariant::Tl2(CmChoice::Default) => "TL2".into(),
            StmVariant::Tl2(cm) => format!("TL2[{}]", cm.label()),
            StmVariant::Tiny(CmChoice::Default) => "TinySTM".into(),
            StmVariant::Tiny(cm) => format!("TinySTM[{}]", cm.label()),
            StmVariant::Rstm(variant, CmChoice::Default) => format!("RSTM[{}]", variant.label()),
            StmVariant::Rstm(variant, cm) => {
                format!("RSTM[{},{}]", variant.label(), cm.label())
            }
        }
    }
}

/// Global options for one experiment invocation.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Thread counts to sweep (each becomes one column/row of the figure).
    pub max_threads: usize,
    /// Wall-clock duration per throughput data point.
    pub point_duration: Duration,
    /// Heap size used by STM instances.
    pub heap_words: usize,
    /// Lock-table entries (log2).
    pub lock_table_log2: u32,
    /// Stripe granularity override (log2 words per stripe).
    pub grain_shift: u32,
    /// Commit-clock mode (strict counter vs deferred GV5-style clock).
    pub clock: ClockMode,
    /// Lock-table memory layout (flat vs padded entries, optional index
    /// mixing).
    pub table_layout: TableLayout,
    /// Thread-placement policy applied to the driver's workers.
    pub pin: PlacementPolicy,
    /// Workload size profile: every benchmark family states its dataset
    /// geometry and fixed work amount per profile (see
    /// [`stm_workloads::profile`]).
    pub profile: SizeProfile,
    /// Seed for workload construction and operation streams.
    pub seed: u64,
}

impl RunOptions {
    /// Quick options: small data points suitable for smoke tests and CI.
    pub fn quick() -> Self {
        RunOptions {
            max_threads: 4,
            point_duration: Duration::from_millis(150),
            heap_words: 1 << 21,
            lock_table_log2: 16,
            grain_shift: 1,
            clock: ClockMode::Strict,
            table_layout: TableLayout::Flat,
            pin: PlacementPolicy::None,
            profile: SizeProfile::Quick,
            seed: 0x5715,
        }
    }

    /// Full options: the paper's 1–8 thread sweep with one-second data
    /// points and the full-profile dataset geometry.
    pub fn full() -> Self {
        RunOptions {
            max_threads: 8,
            point_duration: Duration::from_millis(1_000),
            heap_words: 1 << 24,
            lock_table_log2: 20,
            grain_shift: 1,
            clock: ClockMode::Strict,
            table_layout: TableLayout::Flat,
            pin: PlacementPolicy::None,
            profile: SizeProfile::Full,
            seed: 0x5715,
        }
    }

    /// Huge options: paper-scale-and-beyond datasets with two-second data
    /// points, for dedicated runs of individual figures.
    pub fn huge() -> Self {
        RunOptions {
            max_threads: 8,
            point_duration: Duration::from_millis(2_000),
            heap_words: 1 << 26,
            lock_table_log2: 22,
            grain_shift: 1,
            clock: ClockMode::Strict,
            table_layout: TableLayout::Flat,
            pin: PlacementPolicy::None,
            profile: SizeProfile::Huge,
            seed: 0x5715,
        }
    }

    /// The thread counts swept by figure-style experiments.
    pub fn thread_counts(&self) -> Vec<usize> {
        (1..=self.max_threads).collect()
    }

    /// The STM configuration derived from these options.
    pub fn stm_config(&self) -> StmConfig {
        StmConfig {
            heap: HeapConfig::with_words(self.heap_words),
            lock_table: LockTableConfig {
                log2_entries: self.lock_table_log2,
                grain_shift: self.grain_shift,
                layout: self.table_layout,
            },
            clock: self.clock,
        }
    }

    /// Returns a copy with a different stripe granularity.
    pub fn with_grain_shift(mut self, grain_shift: u32) -> Self {
        self.grain_shift = grain_shift;
        self
    }

    /// Returns a copy with a different commit-clock mode.
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// Returns a copy with a different lock-table layout.
    pub fn with_table_layout(mut self, table_layout: TableLayout) -> Self {
        self.table_layout = table_layout;
        self
    }

    /// Returns a copy with a different thread-placement policy.
    pub fn with_pin(mut self, pin: PlacementPolicy) -> Self {
        self.pin = pin;
        self
    }
}

/// Which benchmark a data point runs.
#[derive(Clone, Debug)]
pub enum Benchmark {
    /// STMBench7 with a workload mix (throughput measurement).
    Bench7(WorkloadMix),
    /// The red-black tree microbenchmark (throughput measurement).
    RbTree(RbTreeConfig),
    /// Lee-TM routing with a board configuration (execution-time
    /// measurement over the whole netlist).
    Lee(LeeConfig),
    /// A STAMP application (execution-time measurement over a fixed number
    /// of operations).
    Stamp(StampApp),
}

impl Benchmark {
    /// Short name used in tables.
    pub fn label(&self) -> String {
        match self {
            Benchmark::Bench7(mix) => format!("stmbench7-{}", mix.name),
            Benchmark::RbTree(_) => "red-black tree".into(),
            Benchmark::Lee(config) => match config.board {
                LeeBoard::Main => "lee-main".into(),
                LeeBoard::Memory => "lee-memory".into(),
                LeeBoard::Test => "lee-test".into(),
            },
            Benchmark::Stamp(app) => app.label().into(),
        }
    }
}

/// The fully threaded run specification for one data point: the driver
/// records the spec's seed/clock/layout/pin into the [`RunResult`] so every
/// snapshot point is self-describing.
fn run_spec(threads: usize, length: RunLength, options: &RunOptions) -> RunSpec {
    RunSpec::new(threads, length, options.seed)
        .with_pin(options.pin)
        .with_clock(options.clock)
        .with_table_layout(options.table_layout)
}

fn build_workload_and_run<A>(
    stm: Arc<A>,
    benchmark: &Benchmark,
    threads: usize,
    options: &RunOptions,
) -> RunResult
where
    A: TmAlgorithm,
{
    match benchmark {
        Benchmark::Bench7(mix) => {
            let data = Bench7Data::build(
                &stm,
                Bench7Config::for_profile(options.profile),
                options.seed,
            );
            let workload: Arc<dyn Workload<A>> = Arc::new(Bench7Workload::new(data, *mix));
            run_workload_spec(
                stm,
                workload,
                &run_spec(
                    threads,
                    RunLength::Duration(options.point_duration),
                    options,
                ),
            )
        }
        Benchmark::RbTree(config) => {
            let workload = RbTreeWorkload::setup(&stm, *config, options.seed);
            run_workload_spec(
                stm,
                workload,
                &run_spec(
                    threads,
                    RunLength::Duration(options.point_duration),
                    options,
                ),
            )
        }
        Benchmark::Lee(config) => {
            let workload = LeeWorkload::setup(&stm, *config, options.seed);
            run_workload_spec(
                stm,
                workload,
                &run_spec(threads, RunLength::TotalOps(config.routes as u64), options),
            )
        }
        Benchmark::Stamp(app) => {
            let workload = app.build_at(&stm, options.seed, options.profile);
            let ops = app.ops_at(options.profile);
            run_workload_spec(
                stm,
                workload,
                &run_spec(threads, RunLength::TotalOps(ops), options),
            )
        }
    }
}

/// Runs one data point: `benchmark` on `variant` with `threads` threads.
///
/// Every measurement of the harness funnels through here, so this is also
/// where the perf-snapshot recorder taps in: when armed (see
/// [`crate::snapshot::arm_recorder`]) the result is additionally captured
/// as a [`crate::snapshot::SnapshotPoint`].
pub fn run_point(
    variant: StmVariant,
    benchmark: &Benchmark,
    threads: usize,
    options: &RunOptions,
) -> RunResult {
    let result = run_point_unrecorded(variant, benchmark, threads, options);
    if crate::snapshot::recorder_armed() {
        crate::snapshot::record_point(crate::snapshot::SnapshotPoint::from_run(
            benchmark.label(),
            variant.label(),
            threads,
            options.profile,
            options.grain_shift,
            &result,
        ));
    }
    result
}

fn run_point_unrecorded(
    variant: StmVariant,
    benchmark: &Benchmark,
    threads: usize,
    options: &RunOptions,
) -> RunResult {
    let config = options.stm_config();
    match variant {
        StmVariant::Swiss(cm) => {
            let mut builder = SwissTm::builder().config(config);
            if let Some(cm) = cm.build() {
                builder = builder.contention_manager(cm);
            }
            build_workload_and_run(Arc::new(builder.build()), benchmark, threads, options)
        }
        StmVariant::Tl2(cm) => {
            let mut builder = Tl2::builder().config(config);
            if let Some(cm) = cm.build() {
                builder = builder.contention_manager(cm);
            }
            build_workload_and_run(Arc::new(builder.build()), benchmark, threads, options)
        }
        StmVariant::Tiny(cm) => {
            let mut builder = TinyStm::builder().config(config);
            if let Some(cm) = cm.build() {
                builder = builder.contention_manager(cm);
            }
            build_workload_and_run(Arc::new(builder.build()), benchmark, threads, options)
        }
        StmVariant::Rstm(rstm_variant, cm) => {
            let mut builder = Rstm::builder().config(config).variant(rstm_variant);
            if let Some(cm) = cm.build() {
                builder = builder.contention_manager(cm);
            }
            build_workload_and_run(Arc::new(builder.build()), benchmark, threads, options)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> RunOptions {
        RunOptions {
            max_threads: 2,
            point_duration: Duration::from_millis(30),
            heap_words: 1 << 20,
            lock_table_log2: 12,
            grain_shift: 1,
            clock: ClockMode::Strict,
            table_layout: TableLayout::Flat,
            pin: PlacementPolicy::None,
            profile: SizeProfile::Quick,
            seed: 7,
        }
    }

    #[test]
    fn run_point_covers_all_stm_variants_on_rbtree() {
        let options = tiny_options();
        let benchmark = Benchmark::RbTree(RbTreeConfig::small());
        for variant in StmVariant::paper_defaults() {
            let result = run_point(variant, &benchmark, 2, &options);
            assert!(result.check_passed, "{} failed", variant.label());
            assert!(result.throughput() > 0.0);
        }
    }

    #[test]
    fn run_point_runs_lee_and_stamp_points() {
        let options = tiny_options();
        let lee = Benchmark::Lee(LeeConfig::tiny());
        let result = run_point(StmVariant::Swiss(CmChoice::Default), &lee, 2, &options);
        assert!(result.check_passed);

        let stamp = Benchmark::Stamp(StampApp::KmeansHigh);
        let result = run_point(StmVariant::Tl2(CmChoice::Default), &stamp, 2, &options);
        assert!(result.check_passed);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(StmVariant::Swiss(CmChoice::Default).label(), "SwissTM");
        assert_eq!(
            StmVariant::Swiss(CmChoice::Greedy).label(),
            "SwissTM[greedy]"
        );
        assert!(
            StmVariant::Rstm(RstmVariant::lazy_invisible(), CmChoice::Polka)
                .label()
                .contains("lazy")
        );
        assert_eq!(
            Benchmark::RbTree(RbTreeConfig::small()).label(),
            "red-black tree"
        );
        assert_eq!(Benchmark::Stamp(StampApp::Yada).label(), "yada");
    }

    #[test]
    fn options_profiles_and_threads() {
        let options = tiny_options();
        assert_eq!(options.thread_counts(), vec![1, 2]);
        assert_eq!(options.with_grain_shift(4).grain_shift, 4);
        assert_eq!(
            options.with_clock(ClockMode::Deferred).stm_config().clock,
            ClockMode::Deferred
        );
        assert_eq!(
            options
                .with_table_layout(TableLayout::PaddedMixed)
                .stm_config()
                .lock_table
                .layout,
            TableLayout::PaddedMixed
        );
        assert_eq!(
            options.with_pin(PlacementPolicy::Compact).pin,
            PlacementPolicy::Compact
        );
        assert_eq!(RunOptions::full().max_threads, 8);
        assert!(RunOptions::quick().point_duration < RunOptions::full().point_duration);
        assert_eq!(RunOptions::quick().profile, SizeProfile::Quick);
        assert_eq!(RunOptions::full().profile, SizeProfile::Full);
        assert_eq!(RunOptions::huge().profile, SizeProfile::Huge);
        assert!(RunOptions::huge().heap_words > RunOptions::full().heap_words);
    }
}
