//! Machine-checkable "figure shape" assertions.
//!
//! The absolute numbers of every experiment depend on the machine, but the
//! paper's headline claims are *shapes*: SwissTM beats the baselines beyond
//! two threads on the workloads with long transactions (STMBench7, Lee-TM),
//! while TL2 and TinySTM stay competitive on workloads dominated by small
//! transactions (the red-black tree microbenchmark). This module turns
//! those claims into comparator functions over measured sweep series plus a
//! [`run_shape_checks`] driver the `repro` binary exposes behind
//! `--check-shapes`.
//!
//! The comparators are deliberately pure (they consume plain
//! `(threads, value)` series extracted from [`RunResult`]s), so tests can
//! drive them — including the failure messages — with synthetic results.
//!
//! Beyond the paper shapes, the module also hosts the *self-regression*
//! shapes used by the perf-snapshot gates ([`crate::snapshot`]): a
//! measurement compared not against another STM but against its own
//! committed baseline — throughput within tolerance
//! ([`check_self_throughput`]), wait share not worse
//! ([`check_self_wait_share`]), abort counts bounded
//! ([`check_self_abort_ratio`]). They follow the same contract: pure
//! functions returning a pass line or a failure message naming the exact
//! offending point.

use std::fmt;

use rstm::RstmVariant;
use stm_workloads::driver::RunResult;
use stm_workloads::lee::LeeConfig;
use stm_workloads::rbtree::RbTreeConfig;
use stm_workloads::stmbench7::WorkloadMix;

use crate::runner::{run_point, Benchmark, CmChoice, RunOptions, StmVariant};

/// One measured point of a sweep series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Thread count of the data point.
    pub threads: usize,
    /// Measured value (throughput or duration, per [`Direction`]).
    pub value: f64,
}

/// Whether larger or smaller values win a comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style series: more is better.
    HigherIsBetter,
    /// Execution-time-style series: less is better.
    LowerIsBetter,
}

/// Thread count beyond which the paper claims SwissTM dominates.
pub const DOMINANCE_BEYOND_THREADS: usize = 2;

/// Noise allowance of the dominance checks: the champion may fall up to
/// this factor short of a baseline before the check fails. Thread sweeps on
/// shared, oversubscribed machines jitter by tens of percent per point, and
/// the check's job is to catch *inverted* figure shapes, not run-to-run
/// variance.
pub const DOMINANCE_TOLERANCE: f64 = 0.8;

/// Minimum fraction of the reference's throughput a "competitive" baseline
/// must reach on small-transaction workloads at low thread counts.
pub const COMPETITIVE_RATIO: f64 = 0.5;

/// Extracts a committed-transactions-per-second series from measured runs.
pub fn throughput_series(results: &[(usize, RunResult)]) -> Vec<SeriesPoint> {
    results
        .iter()
        .map(|(threads, result)| SeriesPoint {
            threads: *threads,
            value: result.throughput(),
        })
        .collect()
}

/// Extracts an execution-time series (seconds) from measured runs.
pub fn elapsed_series(results: &[(usize, RunResult)]) -> Vec<SeriesPoint> {
    results
        .iter()
        .map(|(threads, result)| SeriesPoint {
            threads: *threads,
            value: result.elapsed.as_secs_f64(),
        })
        .collect()
}

fn value_at(series: &[SeriesPoint], threads: usize) -> Option<f64> {
    series
        .iter()
        .find(|point| point.threads == threads)
        .map(|point| point.value)
}

/// Checks that `champion` is no worse than `baseline` (within `tolerance`)
/// at every common thread count strictly above `beyond_threads`.
///
/// Returns `Ok` with a human-readable pass (or "skipped — no qualifying
/// points") line, or `Err` with a message naming the figure, the offending
/// thread count and both measured values.
pub fn check_dominates(
    figure: &str,
    champion: (&str, &[SeriesPoint]),
    baseline: (&str, &[SeriesPoint]),
    beyond_threads: usize,
    direction: Direction,
    tolerance: f64,
) -> Result<String, String> {
    let (champion_label, champion_series) = champion;
    let (baseline_label, baseline_series) = baseline;
    let mut checked = 0usize;
    for point in champion_series
        .iter()
        .filter(|point| point.threads > beyond_threads)
    {
        let Some(base_value) = value_at(baseline_series, point.threads) else {
            continue;
        };
        checked += 1;
        let ok = match direction {
            Direction::HigherIsBetter => point.value >= tolerance * base_value,
            Direction::LowerIsBetter => point.value * tolerance <= base_value,
        };
        if !ok {
            let relation = match direction {
                Direction::HigherIsBetter => "must not fall below",
                Direction::LowerIsBetter => "must not exceed",
            };
            return Err(format!(
                "{figure}: {champion_label} {relation} {baseline_label} beyond \
                 {beyond_threads} threads (tolerance {tolerance:.2}), but at \
                 {} threads {champion_label}={:.2} vs {baseline_label}={:.2}",
                point.threads, point.value, base_value
            ));
        }
    }
    if checked == 0 {
        Ok(format!(
            "{figure}: {champion_label} vs {baseline_label} skipped — no common \
             points beyond {beyond_threads} threads"
        ))
    } else {
        Ok(format!(
            "{figure}: {champion_label} dominates {baseline_label} on all \
             {checked} points beyond {beyond_threads} threads"
        ))
    }
}

/// Checks that `contender` reaches at least `min_ratio` of `reference`'s
/// value at every common thread count up to (and including)
/// `up_to_threads` — the paper's "TL2/TinySTM are competitive on small
/// transactions" claim.
pub fn check_competitive(
    figure: &str,
    reference: (&str, &[SeriesPoint]),
    contender: (&str, &[SeriesPoint]),
    up_to_threads: usize,
    min_ratio: f64,
) -> Result<String, String> {
    let (reference_label, reference_series) = reference;
    let (contender_label, contender_series) = contender;
    let mut checked = 0usize;
    for point in contender_series
        .iter()
        .filter(|point| point.threads <= up_to_threads)
    {
        let Some(reference_value) = value_at(reference_series, point.threads) else {
            continue;
        };
        checked += 1;
        if point.value < min_ratio * reference_value {
            return Err(format!(
                "{figure}: {contender_label} must stay within {min_ratio:.2}x of \
                 {reference_label} up to {up_to_threads} threads, but at {} \
                 threads {contender_label}={:.2} vs {reference_label}={:.2}",
                point.threads, point.value, reference_value
            ));
        }
    }
    if checked == 0 {
        Ok(format!(
            "{figure}: {contender_label} vs {reference_label} skipped — no common \
             points up to {up_to_threads} threads"
        ))
    } else {
        Ok(format!(
            "{figure}: {contender_label} is competitive with {reference_label} on \
             all {checked} points up to {up_to_threads} threads"
        ))
    }
}

/// Checks that a re-measured throughput stays within `tolerance` of the
/// baseline measurement of the same point — the *self-regression*
/// counterpart of [`check_dominates`]: instead of comparing two STMs on one
/// machine, it compares one configuration against its own committed
/// baseline ([`crate::snapshot`]).
///
/// `point` names the data point (benchmark × STM × threads) and is echoed
/// verbatim into the pass/fail line, so a failing gate pinpoints exactly
/// which measurement regressed. A baseline of zero throughput makes the
/// check vacuous (reported as skipped): nothing meaningful can regress
/// against it.
pub fn check_self_throughput(
    point: &str,
    baseline: f64,
    current: f64,
    tolerance: f64,
) -> Result<String, String> {
    if baseline <= 0.0 {
        return Ok(format!(
            "{point}: throughput gate skipped — baseline throughput is zero"
        ));
    }
    if current >= tolerance * baseline {
        Ok(format!(
            "{point}: throughput {current:.1} tx/s within tolerance \
             {tolerance:.2} of baseline {baseline:.1} tx/s"
        ))
    } else {
        Err(format!(
            "{point}: throughput regressed — {current:.1} tx/s is below \
             tolerance {tolerance:.2} of baseline {baseline:.1} tx/s \
             ({:.1}% of baseline)",
            100.0 * current / baseline
        ))
    }
}

/// Checks that the share of thread-time spent in CM wait loops has not
/// grown by more than `slack` (absolute, e.g. `0.10` = ten percentage
/// points) over the baseline — contention creeping into a previously
/// uncontended configuration is a regression even when throughput hides it
/// behind a faster machine.
pub fn check_self_wait_share(
    point: &str,
    baseline: f64,
    current: f64,
    slack: f64,
) -> Result<String, String> {
    if current <= baseline + slack {
        Ok(format!(
            "{point}: wait share {:.1}% within +{:.0}pp of baseline {:.1}%",
            current * 100.0,
            slack * 100.0,
            baseline * 100.0
        ))
    } else {
        Err(format!(
            "{point}: wait share grew — {:.1}% exceeds baseline {:.1}% by \
             more than the {:.0}pp slack",
            current * 100.0,
            baseline * 100.0,
            slack * 100.0
        ))
    }
}

/// Checks that the abort ratio stays bounded by the baseline:
/// `current ≤ baseline × factor + slack`. The multiplicative `factor`
/// tolerates proportional noise on already-contended points; the additive
/// `slack` keeps the gate meaningful when the baseline aborted (close to)
/// never, where any factor of zero is still zero.
pub fn check_self_abort_ratio(
    point: &str,
    baseline: f64,
    current: f64,
    factor: f64,
    slack: f64,
) -> Result<String, String> {
    let bound = baseline * factor + slack;
    if current <= bound {
        Ok(format!(
            "{point}: abort ratio {current:.3} within bound {bound:.3} \
             (baseline {baseline:.3})"
        ))
    } else {
        Err(format!(
            "{point}: aborts exceed bound — abort ratio {current:.3} is \
             above {bound:.3} (baseline {baseline:.3} × {factor:.2} + {slack:.2})"
        ))
    }
}

/// The outcome of a shape-check run: pass/skip lines plus failures.
#[derive(Debug)]
pub struct ShapeReport {
    /// Heading printed above the report (`# <title>`).
    pub title: String,
    /// Checks that passed (or were skipped for lack of qualifying points).
    pub passes: Vec<String>,
    /// Checks that failed, with the offending data point in the message.
    pub failures: Vec<String>,
}

impl Default for ShapeReport {
    fn default() -> Self {
        ShapeReport::with_title("Figure-shape checks")
    }
}

impl ShapeReport {
    /// An empty report with an explicit heading (the snapshot diff reuses
    /// the report machinery under its own title).
    pub fn with_title(title: impl Into<String>) -> Self {
        ShapeReport {
            title: title.into(),
            passes: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Folds one comparator outcome into the report.
    pub fn record(&mut self, outcome: Result<String, String>) {
        match outcome {
            Ok(line) => self.passes.push(line),
            Err(line) => self.failures.push(line),
        }
    }
}

impl fmt::Display for ShapeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.title)?;
        for line in &self.passes {
            writeln!(f, "ok   {line}")?;
        }
        for line in &self.failures {
            writeln!(f, "FAIL {line}")?;
        }
        writeln!(
            f,
            "# {} passed, {} failed",
            self.passes.len(),
            self.failures.len()
        )
    }
}

fn sweep(
    variant: StmVariant,
    benchmark: &Benchmark,
    thread_counts: &[usize],
    options: &RunOptions,
) -> Vec<(usize, RunResult)> {
    thread_counts
        .iter()
        .map(|&threads| (threads, run_point(variant, benchmark, threads, options)))
        .collect()
}

/// The number of hardware threads the machine can actually run in
/// parallel. Sweep points beyond it are timeslice-multiplexed, not
/// parallel, and the paper's scalability claims do not apply to them — the
/// STM-mapping literature singles out exactly this kind of oversubscribed
/// point as a measurement artifact (encounter-time lockers get descheduled
/// while holding locks, so commit-time lockers win for reasons unrelated to
/// the STM design).
pub fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs the paper's headline shape checks against freshly measured sweeps:
///
/// * STMBench7 (read-write mix): SwissTM throughput ≥ TL2 / TinySTM / RSTM
///   beyond [`DOMINANCE_BEYOND_THREADS`] threads,
/// * Lee-TM (memory board): SwissTM execution time ≤ the baselines beyond
///   [`DOMINANCE_BEYOND_THREADS`] threads,
/// * red-black tree: TL2 and TinySTM stay within [`COMPETITIVE_RATIO`] of
///   SwissTM at 1–2 threads (small transactions keep the baselines
///   competitive).
///
/// Dominance points are only measured for thread counts up to
/// [`hardware_parallelism`]; if the sweep has no qualifying point (fewer
/// than three hardware threads, or `--threads 2`), those checks are
/// reported as skipped rather than failed.
pub fn run_shape_checks(options: &RunOptions) -> ShapeReport {
    let mut report = ShapeReport::default();
    let swiss = StmVariant::Swiss(CmChoice::Default);
    let baselines = [
        StmVariant::Tl2(CmChoice::Default),
        StmVariant::Tiny(CmChoice::Default),
        StmVariant::Rstm(RstmVariant::eager_invisible(), CmChoice::Default),
    ];

    let hardware = hardware_parallelism();
    let dominance_threads: Vec<usize> = options
        .thread_counts()
        .into_iter()
        .filter(|&t| t > DOMINANCE_BEYOND_THREADS && t <= hardware)
        .collect();

    let dominance_figures: [(&str, Benchmark, Direction); 2] = [
        (
            "STMBench7 read-write",
            Benchmark::Bench7(WorkloadMix::read_write()),
            Direction::HigherIsBetter,
        ),
        (
            "Lee-TM memory board",
            Benchmark::Lee(LeeConfig::memory_board_at(options.profile)),
            Direction::LowerIsBetter,
        ),
    ];
    for (figure, benchmark, direction) in dominance_figures {
        if dominance_threads.is_empty() {
            for baseline in baselines {
                report.record(Ok(format!(
                    "{figure}: SwissTM vs {} skipped — no sweep points beyond \
                     {DOMINANCE_BEYOND_THREADS} threads within the hardware \
                     parallelism ({hardware})",
                    baseline.label()
                )));
            }
            continue;
        }
        let extract = match direction {
            Direction::HigherIsBetter => throughput_series,
            Direction::LowerIsBetter => elapsed_series,
        };
        let swiss_series = extract(&sweep(swiss, &benchmark, &dominance_threads, options));
        for baseline in baselines {
            let base_series = extract(&sweep(baseline, &benchmark, &dominance_threads, options));
            report.record(check_dominates(
                figure,
                ("SwissTM", &swiss_series),
                (&baseline.label(), &base_series),
                DOMINANCE_BEYOND_THREADS,
                direction,
                DOMINANCE_TOLERANCE,
            ));
        }
    }

    // Red-black tree: the word-based baselines stay competitive on small
    // transactions at low thread counts.
    let competitive_threads: Vec<usize> = options
        .thread_counts()
        .into_iter()
        .filter(|&t| t <= DOMINANCE_BEYOND_THREADS)
        .collect();
    let benchmark = Benchmark::RbTree(RbTreeConfig::paper_default());
    let swiss_rb = throughput_series(&sweep(swiss, &benchmark, &competitive_threads, options));
    for baseline in [
        StmVariant::Tl2(CmChoice::Default),
        StmVariant::Tiny(CmChoice::Default),
    ] {
        let base_rb =
            throughput_series(&sweep(baseline, &benchmark, &competitive_threads, options));
        report.record(check_competitive(
            "red-black tree",
            ("SwissTM", &swiss_rb),
            (&baseline.label(), &base_rb),
            DOMINANCE_BEYOND_THREADS,
            COMPETITIVE_RATIO,
        ));
    }

    report
}
