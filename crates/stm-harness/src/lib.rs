//! # stm-harness
//!
//! The experiment harness that regenerates every figure and table of the
//! SwissTM paper's evaluation (Sections 4 and 5). Each experiment is a
//! function in [`experiments`] returning a [`table::Table`] whose rows and
//! series mirror the corresponding figure; the `repro` binary prints them.
//!
//! The harness is deliberately configuration-driven ([`runner::RunOptions`])
//! so the same code produces both a quick smoke run (seconds per data
//! point, used in CI and the Criterion benches) and a full sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod table;
