//! # stm-harness
//!
//! The experiment harness that regenerates every figure and table of the
//! SwissTM paper's evaluation (Sections 4 and 5). Each experiment is a
//! function in [`experiments`] returning a [`table::Table`] whose rows and
//! series mirror the corresponding figure; the `repro` binary prints them.
//!
//! The harness is deliberately configuration-driven ([`runner::RunOptions`])
//! so the same code produces a quick smoke run (seconds per data point,
//! used in CI and the Criterion benches), the paper's full sweep, and a
//! huge paper-scale-and-beyond profile. [`shapes`] adds machine-checkable
//! assertions on the *shape* of the headline figures (who dominates beyond
//! two threads), exposed through `repro --check-shapes`. [`contention`]
//! adds the contention-telemetry profiles (wait/back-off shares, CM
//! resolution counts, inflicted/received remote aborts), exposed through
//! `repro contention` and `repro fig9|fig10 --contention`. [`snapshot`]
//! turns measured sweeps into versioned `BENCH_*.json` perf snapshots and
//! diffs them under self-regression gates, exposed through
//! `repro … --snapshot` and `repro bench-diff`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod experiments;
pub mod runner;
pub mod shapes;
pub mod snapshot;
pub mod table;
