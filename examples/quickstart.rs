//! Quickstart: a shared counter incremented by several threads through
//! SwissTM transactions.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use stm_core::config::StmConfig;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use swisstm::SwissTm;

fn main() {
    // 1. Create the STM instance; the paper's default lock-table
    //    configuration is used unless overridden.
    let stm = Arc::new(SwissTm::with_config(StmConfig::small()));

    // 2. Allocate transactional memory (one word for the counter).
    let counter = stm
        .heap()
        .alloc_zeroed(1)
        .expect("heap should have room for one word");

    // 3. Spawn threads; each registers a ThreadContext and runs
    //    transactions through `atomically`.
    let threads = 4;
    let increments_per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let stm = Arc::clone(&stm);
            std::thread::spawn(move || {
                let mut ctx = ThreadContext::register(stm);
                for _ in 0..increments_per_thread {
                    ctx.atomically(|tx| {
                        let value = tx.read(counter)?;
                        tx.write(counter, value + 1)
                    })
                    .expect("the transaction retries until it commits");
                }
                ctx.take_stats()
            })
        })
        .collect();

    let mut total_commits = 0;
    let mut total_aborts = 0;
    for handle in handles {
        let stats = handle.join().expect("worker thread panicked");
        total_commits += stats.commits;
        total_aborts += stats.aborts;
    }

    let final_value = stm.heap().load(counter);
    println!("final counter value : {final_value}");
    println!(
        "expected            : {}",
        threads as u64 * increments_per_thread
    );
    println!("commits             : {total_commits}");
    println!("aborts (retried)    : {total_aborts}");
    assert_eq!(final_value, threads as u64 * increments_per_thread);
}
