//! A small transactional task scheduler: producers enqueue jobs onto a
//! shared transactional queue, workers dequeue them and record results in a
//! shared transactional hash map. Mixing two data structures in single
//! transactions is exactly the kind of composition the TM programming model
//! makes safe (paper §1).
//!
//! Run with `cargo run --example task_scheduler`.

use std::sync::Arc;

use stm_core::config::StmConfig;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_workloads::structures::{HashMap, Queue};
use swisstm::SwissTm;

const JOBS: u64 = 5_000;
const WORKERS: usize = 3;

fn main() {
    let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
    let queue = Queue::create(stm.heap()).expect("heap exhausted");
    let results = HashMap::create(stm.heap(), 1024).expect("heap exhausted");

    // Producer: enqueue all jobs (in batches of one transaction each, so
    // consumers can start immediately).
    let producer = {
        let stm = Arc::clone(&stm);
        std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(stm);
            for job in 1..=JOBS {
                ctx.atomically(|tx| queue.enqueue(tx, job))
                    .expect("enqueue retries until it commits");
            }
        })
    };

    // Workers: atomically claim a job AND publish its result — either both
    // happen or neither, so no job can be lost or processed twice.
    let workers: Vec<_> = (0..WORKERS)
        .map(|worker| {
            let stm = Arc::clone(&stm);
            std::thread::spawn(move || {
                let mut ctx = ThreadContext::register(stm);
                let mut processed = 0u64;
                let mut idle_rounds = 0;
                while idle_rounds < 1_000 {
                    let claimed = ctx
                        .atomically(|tx| {
                            let Some(job) = queue.dequeue(tx)? else {
                                return Ok(None);
                            };
                            // "Process" the job: its result is job squared.
                            results.insert(tx, job, job * job)?;
                            Ok(Some(job))
                        })
                        .expect("worker transaction retries until it commits");
                    match claimed {
                        Some(_) => {
                            processed += 1;
                            idle_rounds = 0;
                        }
                        None => idle_rounds += 1,
                    }
                }
                (worker, processed)
            })
        })
        .collect();

    producer.join().expect("producer panicked");
    let mut total = 0;
    for worker in workers {
        let (id, processed) = worker.join().expect("worker panicked");
        println!("worker {id} processed {processed} jobs");
        total += processed;
    }

    let mut ctx = ThreadContext::register(stm);
    let stored = ctx
        .atomically(|tx| results.len(tx))
        .expect("final check commits");
    println!("jobs processed : {total}");
    println!("results stored : {stored}");
    assert_eq!(total, JOBS);
    assert_eq!(stored as u64, JOBS);
    let sample = ctx.atomically(|tx| results.get(tx, 1234)).unwrap();
    assert_eq!(sample, Some(1234 * 1234));
    println!(
        "result[1234] = {:?} — every job ran exactly once",
        sample.unwrap()
    );
}
