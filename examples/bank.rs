//! A classic bank-transfer example: concurrent transfers between accounts
//! must never create or destroy money, and an auditing transaction must
//! always observe a consistent total (opacity in action).
//!
//! Run with `cargo run --example bank`.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::config::StmConfig;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::Addr;
use swisstm::SwissTm;

const ACCOUNTS: usize = 64;
const INITIAL_BALANCE: u64 = 1_000;
const TRANSFERS_PER_THREAD: usize = 20_000;

fn main() {
    let stm = Arc::new(SwissTm::with_config(StmConfig::small()));
    let accounts: Addr = stm
        .heap()
        .alloc_zeroed(ACCOUNTS)
        .expect("heap should fit the accounts");
    for i in 0..ACCOUNTS {
        stm.heap().store(accounts.offset(i), INITIAL_BALANCE);
    }

    let mut handles = Vec::new();

    // Transfer threads.
    for worker in 0..3u64 {
        let stm = Arc::clone(&stm);
        handles.push(std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(stm);
            let mut rng = FastRng::new(worker + 1);
            for _ in 0..TRANSFERS_PER_THREAD {
                let from = rng.next_below(ACCOUNTS as u64) as usize;
                let to = rng.next_below(ACCOUNTS as u64) as usize;
                let amount = 1 + rng.next_below(50);
                ctx.atomically(|tx| {
                    let from_balance = tx.read(accounts.offset(from))?;
                    let to_balance = tx.read(accounts.offset(to))?;
                    if from != to && from_balance >= amount {
                        tx.write(accounts.offset(from), from_balance - amount)?;
                        tx.write(accounts.offset(to), to_balance + amount)?;
                    }
                    Ok(())
                })
                .expect("transfer retries until it commits");
            }
        }));
    }

    // Auditor thread: repeatedly sums all balances inside one (read-only)
    // transaction; opacity guarantees every observed total is exact.
    {
        let stm = Arc::clone(&stm);
        handles.push(std::thread::spawn(move || {
            let mut ctx = ThreadContext::register(stm);
            for audit in 0..200 {
                let total: u64 = ctx
                    .atomically(|tx| {
                        let mut sum = 0;
                        for i in 0..ACCOUNTS {
                            sum += tx.read(accounts.offset(i))?;
                        }
                        Ok(sum)
                    })
                    .expect("audit retries until it commits");
                assert_eq!(
                    total,
                    ACCOUNTS as u64 * INITIAL_BALANCE,
                    "audit #{audit} observed an inconsistent total"
                );
            }
        }));
    }

    for handle in handles {
        handle.join().expect("worker thread panicked");
    }

    let final_total: u64 = (0..ACCOUNTS)
        .map(|i| stm.heap().load(accounts.offset(i)))
        .sum();
    println!("accounts      : {ACCOUNTS}");
    println!("final total   : {final_total}");
    println!("expected total: {}", ACCOUNTS as u64 * INITIAL_BALANCE);
    assert_eq!(final_total, ACCOUNTS as u64 * INITIAL_BALANCE);
    println!("every audit observed a consistent snapshot — opacity holds");
}
