//! A concurrent ordered set built from the transactional red-black tree,
//! exercised by a mixed lookup/insert/remove workload on all four STMs —
//! the paper's microbenchmark (Figure 5) in example form.
//!
//! Run with `cargo run --example concurrent_set --release`.

use std::sync::Arc;
use std::time::Duration;

use stm_core::config::StmConfig;
use stm_core::tm::TmAlgorithm;
use stm_workloads::driver::{run_workload, RunLength};
use stm_workloads::rbtree::{RbTreeConfig, RbTreeWorkload};
use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

fn run_one<A: TmAlgorithm>(name: &str, stm: Arc<A>) {
    let config = RbTreeConfig {
        key_range: 4096,
        update_percent: 20,
        initial_size: 2048,
    };
    let workload = RbTreeWorkload::setup(&stm, config, 42);
    let threads = 4;
    let result = run_workload(
        stm,
        workload,
        threads,
        RunLength::Duration(Duration::from_millis(300)),
        7,
    );
    println!(
        "{name:10}  {:>10.0} tx/s   abort ratio {:.3}   ({} ops on {} threads)",
        result.throughput(),
        result.abort_ratio(),
        result.operations,
        threads,
    );
}

fn main() {
    println!("concurrent red-black tree set, 4096 keys, 20% updates\n");
    run_one(
        "SwissTM",
        Arc::new(SwissTm::with_config(StmConfig::small())),
    );
    run_one("TL2", Arc::new(Tl2::with_config(StmConfig::small())));
    run_one(
        "TinySTM",
        Arc::new(TinyStm::with_config(StmConfig::small())),
    );
    run_one(
        "RSTM",
        Arc::new(rstm::Rstm::with_config(StmConfig::small())),
    );
    println!("\n(the relative ordering at higher thread counts is the paper's Figure 5)");
}
