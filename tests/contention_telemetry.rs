//! Deterministic conflict rig + telemetry invariants.
//!
//! Part 1 — the rig. Each scenario stages a *stuck lock* directly in the
//! STM's lock table, owned by a fabricated victim slot whose shared record
//! (CM timestamp, Polka priority) the test scripts explicitly. The attacker
//! then runs a real transaction into the conflict. A
//! [`stm_core::testkit::RecordingCm`] wraps the contention manager, records
//! every `resolve` outcome, and — via its resolve hook — releases the stuck
//! lock the moment the manager decides `AbortOther`, so the attacker's
//! acquisition loop observes *exactly one* resolution per decision. The
//! whole schedule runs on a single thread: no timing, no flakiness, and the
//! resolution sequence plus every telemetry counter can be asserted
//! exactly, for all five contention managers on all four STMs.
//!
//! Part 2 — the property test. For every (STM × CM) pair, a seeded
//! money-transfer stress asserts the accounting invariants that must never
//! drift: `aborts == Σ aborts_by_reason`, received remote aborts ≤
//! inflicted remote aborts (a delivered request can be missed — the victim
//! may commit first — but never invented), retry-histogram total == commits,
//! CM-resolution self-aborts ≤ aborts, and wait time ≤ total thread time.

use std::sync::Arc;
use std::time::Instant;

use stm_core::backoff::FastRng;
use stm_core::clock::TxShared;
use stm_core::cm::{CmHandle, Greedy, Polka, Resolution, Serializer, Timid, TwoPhase};
use stm_core::config::StmConfig;
use stm_core::error::StmError;
use stm_core::stats::TxStats;
use stm_core::telemetry::ConflictSite;
use stm_core::testkit::RecordingCm;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::Addr;

use rstm::{Rstm, RstmVariant};
use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

use Resolution::{AbortOther, AbortSelf, Wait};

fn config() -> StmConfig {
    StmConfig::small()
}

/// One scripted conflict, independent of the STM under test.
///
/// `conflict_writes` is the number of `on_write` hook invocations the
/// attacker has seen when the conflict resolves — it differs per STM
/// (encounter-time STMs count only the pre-writes; TL2 also counts the
/// conflicting write, which it buffers before commit), so Polka priorities
/// and TwoPhase thresholds are stated relative to it.
struct Scenario {
    name: &'static str,
    /// Builds the inner CM; receives `conflict_writes`.
    make_cm: fn(u64) -> CmHandle,
    /// Scripts the fabricated victim's shared record; receives
    /// `conflict_writes` (== the attacker's Polka priority at conflict).
    victim_setup: fn(&TxShared, u64),
    /// Non-conflicting writes the attacker performs before the conflicting
    /// one (boosts Polka priority by one each, promotes TwoPhase).
    pre_writes: usize,
    /// The exact resolution sequence the rig must observe.
    expected: &'static [Resolution],
}

fn no_victim_setup(_: &TxShared, _: u64) {}

/// The scripted conflict schedules: every contention manager's documented
/// resolution behaviour, pinned exactly.
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "timid always aborts the attacker",
            make_cm: |_| Arc::new(Timid::new()),
            victim_setup: no_victim_setup,
            pre_writes: 0,
            expected: &[AbortSelf],
        },
        Scenario {
            name: "greedy: older attacker aborts the victim",
            make_cm: |_| Arc::new(Greedy::new()),
            // The attacker draws timestamp 1 from the manager's fresh
            // clock; a victim at 100 is younger and loses.
            victim_setup: |victim, _| victim.set_cm_ts(100),
            pre_writes: 0,
            expected: &[AbortOther],
        },
        Scenario {
            name: "greedy: younger attacker aborts itself",
            make_cm: |_| Arc::new(Greedy::new()),
            victim_setup: |victim, _| victim.set_cm_ts(0),
            pre_writes: 0,
            expected: &[AbortSelf],
        },
        Scenario {
            name: "serializer: older attacker aborts the victim",
            make_cm: |_| Arc::new(Serializer::new()),
            victim_setup: |victim, _| victim.set_cm_ts(100),
            pre_writes: 0,
            expected: &[AbortOther],
        },
        Scenario {
            name: "serializer: younger attacker aborts itself",
            make_cm: |_| Arc::new(Serializer::new()),
            victim_setup: |victim, _| victim.set_cm_ts(0),
            pre_writes: 0,
            expected: &[AbortSelf],
        },
        Scenario {
            name: "polka: waits exactly the deficit, then aborts the victim",
            make_cm: |_| Arc::new(Polka::with_attempts(10)),
            victim_setup: |victim, attacker_priority| victim.set_priority(attacker_priority + 2),
            pre_writes: 0,
            expected: &[Wait, Wait, AbortOther],
        },
        Scenario {
            name: "polka: budget caps the waits, then the victim dies",
            make_cm: |_| Arc::new(Polka::with_attempts(1)),
            victim_setup: |victim, attacker_priority| victim.set_priority(attacker_priority + 50),
            pre_writes: 0,
            expected: &[Wait, AbortOther],
        },
        Scenario {
            name: "polka: a zero budget never waits",
            make_cm: |_| Arc::new(Polka::with_attempts(0)),
            victim_setup: |victim, attacker_priority| victim.set_priority(attacker_priority + 50),
            pre_writes: 0,
            expected: &[AbortOther],
        },
        Scenario {
            name: "two-phase: first phase is timid",
            make_cm: |_| Arc::new(TwoPhase::new()),
            victim_setup: no_victim_setup,
            pre_writes: 0,
            expected: &[AbortSelf],
        },
        Scenario {
            name: "two-phase: flips to greedy exactly at wn",
            make_cm: |conflict_writes| Arc::new(TwoPhase::with_wn(conflict_writes as usize)),
            victim_setup: no_victim_setup,
            pre_writes: 1,
            expected: &[AbortOther],
        },
        Scenario {
            name: "two-phase: one write below wn is still timid",
            make_cm: |conflict_writes| Arc::new(TwoPhase::with_wn(conflict_writes as usize + 1)),
            victim_setup: no_victim_setup,
            pre_writes: 1,
            expected: &[AbortSelf],
        },
        Scenario {
            name: "two-phase: older promoted owner beats a promoted attacker",
            make_cm: |conflict_writes| Arc::new(TwoPhase::with_wn(conflict_writes as usize)),
            victim_setup: |victim, _| victim.set_cm_ts(0),
            pre_writes: 1,
            expected: &[AbortSelf],
        },
    ]
}

/// Runs the attacker into the staged conflict and asserts the exact
/// resolution sequence and telemetry counters. `conflict_writes` is the
/// attacker's `on_write` count at conflict time (see [`Scenario`]).
fn drive_attacker<A: TmAlgorithm>(
    stm: &Arc<A>,
    recording: &RecordingCm,
    scenario: &Scenario,
    conflict_addr: Addr,
    pre_addrs: &[Addr],
    site: ConflictSite,
) {
    let name = format!("[{} / {}]", stm.name(), scenario.name);
    let expected = scenario.expected;
    let self_aborts = expected.iter().filter(|r| **r == AbortSelf).count() as u64;
    let other_aborts = expected.iter().filter(|r| **r == AbortOther).count() as u64;
    let waits = expected.iter().filter(|r| **r == Wait).count() as u64;
    let attacker_wins = *expected.last().unwrap() == AbortOther;
    let budget = if attacker_wins {
        self_aborts + 1
    } else {
        self_aborts
    };

    let mut ctx = ThreadContext::register(Arc::clone(stm)).with_retry_budget(budget);
    let result = ctx.atomically(|tx| {
        for (i, &addr) in pre_addrs.iter().enumerate() {
            tx.write(addr, i as u64 + 1)?;
        }
        tx.write(conflict_addr, 42)
    });

    if attacker_wins {
        result.unwrap_or_else(|e| panic!("{name}: the attacker should commit, got {e:?}"));
        assert_eq!(stm.heap().load(conflict_addr), 42, "{name}: lost write");
    } else {
        assert!(
            matches!(result, Err(StmError::RetryBudgetExhausted { .. })),
            "{name}: the attacker should exhaust its budget, got {result:?}"
        );
        assert_eq!(stm.heap().load(conflict_addr), 0, "{name}: leaked write");
    }

    assert_eq!(
        recording.resolutions(),
        expected.to_vec(),
        "{name}: resolution sequence"
    );

    let stats = ctx.take_stats();
    assert_eq!(
        stats.contention.resolved(site, Wait),
        waits,
        "{name}: waits"
    );
    assert_eq!(
        stats.contention.resolved(site, AbortSelf),
        self_aborts,
        "{name}: self-aborts"
    );
    assert_eq!(
        stats.contention.resolved(site, AbortOther),
        other_aborts,
        "{name}: victim-aborts"
    );
    // Every resolution was attributed to this site and no other.
    for other_site in ConflictSite::ALL {
        if other_site != site {
            for resolution in [Wait, AbortSelf, AbortOther] {
                assert_eq!(
                    stats.contention.resolved(other_site, resolution),
                    0,
                    "{name}: stray resolution at site {other_site:?}"
                );
            }
        }
    }
    // One delivered abort request per AbortOther (the victim's flag was
    // clear, so each delivery is fresh), and no remote aborts received.
    assert_eq!(
        stats.contention.remote_aborts_inflicted, other_aborts,
        "{name}: inflicted"
    );
    assert_eq!(
        stats.contention.remote_aborts_received, 0,
        "{name}: received"
    );
    assert_eq!(stats.aborts, self_aborts, "{name}: aborts");
    assert_eq!(stats.commits, u64::from(attacker_wins), "{name}: commits");
    assert_eq!(
        stats.retries.total(),
        stats.commits,
        "{name}: retry histogram total"
    );
    assert!(
        stats.contention.cm_wait_nanos > 0,
        "{name}: the wait-loop timer must record the contended acquisition"
    );
}

/// The per-STM staging: how the rig fabricates a stuck lock owned by the
/// victim slot and how the resolve hook releases it on `AbortOther`.
fn run_rig_on_swisstm(scenario: &Scenario) {
    let conflict_writes = scenario.pre_writes as u64;
    let recording = Arc::new(RecordingCm::new((scenario.make_cm)(conflict_writes)));
    let stm = Arc::new(
        SwissTm::builder()
            .config(config())
            .contention_manager(Arc::clone(&recording) as CmHandle)
            .build(),
    );
    let victim_slot = stm.registry().register().unwrap();
    (scenario.victim_setup)(stm.registry().shared(victim_slot), conflict_writes);
    let (conflict_addr, pre_addrs) = rig_addresses(stm.heap(), scenario.pre_writes);
    assert!(stm
        .lock_table()
        .entry(conflict_addr)
        .try_acquire_write(victim_slot));
    let hook_stm = Arc::clone(&stm);
    recording.set_resolve_hook(Box::new(move |resolution| {
        if resolution == AbortOther {
            hook_stm.lock_table().entry(conflict_addr).release_write();
        }
    }));
    drive_attacker(
        &stm,
        &recording,
        scenario,
        conflict_addr,
        &pre_addrs,
        ConflictSite::Write,
    );
    recording.clear_resolve_hook();
}

fn run_rig_on_tinystm(scenario: &Scenario) {
    let conflict_writes = scenario.pre_writes as u64;
    let recording = Arc::new(RecordingCm::new((scenario.make_cm)(conflict_writes)));
    let stm = Arc::new(
        TinyStm::builder()
            .config(config())
            .contention_manager(Arc::clone(&recording) as CmHandle)
            .build(),
    );
    let victim_slot = stm.registry().register().unwrap();
    (scenario.victim_setup)(stm.registry().shared(victim_slot), conflict_writes);
    let (conflict_addr, pre_addrs) = rig_addresses(stm.heap(), scenario.pre_writes);
    assert!(stm
        .lock_table()
        .entry(conflict_addr)
        .try_acquire(victim_slot, 0));
    let hook_stm = Arc::clone(&stm);
    recording.set_resolve_hook(Box::new(move |resolution| {
        if resolution == AbortOther {
            hook_stm.lock_table().entry(conflict_addr).restore(0);
        }
    }));
    drive_attacker(
        &stm,
        &recording,
        scenario,
        conflict_addr,
        &pre_addrs,
        ConflictSite::Write,
    );
    recording.clear_resolve_hook();
}

fn run_rig_on_tl2(scenario: &Scenario) {
    // TL2 buffers the conflicting write and calls `on_write` for it before
    // the commit-time conflict, so the attacker has seen one more write
    // than the encounter-time STMs when `resolve` runs.
    let conflict_writes = scenario.pre_writes as u64 + 1;
    let recording = Arc::new(RecordingCm::new((scenario.make_cm)(conflict_writes)));
    let stm = Arc::new(
        Tl2::builder()
            .config(config())
            .contention_manager(Arc::clone(&recording) as CmHandle)
            .build(),
    );
    let victim_slot = stm.registry().register().unwrap();
    (scenario.victim_setup)(stm.registry().shared(victim_slot), conflict_writes);
    let (conflict_addr, pre_addrs) = rig_addresses(stm.heap(), scenario.pre_writes);
    assert!(stm
        .lock_table()
        .entry(conflict_addr)
        .try_lock(victim_slot, 0));
    let hook_stm = Arc::clone(&stm);
    recording.set_resolve_hook(Box::new(move |resolution| {
        if resolution == AbortOther {
            hook_stm.lock_table().entry(conflict_addr).restore(0);
        }
    }));
    drive_attacker(
        &stm,
        &recording,
        scenario,
        conflict_addr,
        &pre_addrs,
        ConflictSite::Commit,
    );
    recording.clear_resolve_hook();
}

fn run_rig_on_rstm(scenario: &Scenario) {
    let conflict_writes = scenario.pre_writes as u64;
    let recording = Arc::new(RecordingCm::new((scenario.make_cm)(conflict_writes)));
    let stm = Arc::new(
        Rstm::builder()
            .config(config())
            .variant(RstmVariant::eager_invisible())
            .contention_manager(Arc::clone(&recording) as CmHandle)
            .build(),
    );
    let victim_slot = stm.registry().register().unwrap();
    (scenario.victim_setup)(stm.registry().shared(victim_slot), conflict_writes);
    let (conflict_addr, pre_addrs) = rig_addresses(stm.heap(), scenario.pre_writes);
    assert!(stm.objects().entry(conflict_addr).try_acquire(victim_slot));
    let hook_stm = Arc::clone(&stm);
    recording.set_resolve_hook(Box::new(move |resolution| {
        if resolution == AbortOther {
            hook_stm.objects().entry(conflict_addr).release();
        }
    }));
    drive_attacker(
        &stm,
        &recording,
        scenario,
        conflict_addr,
        &pre_addrs,
        ConflictSite::Write,
    );
    recording.clear_resolve_hook();
}

/// Allocates the conflict word plus `pre_writes` extra words, two words
/// apart so every address lands on its own lock-table stripe at the
/// default grain.
fn rig_addresses(heap: &stm_core::heap::TmHeap, pre_writes: usize) -> (Addr, Vec<Addr>) {
    let block = heap.alloc_zeroed(2 * (pre_writes + 1)).unwrap();
    let pre_addrs = (1..=pre_writes).map(|i| block.offset(2 * i)).collect();
    (block, pre_addrs)
}

#[test]
fn conflict_rig_pins_every_cm_on_swisstm() {
    for scenario in scenarios() {
        run_rig_on_swisstm(&scenario);
    }
}

#[test]
fn conflict_rig_pins_every_cm_on_tinystm() {
    for scenario in scenarios() {
        run_rig_on_tinystm(&scenario);
    }
}

#[test]
fn conflict_rig_pins_every_cm_on_tl2() {
    for scenario in scenarios() {
        run_rig_on_tl2(&scenario);
    }
}

#[test]
fn conflict_rig_pins_every_cm_on_rstm() {
    for scenario in scenarios() {
        run_rig_on_rstm(&scenario);
    }
}

/// RSTM's two extra conflict sites, staged the same way: an eager
/// read/write conflict against a stuck owner (site `Read`) and a writer
/// acquiring an object with a registered visible reader (site
/// `VisibleReader`).
#[test]
fn conflict_rig_covers_rstm_read_site() {
    // Timid: the reader aborts itself with `read-locked`.
    let recording = Arc::new(RecordingCm::new(Arc::new(Timid::new()) as CmHandle));
    let stm = Arc::new(
        Rstm::builder()
            .config(config())
            .contention_manager(Arc::clone(&recording) as CmHandle)
            .build(),
    );
    let victim_slot = stm.registry().register().unwrap();
    let addr = stm.heap().alloc_zeroed(1).unwrap();
    assert!(stm.objects().entry(addr).try_acquire(victim_slot));
    let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
    let result = ctx.atomically(|tx| tx.read(addr));
    assert!(matches!(
        result,
        Err(StmError::RetryBudgetExhausted { attempts: 1 })
    ));
    assert_eq!(recording.resolutions(), vec![AbortSelf]);
    let stats = ctx.take_stats();
    assert_eq!(stats.contention.resolved(ConflictSite::Read, AbortSelf), 1);
    assert_eq!(stats.aborts_by_reason.get("read-locked"), Some(&1));
    assert!(stats.contention.cm_wait_nanos > 0);

    // Greedy with an older attacker: the stuck owner is evicted and the
    // read completes.
    let recording = Arc::new(RecordingCm::new(Arc::new(Greedy::new()) as CmHandle));
    let stm = Arc::new(
        Rstm::builder()
            .config(config())
            .contention_manager(Arc::clone(&recording) as CmHandle)
            .build(),
    );
    let victim_slot = stm.registry().register().unwrap();
    stm.registry().shared(victim_slot).set_cm_ts(100);
    let addr = stm.heap().alloc_zeroed(1).unwrap();
    stm.heap().store(addr, 17);
    assert!(stm.objects().entry(addr).try_acquire(victim_slot));
    let hook_stm = Arc::clone(&stm);
    recording.set_resolve_hook(Box::new(move |resolution| {
        if resolution == AbortOther {
            hook_stm.objects().entry(addr).release();
        }
    }));
    let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
    let value = ctx.atomically(|tx| tx.read(addr)).unwrap();
    assert_eq!(value, 17);
    assert_eq!(recording.resolutions(), vec![AbortOther]);
    let stats = ctx.take_stats();
    assert_eq!(stats.contention.resolved(ConflictSite::Read, AbortOther), 1);
    assert_eq!(stats.contention.remote_aborts_inflicted, 1);
    recording.clear_resolve_hook();
}

#[test]
fn conflict_rig_covers_rstm_visible_reader_site() {
    // Timid: the writer backs off from the registered reader.
    let recording = Arc::new(RecordingCm::new(Arc::new(Timid::new()) as CmHandle));
    let stm = Arc::new(
        Rstm::builder()
            .config(config())
            .contention_manager(Arc::clone(&recording) as CmHandle)
            .build(),
    );
    let victim_slot = stm.registry().register().unwrap();
    let addr = stm.heap().alloc_zeroed(1).unwrap();
    stm.objects().entry(addr).add_reader(victim_slot);
    let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
    let result = ctx.atomically(|tx| tx.write(addr, 5));
    assert!(matches!(
        result,
        Err(StmError::RetryBudgetExhausted { attempts: 1 })
    ));
    assert_eq!(recording.resolutions(), vec![AbortSelf]);
    let stats = ctx.take_stats();
    assert_eq!(
        stats
            .contention
            .resolved(ConflictSite::VisibleReader, AbortSelf),
        1
    );

    // Greedy with an older attacker: the reader is told to abort and the
    // write commits over it.
    let recording = Arc::new(RecordingCm::new(Arc::new(Greedy::new()) as CmHandle));
    let stm = Arc::new(
        Rstm::builder()
            .config(config())
            .contention_manager(Arc::clone(&recording) as CmHandle)
            .build(),
    );
    let victim_slot = stm.registry().register().unwrap();
    stm.registry().shared(victim_slot).set_cm_ts(100);
    let addr = stm.heap().alloc_zeroed(1).unwrap();
    stm.objects().entry(addr).add_reader(victim_slot);
    let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
    ctx.atomically(|tx| tx.write(addr, 5)).unwrap();
    assert_eq!(stm.heap().load(addr), 5);
    assert_eq!(recording.resolutions(), vec![AbortOther]);
    let stats = ctx.take_stats();
    assert_eq!(
        stats
            .contention
            .resolved(ConflictSite::VisibleReader, AbortOther),
        1
    );
    assert_eq!(stats.contention.remote_aborts_inflicted, 1);
    assert!(
        stm.registry().shared(victim_slot).abort_requested(),
        "the victim reader must have been told to abort"
    );
}

// ---------------------------------------------------------------------------
// Part 2: cross-STM telemetry invariants under real contention.
// ---------------------------------------------------------------------------

const STRESS_THREADS: usize = 4;
const STRESS_OPS: u64 = 150;
const STRESS_ACCOUNTS: usize = 8;

/// Runs the seeded money-transfer stress and returns the merged statistics
/// plus the wall-clock time of the run.
fn money_transfer_stress<A: TmAlgorithm>(stm: &Arc<A>) -> (TxStats, std::time::Duration) {
    let base = stm.heap().alloc_zeroed(STRESS_ACCOUNTS).unwrap();
    for i in 0..STRESS_ACCOUNTS {
        stm.heap().store(base.offset(i), 1_000);
    }
    let started = Instant::now();
    let per_thread: Vec<TxStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STRESS_THREADS as u64)
            .map(|t| {
                let stm = Arc::clone(stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    let mut rng = FastRng::new(t + 31);
                    for _ in 0..STRESS_OPS {
                        let from = rng.next_below(STRESS_ACCOUNTS as u64) as usize;
                        let to = rng.next_below(STRESS_ACCOUNTS as u64) as usize;
                        ctx.atomically(|tx| {
                            let f = tx.read(base.offset(from))?;
                            let t_balance = tx.read(base.offset(to))?;
                            if from != to && f >= 10 {
                                tx.write(base.offset(from), f - 10)?;
                                tx.write(base.offset(to), t_balance + 10)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                    ctx.take_stats()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();
    let total: u64 = (0..STRESS_ACCOUNTS)
        .map(|i| stm.heap().load(base.offset(i)))
        .sum();
    assert_eq!(
        total,
        1_000 * STRESS_ACCOUNTS as u64,
        "{}: money created or destroyed",
        stm.name()
    );
    let mut totals = TxStats::new();
    for stats in &per_thread {
        totals.merge(stats);
    }
    (totals, wall)
}

/// The telemetry invariants that must hold for any (STM × CM) pair.
fn assert_telemetry_invariants(label: &str, totals: &TxStats, wall: std::time::Duration) {
    assert_eq!(
        totals.commits,
        STRESS_THREADS as u64 * STRESS_OPS,
        "{label}: one commit per operation"
    );
    let by_reason: u64 = totals.aborts_by_reason.values().sum();
    assert_eq!(
        totals.aborts, by_reason,
        "{label}: aborts must equal the sum of aborts_by_reason"
    );
    assert_eq!(
        totals.retries.total(),
        totals.commits,
        "{label}: every commit lands in exactly one retry bucket"
    );
    let remote_reason = totals
        .aborts_by_reason
        .get("remote-abort")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        totals.contention.remote_aborts_received, remote_reason,
        "{label}: the received counter mirrors the remote-abort reason"
    );
    assert!(
        totals.contention.remote_aborts_received <= totals.contention.remote_aborts_inflicted,
        "{label}: {} remote aborts received but only {} delivered — a victim \
         cannot abort remotely without somebody inflicting it",
        totals.contention.remote_aborts_received,
        totals.contention.remote_aborts_inflicted
    );
    assert!(
        totals.contention.aborts_self() <= totals.aborts,
        "{label}: every AbortSelf resolution dooms exactly one attempt"
    );
    let thread_time_nanos = wall.as_nanos() as u64 * STRESS_THREADS as u64;
    assert!(
        totals.contention.cm_wait_nanos <= thread_time_nanos,
        "{label}: {}ns waited > {}ns of total thread time",
        totals.contention.cm_wait_nanos,
        thread_time_nanos
    );
    assert!(
        totals.contention.backoff_nanos <= thread_time_nanos,
        "{label}: back-off time exceeds total thread time"
    );
}

type CmFactory = fn() -> CmHandle;

fn all_cms() -> Vec<(&'static str, CmFactory)> {
    vec![
        ("timid", || Arc::new(Timid::new())),
        ("greedy", || Arc::new(Greedy::new())),
        ("serializer", || Arc::new(Serializer::new())),
        ("polka", || Arc::new(Polka::new())),
        ("two-phase", || Arc::new(TwoPhase::new())),
    ]
}

#[test]
fn telemetry_invariants_hold_for_every_cm_on_swisstm() {
    for (cm_name, make_cm) in all_cms() {
        let stm = Arc::new(
            SwissTm::builder()
                .config(config())
                .contention_manager(make_cm())
                .build(),
        );
        let (totals, wall) = money_transfer_stress(&stm);
        assert_telemetry_invariants(&format!("SwissTM × {cm_name}"), &totals, wall);
    }
}

#[test]
fn telemetry_invariants_hold_for_every_cm_on_tl2() {
    for (cm_name, make_cm) in all_cms() {
        let stm = Arc::new(
            Tl2::builder()
                .config(config())
                .contention_manager(make_cm())
                .build(),
        );
        let (totals, wall) = money_transfer_stress(&stm);
        assert_telemetry_invariants(&format!("TL2 × {cm_name}"), &totals, wall);
    }
}

#[test]
fn telemetry_invariants_hold_for_every_cm_on_tinystm() {
    for (cm_name, make_cm) in all_cms() {
        let stm = Arc::new(
            TinyStm::builder()
                .config(config())
                .contention_manager(make_cm())
                .build(),
        );
        let (totals, wall) = money_transfer_stress(&stm);
        assert_telemetry_invariants(&format!("TinySTM × {cm_name}"), &totals, wall);
    }
}

#[test]
fn telemetry_invariants_hold_for_every_cm_on_rstm() {
    for (cm_name, make_cm) in all_cms() {
        // Eager/invisible is the paper's default; eager/visible exercises
        // the visible-reader site under real contention.
        for variant in [RstmVariant::eager_invisible(), RstmVariant::eager_visible()] {
            let stm = Arc::new(
                Rstm::builder()
                    .config(config())
                    .variant(variant)
                    .contention_manager(make_cm())
                    .build(),
            );
            let (totals, wall) = money_transfer_stress(&stm);
            assert_telemetry_invariants(
                &format!("RSTM[{}] × {cm_name}", variant.label()),
                &totals,
                wall,
            );
        }
    }
}
