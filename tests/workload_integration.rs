//! Integration tests spanning the workloads and the STM implementations:
//! short end-to-end runs of every benchmark family on more than one STM.

use std::sync::Arc;
use std::time::Duration;

use stm_core::config::{HeapConfig, LockTableConfig, StmConfig};
use stm_core::tm::ThreadContext;
use stm_workloads::driver::{run_workload, RunLength};
use stm_workloads::lee::{LeeConfig, LeeWorkload};
use stm_workloads::rbtree::{RbTreeConfig, RbTreeWorkload};
use stm_workloads::stamp::StampApp;
use stm_workloads::stmbench7::{Bench7Config, Bench7Data, Bench7Workload, WorkloadMix};

use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

fn config() -> StmConfig {
    StmConfig {
        heap: HeapConfig::with_words(1 << 21),
        lock_table: LockTableConfig::small(),
        clock: stm_core::config::ClockMode::Strict,
    }
}

#[test]
fn stmbench7_all_three_mixes_run_on_swisstm() {
    for mix in [
        WorkloadMix::read_dominated(),
        WorkloadMix::read_write(),
        WorkloadMix::write_dominated(),
    ] {
        let stm = Arc::new(SwissTm::with_config(config()));
        let data = Bench7Data::build(&stm, Bench7Config::tiny(), 11);
        let workload = Arc::new(Bench7Workload::new(data, mix));
        let result = run_workload(stm, workload, 3, RunLength::OpsPerThread(40), 3);
        assert!(result.check_passed, "mix {} failed", mix.name);
        assert_eq!(result.operations, 120);
    }
}

#[test]
fn stmbench7_throughput_mode_runs_on_tl2() {
    let stm = Arc::new(Tl2::with_config(config()));
    let data = Bench7Data::build(&stm, Bench7Config::tiny(), 13);
    let workload = Arc::new(Bench7Workload::new(data, WorkloadMix::read_dominated()));
    let result = run_workload(
        stm,
        workload,
        2,
        RunLength::Duration(Duration::from_millis(60)),
        5,
    );
    assert!(result.check_passed);
    assert!(result.operations > 0);
}

#[test]
fn lee_routes_the_same_netlist_on_swisstm_and_tinystm() {
    let config_lee = LeeConfig::tiny();

    let swiss = Arc::new(SwissTm::with_config(config()));
    let workload = LeeWorkload::setup(&swiss, config_lee, 21);
    let result = run_workload(
        Arc::clone(&swiss),
        Arc::clone(&workload),
        2,
        RunLength::TotalOps(config_lee.routes as u64),
        1,
    );
    assert!(result.check_passed);
    let mut ctx = ThreadContext::register(swiss);
    let routed_swiss = workload.routed(&mut ctx);

    let tiny = Arc::new(TinyStm::with_config(config()));
    let workload = LeeWorkload::setup(&tiny, config_lee, 21);
    let result = run_workload(
        Arc::clone(&tiny),
        Arc::clone(&workload),
        2,
        RunLength::TotalOps(config_lee.routes as u64),
        1,
    );
    assert!(result.check_passed);
    let mut ctx = ThreadContext::register(tiny);
    let routed_tiny = workload.routed(&mut ctx);

    // The exact count can differ by a route or two depending on the
    // interleaving (a blocked cell may make an alternative route
    // unroutable), but both STMs must route a substantial part of the
    // netlist.
    assert!(routed_swiss > 0 && routed_tiny > 0);
}

#[test]
fn irregular_lee_still_produces_consistent_grids() {
    let stm = Arc::new(SwissTm::with_config(config()));
    let lee_config = LeeConfig::tiny().with_irregular_updates(20);
    let workload = LeeWorkload::setup(&stm, lee_config, 5);
    let result = run_workload(stm, workload, 3, RunLength::TotalOps(24), 9);
    assert!(result.check_passed);
}

#[test]
fn rbtree_microbenchmark_runs_on_all_stms_with_updates() {
    let config_tree = RbTreeConfig {
        key_range: 256,
        update_percent: 50,
        initial_size: 128,
    };
    let swiss = Arc::new(SwissTm::with_config(config()));
    let workload = RbTreeWorkload::setup(&swiss, config_tree, 3);
    assert!(run_workload(swiss, workload, 4, RunLength::OpsPerThread(200), 3).check_passed);

    let tl2 = Arc::new(Tl2::with_config(config()));
    let workload = RbTreeWorkload::setup(&tl2, config_tree, 3);
    assert!(run_workload(tl2, workload, 4, RunLength::OpsPerThread(200), 3).check_passed);

    let tiny = Arc::new(TinyStm::with_config(config()));
    let workload = RbTreeWorkload::setup(&tiny, config_tree, 3);
    assert!(run_workload(tiny, workload, 4, RunLength::OpsPerThread(200), 3).check_passed);

    let rstm = Arc::new(rstm::Rstm::with_config(config()));
    let workload = RbTreeWorkload::setup(&rstm, config_tree, 3);
    assert!(run_workload(rstm, workload, 4, RunLength::OpsPerThread(200), 3).check_passed);
}

#[test]
fn a_stamp_subset_runs_on_swisstm_and_tl2() {
    for app in [
        StampApp::KmeansHigh,
        StampApp::VacationLow,
        StampApp::Genome,
        StampApp::Ssca2,
    ] {
        let stm = Arc::new(SwissTm::with_config(config()));
        let workload = app.build(&stm, 7);
        let result = run_workload(stm, workload, 2, RunLength::TotalOps(32), 5);
        assert!(result.check_passed, "{} on SwissTM", app.label());

        let stm = Arc::new(Tl2::with_config(config()));
        let workload = app.build(&stm, 7);
        let result = run_workload(stm, workload, 2, RunLength::TotalOps(32), 5);
        assert!(result.check_passed, "{} on TL2", app.label());
    }
}
