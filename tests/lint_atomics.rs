//! The repo-wide atomics lint.
//!
//! Two rules, enforced over every `.rs` file in the workspace on every
//! `cargo test` run:
//!
//! 1. **One gateway.** `std::sync::atomic` / `core::sync::atomic` may only
//!    be named inside the [`ALLOWLIST`] (the `stm_core::sync` shim and the
//!    `stm-model` checker that implements its instrumented half). Everything
//!    else imports atomics through the shim, which is what lets
//!    `RUSTFLAGS="--cfg stm_model"` swap every atomic in the STMs for a
//!    model-checked one.
//! 2. **Justified orderings.** Every `Ordering::Relaxed/Acquire/Release/
//!    AcqRel/SeqCst` site must carry a `// sync:` comment — on the same
//!    line, or in the comment block directly above the (possibly
//!    multi-line) statement cluster it belongs to — saying which
//!    happens-before edge it provides or why none is needed. This turns the
//!    prose opacity argument in `stm_core::clock` into a discipline: a
//!    future PR that weakens an ordering has to rewrite the justification,
//!    and the model scenarios in `stm-model-tests` are the proof the
//!    justification appeals to.
//!
//! The allowlist lives here and only here, so a newly added crate is
//! covered by default.

use std::fs;
use std::path::{Path, PathBuf};

/// Path prefixes (relative to the workspace root, `/`-separated) where the
/// rules do not apply. Keep this list as the single source of truth.
const ALLOWLIST: &[&str] = &[
    // The gateway itself: re-exports std atomics in production builds.
    "crates/stm-core/src/sync.rs",
    // The model checker implements the instrumented atomics; it names std
    // atomics and uses `Ordering` pervasively as data, not as sites.
    "crates/stm-model/",
    // This file, whose test snippets mention the forbidden tokens.
    "tests/lint_atomics.rs",
];

/// Directories never scanned.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn is_comment_line(line: &str) -> bool {
    let trimmed = line.trim_start();
    trimmed.starts_with("//")
}

fn has_atomic_ordering(line: &str) -> bool {
    // `std::cmp::Ordering` variants (Less/Equal/Greater) don't collide with
    // the atomic ones, so matching the full `Ordering::<variant>` token is
    // unambiguous.
    ATOMIC_ORDERINGS.iter().any(|tok| line.contains(tok))
}

/// Whether the `Ordering::` use on `lines[idx]` is covered by a `// sync:`
/// justification: on the line itself, or in the comment block directly
/// above its statement cluster (consecutive lines that are comments or
/// other `Ordering::` sites — a multi-line `compare_exchange` needs only
/// one comment).
fn is_justified(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("sync:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = lines[i];
        if is_comment_line(line) {
            if line.contains("sync:") {
                return true;
            }
        } else if !has_atomic_ordering(line) {
            return false;
        }
    }
    false
}

/// Lints one file's source. `label` is the path used in findings.
fn lint_source(label: &str, src: &str) -> Vec<String> {
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        let lineno = idx + 1;
        if line.contains("std::sync::atomic") || line.contains("core::sync::atomic") {
            findings.push(format!(
                "{label}:{lineno}: names std/core::sync::atomic outside the \
                 stm_core::sync shim — import atomics through the shim so the \
                 model checker can instrument them"
            ));
        }
        if has_atomic_ordering(line) && !is_justified(&lines, idx) {
            findings.push(format!(
                "{label}:{lineno}: atomic Ordering:: site without a `// sync:` \
                 justification comment (same line or the comment block above)"
            ));
        }
    }
    findings
}

fn is_allowlisted(rel: &str) -> bool {
    ALLOWLIST.iter().any(|prefix| rel.starts_with(prefix))
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn workspace_atomics_are_shimmed_and_justified() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_rust_files(&root, &mut files);
    assert!(
        files.len() > 20,
        "suspiciously few Rust files found ({}) — lint walking is broken",
        files.len()
    );
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if is_allowlisted(&rel) {
            continue;
        }
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("failed to read {}: {e}", path.display()));
        findings.extend(lint_source(&rel, &src));
    }
    assert!(
        findings.is_empty(),
        "atomics lint failed:\n{}",
        findings.join("\n")
    );
}

#[test]
fn lint_catches_a_std_atomic_import() {
    let bad = "use std::sync::atomic::{AtomicU64, Ordering};\n";
    let findings = lint_source("bad.rs", bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].contains("bad.rs:1"));
    assert!(findings[0].contains("shim"));
}

#[test]
fn lint_catches_an_unjustified_ordering_site() {
    let bad = "\
fn f(x: &stm_core::sync::AtomicU64) -> u64 {
    x.load(Ordering::Acquire)
}
";
    let findings = lint_source("bad.rs", bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].contains("bad.rs:2"));
    assert!(findings[0].contains("sync:"));
}

#[test]
fn lint_accepts_justified_sites() {
    let good = "\
fn f(x: &stm_core::sync::AtomicU64) -> u64 {
    // sync: Acquire pairs with the committer's Release publish.
    x.load(Ordering::Acquire)
}

fn g(x: &stm_core::sync::AtomicU64) {
    x.store(1, Ordering::Release); // sync: same-line justification works too
}

fn cas(x: &stm_core::sync::AtomicU64) {
    let _ = x.compare_exchange(
        0,
        1,
        // sync: one comment covers the whole multi-line call cluster.
        Ordering::AcqRel,
        Ordering::Acquire,
    );
}
";
    assert_eq!(lint_source("good.rs", good), Vec::<String>::new());
}

#[test]
fn lint_ignores_comments_and_unrelated_orderings() {
    let good = "\
//! Docs may mention std::sync::atomic and Ordering::SeqCst freely.
use std::cmp::Ordering;

fn cmp(a: u64, b: u64) -> Ordering {
    a.cmp(&b) // cmp::Ordering variants are not atomic orderings
}
";
    assert_eq!(lint_source("good.rs", good), Vec::<String>::new());
}

#[test]
fn justification_does_not_leak_across_statements() {
    // The comment block justifies only the statement cluster directly
    // beneath it: once any other code intervenes, a later site must carry
    // its own comment. (Directly adjacent Ordering lines do share a
    // comment — that is what lets one comment cover a multi-line
    // compare_exchange.)
    let bad = "\
fn f(x: &stm_core::sync::AtomicU64) {
    // sync: Release publishes the payload.
    x.store(1, Ordering::Release);
    let y = 1;
    let _ = x.load(Ordering::Acquire);
    let _ = y;
}
";
    let findings = lint_source("bad.rs", bad);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].contains("bad.rs:5"));
}
