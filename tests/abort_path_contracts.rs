//! Abort-path contract regressions: a transaction whose *commit* fails must
//! leave its descriptor fully reset — locks released, logs cleared, no
//! stale doomed flag — exactly as if the attempt had aborted inside the
//! body. `atomically` documents that `rollback` runs on every abort path,
//! including after a failed commit; these tests pin the observable side of
//! that contract on all four STMs.

use std::sync::Arc;

use stm_core::config::StmConfig;
use stm_core::error::StmError;
use stm_core::tm::{ThreadContext, TmAlgorithm};

use rstm::Rstm;
use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

fn config() -> StmConfig {
    StmConfig::small()
}

/// Forces a deterministic commit-time validation failure:
///
/// 1. the victim reads `a`,
/// 2. a second context commits two updates to `a` (advancing the global
///    clock past the victim's snapshot and re-versioning `a`),
/// 3. the victim writes `b` and returns, so its commit must validate the
///    read of `a` — which fails on every algorithm.
///
/// With a retry budget of 1 the driver reports the failed commit instead of
/// retrying, and the test can inspect the aftermath.
fn failed_commit_leaves_no_residue<A: TmAlgorithm>(stm: Arc<A>) {
    let name = stm.name();
    let block = stm.heap().alloc_zeroed(4).unwrap();
    let a = block;
    // Two words per stripe at the default grain: offset 2 lands on a
    // different lock-table entry than `a`.
    let b = block.offset(2);

    let mut victim = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);
    let mut other = ThreadContext::register(Arc::clone(&stm));

    let result: Result<(), StmError> = victim.atomically(|tx| {
        let _ = tx.read(a)?;
        // Invalidate the victim's snapshot from a second context. Two
        // commits make sure the clock moves far enough that no algorithm
        // can skip commit-time validation.
        for _ in 0..2 {
            other
                .atomically(|tx2| {
                    let v = tx2.read(a)?;
                    tx2.write(a, v + 1)
                })
                .expect("interfering update must commit");
        }
        tx.write(b, 99)?;
        Ok(())
    });

    // The only attempt must have failed at commit time.
    assert!(
        matches!(result, Err(StmError::RetryBudgetExhausted { attempts: 1 })),
        "{name}: expected the commit to fail deterministically, got {result:?}"
    );
    assert_eq!(victim.stats().commits, 0, "{name}: commit was recorded");
    assert_eq!(victim.stats().aborts, 1, "{name}: abort was not recorded");

    // The aborted write must not have reached the heap.
    assert_eq!(
        stm.heap().load(b),
        0,
        "{name}: failed commit leaked a write"
    );

    // Every lock the failed commit touched must be free again: a *different*
    // context (which can never bypass a leaked lock as its owner) must be
    // able to update both stripes within a bounded number of attempts.
    let mut probe = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(64);
    probe
        .atomically(|tx| {
            tx.write(a, 1000)?;
            tx.write(b, 2000)
        })
        .unwrap_or_else(|e| panic!("{name}: stripes still locked after failed commit: {e:?}"));

    // And the victim's descriptor must be fully reset (no stale doomed flag,
    // cleared logs): its next transaction commits normally.
    victim
        .atomically(|tx| {
            let vb = tx.read(b)?;
            tx.write(b, vb + 1)
        })
        .unwrap_or_else(|e| panic!("{name}: descriptor unusable after failed commit: {e:?}"));
    assert_eq!(stm.heap().load(b), 2001, "{name}: post-failure commit lost");
    assert_eq!(victim.stats().commits, 1);
}

#[test]
fn failed_commit_leaves_no_residue_on_swisstm() {
    failed_commit_leaves_no_residue(Arc::new(SwissTm::with_config(config())));
}

#[test]
fn failed_commit_leaves_no_residue_on_tl2() {
    failed_commit_leaves_no_residue(Arc::new(Tl2::with_config(config())));
}

#[test]
fn failed_commit_leaves_no_residue_on_tinystm() {
    failed_commit_leaves_no_residue(Arc::new(TinyStm::with_config(config())));
}

#[test]
fn failed_commit_leaves_no_residue_on_rstm() {
    failed_commit_leaves_no_residue(Arc::new(Rstm::with_config(config())));
}

/// The multi-thread stress rerun of the money-transfer invariant on all
/// four STMs with the reworked log structures: concurrent transfers across
/// enough accounts to exercise large-ish read/write sets never create or
/// destroy money, even while commit-time validation failures are frequent.
#[test]
fn money_transfer_stress_survives_the_log_rework() {
    fn run<A: TmAlgorithm>(stm: Arc<A>) {
        let name = stm.name();
        let accounts = 32usize;
        let base = stm.heap().alloc_zeroed(accounts).unwrap();
        for i in 0..accounts {
            stm.heap().store(base.offset(i), 1000);
        }
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let stm = Arc::clone(&stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    let mut rng = stm_core::backoff::FastRng::new(t + 101);
                    for _ in 0..400 {
                        let from = rng.next_below(accounts as u64) as usize;
                        let to = rng.next_below(accounts as u64) as usize;
                        ctx.atomically(|tx| {
                            // Audit a window of accounts (a larger read set)
                            // before moving money between two of them.
                            let mut window = 0;
                            for i in 0..8 {
                                window += tx.read(base.offset((from + i) % accounts))?;
                            }
                            let _ = window;
                            let f = tx.read(base.offset(from))?;
                            let t_bal = tx.read(base.offset(to))?;
                            if from != to && f >= 10 {
                                tx.write(base.offset(from), f - 10)?;
                                tx.write(base.offset(to), t_bal + 10)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let total: u64 = (0..accounts).map(|i| stm.heap().load(base.offset(i))).sum();
        assert_eq!(total, 32_000, "money created/destroyed on {name}");
    }

    run(Arc::new(SwissTm::with_config(config())));
    run(Arc::new(Tl2::with_config(config())));
    run(Arc::new(TinyStm::with_config(config())));
    run(Arc::new(Rstm::with_config(config())));
}
