//! Cross-crate integration tests: the same application code must behave
//! identically (and correctly) on every STM in the workspace.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::config::{ClockMode, StmConfig, TableLayout};
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::Addr;
use stm_workloads::structures::{HashMap, Queue, RbTree, SortedList};

use rstm::Rstm;
use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

fn config() -> StmConfig {
    StmConfig::small()
}

/// Runs `test` against all four STM implementations under `config`.
fn for_all_stms_with(config: StmConfig, test: impl Fn(Arc<dyn ErasedStm>)) {
    test(Arc::new(Erased(Arc::new(SwissTm::with_config(config)))));
    test(Arc::new(Erased(Arc::new(Tl2::with_config(config)))));
    test(Arc::new(Erased(Arc::new(TinyStm::with_config(config)))));
    test(Arc::new(Erased(Arc::new(Rstm::with_config(config)))));
}

/// Runs `test` against all four STM implementations (default config).
fn for_all_stms(test: impl Fn(Arc<dyn ErasedStm>)) {
    for_all_stms_with(config(), test);
}

/// A tiny object-safe wrapper so the same test body can drive any algorithm
/// without generics at the call site.
trait ErasedStm: Send + Sync {
    fn name(&self) -> &'static str;
    fn counter_stress(&self, threads: usize, increments: u64) -> u64;
    fn bank_stress(&self, threads: usize, transfers: u64) -> (u64, u64);
    fn tree_stress(&self, keys: u64) -> (bool, u64);
    /// Writer keeps two words equal; readers assert they never differ.
    /// Panics inside a worker (and therefore fails the test) on a torn read.
    fn pair_audit(&self, rounds: u64);
}

struct Erased<A: TmAlgorithm>(Arc<A>);

impl<A: TmAlgorithm> ErasedStm for Erased<A> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn counter_stress(&self, threads: usize, increments: u64) -> u64 {
        let stm = &self.0;
        let counter = stm.heap().alloc_zeroed(1).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let stm = Arc::clone(stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for _ in 0..increments {
                        ctx.atomically(|tx| {
                            let v = tx.read(counter)?;
                            tx.write(counter, v + 1)
                        })
                        .unwrap();
                    }
                });
            }
        });
        stm.heap().load(counter)
    }

    fn bank_stress(&self, threads: usize, transfers: u64) -> (u64, u64) {
        let stm = &self.0;
        let accounts = 16usize;
        let base: Addr = stm.heap().alloc_zeroed(accounts).unwrap();
        for i in 0..accounts {
            stm.heap().store(base.offset(i), 100);
        }
        std::thread::scope(|scope| {
            for t in 0..threads {
                let stm = Arc::clone(stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    let mut rng = FastRng::new(t as u64 + 77);
                    for _ in 0..transfers {
                        let from = rng.next_below(accounts as u64) as usize;
                        let to = rng.next_below(accounts as u64) as usize;
                        ctx.atomically(|tx| {
                            let f = tx.read(base.offset(from))?;
                            let t_bal = tx.read(base.offset(to))?;
                            if from != to && f >= 5 {
                                tx.write(base.offset(from), f - 5)?;
                                tx.write(base.offset(to), t_bal + 5)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let total = (0..accounts).map(|i| stm.heap().load(base.offset(i))).sum();
        (total, accounts as u64 * 100)
    }

    fn tree_stress(&self, keys: u64) -> (bool, u64) {
        let stm = &self.0;
        let tree = RbTree::create(stm.heap()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let stm = Arc::clone(stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for i in 0..keys {
                        let key = i * 4 + t;
                        ctx.atomically(|tx| tree.insert(tx, key, key)).unwrap();
                    }
                    // Remove a quarter of this thread's keys again.
                    for i in (0..keys).step_by(4) {
                        let key = i * 4 + t;
                        ctx.atomically(|tx| tree.remove(tx, key)).unwrap();
                    }
                });
            }
        });
        let mut ctx = ThreadContext::register(Arc::clone(stm));
        let ok = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
        let len = ctx.atomically(|tx| tree.len(tx)).unwrap();
        (ok, len)
    }

    fn pair_audit(&self, rounds: u64) {
        let stm = &self.0;
        let pair = stm.heap().alloc_zeroed(2).unwrap();
        std::thread::scope(|scope| {
            let writer_stm = Arc::clone(stm);
            scope.spawn(move || {
                let mut ctx = ThreadContext::register(writer_stm);
                for i in 1..=rounds {
                    ctx.atomically(|tx| {
                        tx.write(pair, i)?;
                        tx.write(pair.offset(1), i)
                    })
                    .unwrap();
                }
            });
            for _ in 0..2 {
                let reader_stm = Arc::clone(stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(reader_stm);
                    for _ in 0..rounds {
                        let (a, b) = ctx
                            .atomically(|tx| Ok((tx.read(pair)?, tx.read(pair.offset(1))?)))
                            .unwrap();
                        assert_eq!(a, b, "torn read observed");
                    }
                });
            }
        });
    }
}

#[test]
fn counters_are_exact_on_every_stm() {
    for_all_stms(|stm| {
        let total = stm.counter_stress(4, 300);
        assert_eq!(total, 1200, "lost updates on {}", stm.name());
    });
}

#[test]
fn money_is_conserved_on_every_stm() {
    for_all_stms(|stm| {
        let (total, expected) = stm.bank_stress(4, 300);
        assert_eq!(total, expected, "money created/destroyed on {}", stm.name());
    });
}

#[test]
fn red_black_tree_invariants_hold_on_every_stm() {
    for_all_stms(|stm| {
        let (ok, len) = stm.tree_stress(64);
        assert!(ok, "red-black invariants violated on {}", stm.name());
        // 4 threads insert 64 keys each and remove 16 each.
        assert_eq!(len, 4 * (64 - 16), "wrong tree size on {}", stm.name());
    });
}

#[test]
fn data_structures_compose_within_one_transaction() {
    // Queue + hash map + list + tree manipulated inside a single
    // transaction: either all updates land or none.
    let stm = Arc::new(SwissTm::with_config(config()));
    let queue = Queue::create(stm.heap()).unwrap();
    let map = HashMap::create(stm.heap(), 64).unwrap();
    let list = SortedList::create(stm.heap()).unwrap();
    let tree = RbTree::create(stm.heap()).unwrap();
    let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);

    // First attempt aborts explicitly: nothing must be visible.
    let _ = ctx.atomically(|tx| {
        queue.enqueue(tx, 1)?;
        map.insert(tx, 1, 1)?;
        list.insert(tx, 1, 1)?;
        tree.insert(tx, 1, 1)?;
        tx.retry::<()>()
    });
    let mut ctx = ThreadContext::register(Arc::clone(&stm));
    let all_empty = ctx
        .atomically(|tx| {
            Ok(
                queue.is_empty(tx)?
                    && map.len(tx)? == 0
                    && list.len(tx)? == 0
                    && tree.len(tx)? == 0,
            )
        })
        .unwrap();
    assert!(all_empty, "aborted composite transaction leaked state");

    // Second attempt commits: everything must be visible.
    ctx.atomically(|tx| {
        queue.enqueue(tx, 2)?;
        map.insert(tx, 2, 2)?;
        list.insert(tx, 2, 2)?;
        tree.insert(tx, 2, 2)?;
        Ok(())
    })
    .unwrap();
    let all_present = ctx
        .atomically(|tx| {
            Ok(!queue.is_empty(tx)?
                && map.contains(tx, 2)?
                && list.contains(tx, 2)?
                && tree.contains(tx, 2)?)
        })
        .unwrap();
    assert!(all_present);
}

#[test]
fn opacity_auditor_never_sees_torn_state() {
    // A writer keeps two words equal; concurrent readers must never observe
    // them differing (this is the paper's opacity guarantee, §3.1).
    for_all_stms(|stm| stm.pair_audit(500));
}

/// Clock-mode and table-layout conformance: the money-transfer and
/// invariant stress bodies above must pass on every
/// (STM × clock mode × table layout) combination. The deferred clock and
/// the padded/mixed table layouts change how versions are stamped and
/// where lock words live, but never what a transaction may observe —
/// this matrix pins that contract for all four algorithms at once.
#[test]
fn conformance_matrix_over_clock_modes_and_table_layouts() {
    for clock in ClockMode::ALL {
        for layout in TableLayout::ALL {
            let config = StmConfig::small()
                .with_clock(clock)
                .with_table_layout(layout);
            for_all_stms_with(config, |stm| {
                let label = format!(
                    "{} under clock={} layout={}",
                    stm.name(),
                    clock.label(),
                    layout.label()
                );
                let total = stm.counter_stress(3, 120);
                assert_eq!(total, 360, "lost updates on {label}");
                let (total, expected) = stm.bank_stress(3, 150);
                assert_eq!(total, expected, "money created/destroyed on {label}");
                let (ok, len) = stm.tree_stress(24);
                assert!(ok, "red-black invariants violated on {label}");
                assert_eq!(len, 4 * (24 - 6), "wrong tree size on {label}");
            });
        }
    }
}

/// The opacity auditor across the same matrix: the deferred clock's
/// fence-based revalidation (see `stm_core::clock::TxClock`) is exactly
/// what keeps a straggler committer from exposing a mixed snapshot, so the
/// torn-state audit is the test most likely to catch a regression there.
#[test]
fn opacity_holds_under_every_clock_mode_and_layout() {
    for clock in ClockMode::ALL {
        for layout in [TableLayout::Flat, TableLayout::PaddedMixed] {
            let config = StmConfig::small()
                .with_clock(clock)
                .with_table_layout(layout);
            for_all_stms_with(config, |stm| stm.pair_audit(300));
        }
    }
}
