//! Cross-crate integration tests: the same application code must behave
//! identically (and correctly) on every STM in the workspace.

use std::sync::Arc;

use stm_core::backoff::FastRng;
use stm_core::config::StmConfig;
use stm_core::tm::{ThreadContext, TmAlgorithm};
use stm_core::word::Addr;
use stm_workloads::structures::{HashMap, Queue, RbTree, SortedList};

use rstm::Rstm;
use swisstm::SwissTm;
use tinystm::TinyStm;
use tl2::Tl2;

fn config() -> StmConfig {
    StmConfig::small()
}

/// Runs `test` against all four STM implementations.
fn for_all_stms(test: impl Fn(Arc<dyn ErasedStm>)) {
    test(Arc::new(Erased(Arc::new(SwissTm::with_config(config())))));
    test(Arc::new(Erased(Arc::new(Tl2::with_config(config())))));
    test(Arc::new(Erased(Arc::new(TinyStm::with_config(config())))));
    test(Arc::new(Erased(Arc::new(Rstm::with_config(config())))));
}

/// A tiny object-safe wrapper so the same test body can drive any algorithm
/// without generics at the call site.
trait ErasedStm: Send + Sync {
    fn name(&self) -> &'static str;
    fn counter_stress(&self, threads: usize, increments: u64) -> u64;
    fn bank_stress(&self, threads: usize, transfers: u64) -> (u64, u64);
    fn tree_stress(&self, keys: u64) -> (bool, u64);
}

struct Erased<A: TmAlgorithm>(Arc<A>);

impl<A: TmAlgorithm> ErasedStm for Erased<A> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn counter_stress(&self, threads: usize, increments: u64) -> u64 {
        let stm = &self.0;
        let counter = stm.heap().alloc_zeroed(1).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let stm = Arc::clone(stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for _ in 0..increments {
                        ctx.atomically(|tx| {
                            let v = tx.read(counter)?;
                            tx.write(counter, v + 1)
                        })
                        .unwrap();
                    }
                });
            }
        });
        stm.heap().load(counter)
    }

    fn bank_stress(&self, threads: usize, transfers: u64) -> (u64, u64) {
        let stm = &self.0;
        let accounts = 16usize;
        let base: Addr = stm.heap().alloc_zeroed(accounts).unwrap();
        for i in 0..accounts {
            stm.heap().store(base.offset(i), 100);
        }
        std::thread::scope(|scope| {
            for t in 0..threads {
                let stm = Arc::clone(stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    let mut rng = FastRng::new(t as u64 + 77);
                    for _ in 0..transfers {
                        let from = rng.next_below(accounts as u64) as usize;
                        let to = rng.next_below(accounts as u64) as usize;
                        ctx.atomically(|tx| {
                            let f = tx.read(base.offset(from))?;
                            let t_bal = tx.read(base.offset(to))?;
                            if from != to && f >= 5 {
                                tx.write(base.offset(from), f - 5)?;
                                tx.write(base.offset(to), t_bal + 5)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let total = (0..accounts).map(|i| stm.heap().load(base.offset(i))).sum();
        (total, accounts as u64 * 100)
    }

    fn tree_stress(&self, keys: u64) -> (bool, u64) {
        let stm = &self.0;
        let tree = RbTree::create(stm.heap()).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let stm = Arc::clone(stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(stm);
                    for i in 0..keys {
                        let key = i * 4 + t;
                        ctx.atomically(|tx| tree.insert(tx, key, key)).unwrap();
                    }
                    // Remove a quarter of this thread's keys again.
                    for i in (0..keys).step_by(4) {
                        let key = i * 4 + t;
                        ctx.atomically(|tx| tree.remove(tx, key)).unwrap();
                    }
                });
            }
        });
        let mut ctx = ThreadContext::register(Arc::clone(stm));
        let ok = ctx.atomically(|tx| tree.check_invariants(tx)).unwrap();
        let len = ctx.atomically(|tx| tree.len(tx)).unwrap();
        (ok, len)
    }
}

#[test]
fn counters_are_exact_on_every_stm() {
    for_all_stms(|stm| {
        let total = stm.counter_stress(4, 300);
        assert_eq!(total, 1200, "lost updates on {}", stm.name());
    });
}

#[test]
fn money_is_conserved_on_every_stm() {
    for_all_stms(|stm| {
        let (total, expected) = stm.bank_stress(4, 300);
        assert_eq!(total, expected, "money created/destroyed on {}", stm.name());
    });
}

#[test]
fn red_black_tree_invariants_hold_on_every_stm() {
    for_all_stms(|stm| {
        let (ok, len) = stm.tree_stress(64);
        assert!(ok, "red-black invariants violated on {}", stm.name());
        // 4 threads insert 64 keys each and remove 16 each.
        assert_eq!(len, 4 * (64 - 16), "wrong tree size on {}", stm.name());
    });
}

#[test]
fn data_structures_compose_within_one_transaction() {
    // Queue + hash map + list + tree manipulated inside a single
    // transaction: either all updates land or none.
    let stm = Arc::new(SwissTm::with_config(config()));
    let queue = Queue::create(stm.heap()).unwrap();
    let map = HashMap::create(stm.heap(), 64).unwrap();
    let list = SortedList::create(stm.heap()).unwrap();
    let tree = RbTree::create(stm.heap()).unwrap();
    let mut ctx = ThreadContext::register(Arc::clone(&stm)).with_retry_budget(1);

    // First attempt aborts explicitly: nothing must be visible.
    let _ = ctx.atomically(|tx| {
        queue.enqueue(tx, 1)?;
        map.insert(tx, 1, 1)?;
        list.insert(tx, 1, 1)?;
        tree.insert(tx, 1, 1)?;
        tx.retry::<()>()
    });
    let mut ctx = ThreadContext::register(Arc::clone(&stm));
    let all_empty = ctx
        .atomically(|tx| {
            Ok(
                queue.is_empty(tx)?
                    && map.len(tx)? == 0
                    && list.len(tx)? == 0
                    && tree.len(tx)? == 0,
            )
        })
        .unwrap();
    assert!(all_empty, "aborted composite transaction leaked state");

    // Second attempt commits: everything must be visible.
    ctx.atomically(|tx| {
        queue.enqueue(tx, 2)?;
        map.insert(tx, 2, 2)?;
        list.insert(tx, 2, 2)?;
        tree.insert(tx, 2, 2)?;
        Ok(())
    })
    .unwrap();
    let all_present = ctx
        .atomically(|tx| {
            Ok(!queue.is_empty(tx)?
                && map.contains(tx, 2)?
                && list.contains(tx, 2)?
                && tree.contains(tx, 2)?)
        })
        .unwrap();
    assert!(all_present);
}

#[test]
fn opacity_auditor_never_sees_torn_state() {
    // A writer keeps two words equal; concurrent readers must never observe
    // them differing (this is the paper's opacity guarantee, §3.1).
    for_all_stms(|stm_erased| {
        let name = stm_erased.name();
        // Only run the generic body through the erased counter API when the
        // algorithm is exercised above; the pairwise invariant is checked on
        // SwissTM and TL2 below.
        let _ = name;
    });

    fn check_on<A: TmAlgorithm>(stm: Arc<A>) {
        let pair = stm.heap().alloc_zeroed(2).unwrap();
        std::thread::scope(|scope| {
            let writer_stm = Arc::clone(&stm);
            scope.spawn(move || {
                let mut ctx = ThreadContext::register(writer_stm);
                for i in 1..=500u64 {
                    ctx.atomically(|tx| {
                        tx.write(pair, i)?;
                        tx.write(pair.offset(1), i)
                    })
                    .unwrap();
                }
            });
            for _ in 0..2 {
                let reader_stm = Arc::clone(&stm);
                scope.spawn(move || {
                    let mut ctx = ThreadContext::register(reader_stm);
                    for _ in 0..500 {
                        let (a, b) = ctx
                            .atomically(|tx| Ok((tx.read(pair)?, tx.read(pair.offset(1))?)))
                            .unwrap();
                        assert_eq!(a, b, "torn read observed");
                    }
                });
            }
        });
    }

    check_on(Arc::new(SwissTm::with_config(config())));
    check_on(Arc::new(Tl2::with_config(config())));
    check_on(Arc::new(TinyStm::with_config(config())));
    check_on(Arc::new(Rstm::with_config(config())));
}
